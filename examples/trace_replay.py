#!/usr/bin/env python3
"""Replay an operation trace against both storage managers.

The paper's conclusion says the real test of LFS is long-term use; the
standard instrument for that is trace replay.  This example builds a
compiler-like edit/build/clean trace (sources edited in place, object
files rewritten wholesale, everything short-lived — §3's
office/engineering profile) and replays it on LFS and FFS over
identical simulated hardware.

Run with::

    python examples/trace_replay.py
"""

from repro.analysis.report import Table
from repro.harness import new_rig
from repro.units import MIB, fmt_time
from repro.workloads.trace_replay import parse_trace, replay


def build_trace() -> list:
    lines = ["mkdir /proj", "mkdir /proj/src", "mkdir /proj/obj"]
    sources = [f"/proj/src/mod{i}.c" for i in range(25)]
    for index, src in enumerate(sources):
        lines.append(f"create {src} {3000 + 200 * index}")
    # Three edit/build cycles.
    for cycle in range(3):
        for index, src in enumerate(sources):
            if (index + cycle) % 3 == 0:  # edit a third of the sources
                lines.append(f"write {src} 0 {2500 + 100 * cycle}")
        for index, src in enumerate(sources):
            obj = f"/proj/obj/mod{index}.o"
            if cycle > 0:
                lines.append(f"unlink {obj}")
            lines.append(f"create {obj} {8000 + 300 * index}")
            lines.append(f"read {src}")
        lines.append("sync")
    # Clean build products.
    for index in range(25):
        lines.append(f"unlink /proj/obj/mod{index}.o")
    lines.append("sync")
    return parse_trace(lines)


def main() -> None:
    trace = build_trace()
    print(f"trace: {len(trace)} operations "
          "(edit/build/clean cycles, §3's office/engineering profile)\n")
    table = Table(
        ["system", "simulated time", "ops/s", "disk requests",
         "sync requests", "MB to disk"],
    )
    results = {}
    for kind in ("lfs", "ffs"):
        rig = new_rig(kind, total_bytes=96 * MIB)
        result = replay(rig.fs, trace)
        rig.fs.sync()
        results[kind] = result
        table.row(
            kind.upper(),
            fmt_time(result.elapsed_seconds),
            result.ops_per_second(),
            rig.disk.stats.requests,
            rig.disk.stats.sync_requests,
            rig.disk.stats.bytes_written / MIB,
        )
    print(table.render())
    speedup = (
        results["ffs"].elapsed_seconds / results["lfs"].elapsed_seconds
    )
    print(f"\nSame trace, same disk: LFS finishes {speedup:.1f}x sooner, "
          "because every create, delete\nand rewrite in the build cycle "
          "is a synchronous random write on FFS and a cache\nupdate on LFS.")


if __name__ == "__main__":
    main()
