#!/usr/bin/env python3
"""Crash recovery, side by side: LFS roll-forward vs FFS fsck (§4.4).

Builds the same population of files on both systems, crashes both with
a little un-checkpointed work outstanding, then recovers: LFS by
reading its checkpoint region and rolling the log tail forward, FFS by
running a full fsck scan.

Run with::

    python examples/crash_recovery.py
"""

from repro.analysis.report import Table
from repro.ffs.filesystem import FastFileSystem
from repro.ffs.fsck import fsck
from repro.harness import new_rig
from repro.lfs.filesystem import LogStructuredFS
from repro.units import MIB, fmt_time

NUM_FILES = 800
DISK = 128 * MIB


def main() -> None:
    payload = b"important data " * 200

    # ----- LFS ------------------------------------------------------
    rig = new_rig("lfs", total_bytes=DISK)
    lfs = rig.fs
    for index in range(NUM_FILES):
        lfs.write_file(f"/f{index}", payload)
    lfs.checkpoint()
    for index in range(40):
        lfs.write_file(f"/post{index}", payload)
    lfs.sync()  # reaches the log, but not a checkpoint
    lfs.crash()
    lfs.disk.revive()
    start = rig.clock.now()
    recovered = LogStructuredFS.mount(rig.disk, rig.cpu)
    lfs_seconds = rig.clock.now() - start
    report = recovered.last_recovery
    survivors = sum(
        1 for index in range(40) if recovered.exists(f"/post{index}")
    )
    print(f"LFS: crash with {NUM_FILES} checkpointed + 40 synced-only files")
    print(f"  recovery took {fmt_time(lfs_seconds)} simulated "
          f"({report.partials_applied} log partials replayed, "
          f"{len(report.segments_visited)} segments visited)")
    print(f"  all {survivors}/40 post-checkpoint files recovered by "
          f"roll-forward")

    # ----- FFS ------------------------------------------------------
    rig = new_rig("ffs", total_bytes=DISK)
    ffs = rig.fs
    for index in range(NUM_FILES):
        ffs.write_file(f"/f{index}", payload)
    ffs.sync()
    for index in range(40):
        ffs.write_file(f"/post{index}", payload)
    ffs.crash()
    ffs.disk.revive()
    fsck_report = fsck(rig.disk)
    print(f"\nFFS: same population, same crash")
    print(f"  fsck took {fmt_time(fsck_report.duration_seconds)} simulated: "
          f"scanned {fsck_report.inodes_scanned} inodes, read "
          f"{fsck_report.bytes_read // 1024} KB, made "
          f"{fsck_report.repairs()} repairs")

    ratio = fsck_report.duration_seconds / lfs_seconds
    print(f"\nLFS recovered {ratio:.0f}x faster — and its recovery time is "
          f"set by the log tail,\nnot the file system size, so the gap "
          f"widens as disks grow (§4.4).")


if __name__ == "__main__":
    main()
