#!/usr/bin/env python3
"""Segment cleaning, visualized: utilization sweep and policy ablation.

Part 1 reruns Figure 5 (cleaning rate vs segment utilization) and draws
the curve as ASCII, next to the closed-form model.

Part 2 runs the office churn under the three victim-selection policies
(§4.3.4's greedy, the cost-benefit refinement, and random) and compares
write cost.

Run with::

    python examples/cleaning_policies.py
"""

from repro.analysis.report import Table
from repro.harness import ablation_cleaner_policy, fig5_cleaning_rate
from repro.lfs.config import LfsConfig
from repro.units import MIB

UTILIZATIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)


def bar(value: float, maximum: float, width: int = 40) -> str:
    filled = 0 if maximum <= 0 else int(width * min(1.0, value / maximum))
    return "#" * filled


def main() -> None:
    print("Figure 5: cleaning rate vs segment utilization "
          "(KB/s of net clean segments generated)\n")
    points = fig5_cleaning_rate(
        UTILIZATIONS, total_bytes=96 * MIB, fill_segments=16
    )
    segment_size = LfsConfig().segment_size
    finite = [
        p.clean_kb_per_second(segment_size)
        for p, _ in points
        if p.clean_kb_per_second(segment_size) != float("inf")
    ]
    top = max(finite)
    for point, model in points:
        rate = point.clean_kb_per_second(segment_size)
        shown = min(rate, top)
        model_text = "inf" if model == float("inf") else f"{model:7.0f}"
        print(f"  u={point.target_utilization:.1f} "
              f"{rate:8.0f} KB/s |{bar(shown, top):<40}| "
              f"model {model_text}")
    print("\nEmpty segments are free to clean; nearly full ones yield "
          "almost nothing —\nexactly the paper's curve.\n")

    print("Cleaning-policy ablation (office churn on a small disk):\n")
    table = Table(
        ["policy", "write cost", "segments cleaned", "live blocks copied",
         "ops/s"],
    )
    for point in ablation_cleaner_policy():
        table.row(
            point.policy,
            point.write_cost,
            point.segments_cleaned,
            point.live_blocks_copied,
            point.ops_per_second,
        )
    print(table.render())
    print("\nWrite cost = total log bytes written per byte of user data "
          "(lower is better).\nGreedy — the paper's policy — picks the "
          "emptiest segments; cost-benefit also\nweighs age, which pays off "
          "under hot/cold locality.")


if __name__ == "__main__":
    main()
