#!/usr/bin/env python3
"""Quickstart: create an LFS on a simulated WREN IV disk and poke it.

Run with::

    python examples/quickstart.py
"""

from repro import LogStructuredFS, make_lfs
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    # A ~300 MB simulated WREN IV disk (the paper's hardware), fresh LFS.
    fs = make_lfs()
    print(f"formatted: {fs.layout.num_segments} segments of "
          f"{fmt_bytes(fs.config.segment_size)} "
          f"({fmt_bytes(fs.layout.data_capacity_bytes)} usable)")

    # Ordinary UNIX-style usage.
    fs.mkdir("/projects")
    fs.mkdir("/projects/lfs")
    with fs.create("/projects/lfs/notes.txt") as handle:
        handle.write(b"All modifications are written to disk in large, "
                     b"sequential transfers.\n")
    fs.write_file("/projects/lfs/data.bin", bytes(range(256)) * 64)

    print("tree under /projects/lfs:", fs.listdir("/projects/lfs"))
    print("notes.txt:", fs.read_file("/projects/lfs/notes.txt").decode().strip())

    stat = fs.stat("/projects/lfs/data.bin")
    print(f"data.bin: {stat.size} bytes, inode {stat.inum}")

    # Everything so far happened in the file cache: zero synchronous
    # writes.  Push it to the log and checkpoint.
    fs.checkpoint()
    print(f"\nafter checkpoint at t={fmt_time(fs.clock.now())}:")
    print(" ", fs.disk.stats.summary())
    print(f"  log: {fs.segments.partial_segments_written} partial segments, "
          f"{fmt_bytes(fs.segments.log_bytes_written)} written, "
          f"write cost {fs.write_cost():.2f}")

    # Simulate a crash and remount: recovery reads the checkpoint and
    # rolls the log forward.
    fs.write_file("/projects/lfs/late.txt", b"written after the checkpoint")
    fs.sync()
    fs.crash()
    fs.disk.revive()
    recovered = LogStructuredFS.mount(fs.disk, fs.cpu)
    report = recovered.last_recovery
    print(f"\ncrash + remount: recovered in "
          f"{fmt_time(report.recovery_seconds)} simulated "
          f"({report.partials_applied} log partials replayed)")
    print("late.txt survived:",
          recovered.read_file("/projects/lfs/late.txt").decode())
    recovered.unmount()


if __name__ == "__main__":
    main()
