#!/usr/bin/env python3
"""The office/engineering workload (§3) on LFS vs the FFS baseline.

The paper motivates LFS with the office/engineering environment: many
small files, read sequentially and entirely, living less than a day.
This example runs that churn on both storage managers built over
identical simulated hardware and reports throughput, disk traffic and —
for LFS — cleaner overhead and write cost.

Run with::

    python examples/office_workload.py
"""

from repro.analysis.report import Table
from repro.harness import new_rig
from repro.units import MIB, fmt_bytes, fmt_time
from repro.workloads.office import run_office_workload

OPERATIONS = 4000
POPULATION = 400
DISK = 128 * MIB


def main() -> None:
    table = Table(
        ["system", "ops/s", "created", "deleted", "MB written", "MB read",
         "disk requests", "sync requests"],
        title=(
            f"Office/engineering churn: {OPERATIONS} operations, "
            f"~{POPULATION} live files (simulated Sun-4/260 + WREN IV)"
        ),
    )
    results = {}
    for kind in ("lfs", "ffs"):
        rig = new_rig(kind, total_bytes=DISK)
        result = run_office_workload(
            rig.fs,
            operations=OPERATIONS,
            target_population=POPULATION,
            seed=7,
        )
        results[kind] = (rig, result)
        table.row(
            kind.upper(),
            result.ops_per_second,
            result.files_created,
            result.files_deleted,
            result.bytes_written / MIB,
            result.bytes_read / MIB,
            rig.disk.stats.requests,
            rig.disk.stats.sync_requests,
        )
    print(table.render())

    lfs_rig, lfs_result = results["lfs"]
    ffs_rig, ffs_result = results["ffs"]
    print(f"\nLFS finished in {fmt_time(lfs_result.elapsed_seconds)} simulated, "
          f"FFS in {fmt_time(ffs_result.elapsed_seconds)}: "
          f"{ffs_result.elapsed_seconds / lfs_result.elapsed_seconds:.1f}x "
          f"speedup for LFS.")
    stats = lfs_rig.fs.cleaner.stats
    print(f"LFS cleaner: {stats.segments_cleaned} segments cleaned in "
          f"{stats.passes} passes, {fmt_bytes(stats.live_bytes_copied)} of "
          f"live data copied, write cost {lfs_result.write_cost:.2f} "
          f"(log bytes per byte of new data).")
    histogram = lfs_rig.fs.segment_utilization_histogram()
    print("LFS segment-utilization histogram (dirty segments per decile):")
    print("  " + " ".join(f"{count:3d}" for count in histogram))
    print("  0%                                             100%")


if __name__ == "__main__":
    main()
