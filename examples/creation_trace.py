#!/usr/bin/env python3
"""Figures 1 and 2, live: the disk accesses behind two file creations.

Replays §3.1's example —

    fd = creat("dir1/file1", 0); write(fd, buffer, blockSize); close(fd);
    fd = creat("dir2/file2", 0); write(fd, buffer, blockSize); close(fd);

— on both file systems with a trace recorder attached to the disk, and
prints each system's write trace plus an ASCII "disk image" in the
style of the paper's figures.

Run with::

    python examples/creation_trace.py
"""

from repro.harness import fig1_fig2_creation_traces


def main() -> None:
    results = fig1_fig2_creation_traces()
    for kind, title in (("ffs", "Figure 1 - BSD file system"),
                        ("lfs", "Figure 2 - LFS")):
        trace = results[kind]
        print("=" * 72)
        print(f"{title}: {trace.write_requests} disk writes "
              f"({trace.sync_writes} synchronous, "
              f"{trace.random_writes} requiring a seek)")
        print("=" * 72)
        print(trace.table)
        print()
        print("disk image (S = sync write, w = async write):")
        print(" ", trace.disk_image)
        print()

    ffs, lfs = results["ffs"], results["lfs"]
    print(f"summary: FFS issued {ffs.write_requests} writes "
          f"({ffs.sync_writes} sync); LFS issued {lfs.write_requests} "
          f"large sequential async transfer(s).")
    print("This is the paper's whole argument in one picture: the same "
          "logical updates,\none disk access pattern that scales with CPU "
          "speed and one that cannot.")


if __name__ == "__main__":
    main()
