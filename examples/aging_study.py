#!/usr/bin/env python3
"""Months of use in seconds: the aging study the paper calls for.

§6: "the real test of a file system is its performance over months and
years of use."  This example ages an LFS through epochs of
office/engineering churn and plots (in ASCII) how the write cost and
the segment-utilization distribution evolve.

Run with::

    python examples/aging_study.py
"""

from repro.analysis.aging import run_aging_study
from repro.harness import new_rig
from repro.lfs.config import LfsConfig
from repro.units import KIB, MIB


def main() -> None:
    config = LfsConfig(segment_size=512 * KIB, cache_bytes=6 * MIB)
    rig = new_rig("lfs", total_bytes=64 * MIB, lfs_config=config)
    study = run_aging_study(
        rig.fs, epochs=8, operations_per_epoch=1200, target_population=400
    )

    print("epoch   write-cost   clean-segments   ops/s")
    for sample in study.samples:
        bar = "#" * int(sample.write_cost * 20)
        print(f"  {sample.epoch:2d}      {sample.write_cost:5.2f}  {bar:<25}"
              f"{sample.clean_segments:4d}        {sample.ops_per_second:6.1f}")

    print(f"\nsteady-state write cost: "
          f"{study.steady_state_write_cost():.2f} log bytes per byte of "
          f"new data (converged: {study.converged()})")

    last = study.samples[-1]
    print("\nfinal segment-utilization distribution "
          "(dirty segments per utilization decile):")
    peak = max(last.utilization_histogram) or 1
    for decile, count in enumerate(last.utilization_histogram):
        bar = "#" * int(40 * count / peak)
        print(f"  {decile * 10:3d}-{decile * 10 + 9:3d}%  {count:4d} {bar}")
    print("\nThe bimodal shape — mostly-empty segments plus mostly-full "
          "ones — is what makes\ngreedy cleaning cheap: victims are nearly "
          "free to clean (§5.3's open question,\nanswered by simulation).")


if __name__ == "__main__":
    main()
