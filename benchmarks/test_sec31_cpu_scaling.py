"""T31 — §3.1's CPU-scaling observation.

Paper claim: "a .9-MIPS DEC MicroVaxII ... can create and delete an
empty file in 100 milliseconds.  A 14-MIPS DEC DecStation 3100 using
the same file system can create and delete an empty file in 80
milliseconds.  Because of the synchronous disk I/O, an
order-of-magnitude increase in CPU speeds causes only a 20 percent
increase in program speed!"  LFS's create/delete latency, by contrast,
is pure CPU work and scales with the processor.
"""

from benchmarks.conftest import emit, once
from repro.analysis.report import Table
from repro.harness import sec31_cpu_scaling

FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0)


def test_sec31_cpu_scaling(benchmark):
    points = once(benchmark, lambda: sec31_cpu_scaling(FACTORS))

    table = Table(
        ["CPU speed", "LFS ms/op", "FFS ms/op"],
        title="§3.1: empty-file create+delete latency vs CPU speed",
    )
    for point in points:
        table.row(
            f"{point.speed_factor:.0f}x",
            point.lfs_ms_per_create_delete,
            point.ffs_ms_per_create_delete,
        )
    emit(table.render())

    for point in points:
        benchmark.extra_info[f"lfs_{point.speed_factor:.0f}x_ms"] = round(
            point.lfs_ms_per_create_delete, 3
        )
        benchmark.extra_info[f"ffs_{point.speed_factor:.0f}x_ms"] = round(
            point.ffs_ms_per_create_delete, 3
        )

    slowest, fastest = points[0], points[-1]
    cpu_ratio = fastest.speed_factor / slowest.speed_factor
    lfs_speedup = (
        slowest.lfs_ms_per_create_delete / fastest.lfs_ms_per_create_delete
    )
    ffs_speedup = (
        slowest.ffs_ms_per_create_delete / fastest.ffs_ms_per_create_delete
    )
    # LFS latency scales nearly linearly with CPU speed...
    assert lfs_speedup > 0.6 * cpu_ratio
    # ...while the synchronous FFS barely improves (§3.1's ~20%).
    assert ffs_speedup < 1.6
    # And at every speed LFS is faster.
    for point in points:
        assert point.lfs_ms_per_create_delete < point.ffs_ms_per_create_delete
