"""FIG1 / FIG2 — disk accesses for the two-file creation example.

Paper claim (§3.1, Figures 1-2): creating two one-block files in two
directories costs the BSD file system ~8 small random writes, half of
them synchronous; LFS performs the same logical updates in ONE large
sequential asynchronous transfer.
"""

from benchmarks.conftest import emit, once
from repro.analysis.report import Table
from repro.harness import fig1_fig2_creation_traces


def test_fig1_fig2(benchmark):
    results = once(benchmark, fig1_fig2_creation_traces)
    ffs, lfs = results["ffs"], results["lfs"]

    table = Table(
        ["system", "writes", "sync", "random", "bytes"],
        title="Figures 1-2: disk writes to create dir1/file1 and dir2/file2",
    )
    table.row("FFS (fig 1)", ffs.write_requests, ffs.sync_writes,
              ffs.random_writes, ffs.bytes_written)
    table.row("LFS (fig 2)", lfs.write_requests, lfs.sync_writes,
              lfs.random_writes, lfs.bytes_written)
    emit(table.render())
    emit("FFS trace:\n" + results["ffs"].table)
    emit("FFS disk image: " + ffs.disk_image)
    emit("LFS trace:\n" + results["lfs"].table)
    emit("LFS disk image: " + lfs.disk_image)

    benchmark.extra_info.update(
        ffs_writes=ffs.write_requests,
        ffs_sync=ffs.sync_writes,
        lfs_writes=lfs.write_requests,
        lfs_sync=lfs.sync_writes,
    )

    # Figure 1: "The total disk I/O in this example includes 8 random
    # writes of which half are synchronous."  (We see two extra async
    # cylinder-group header writes; the paper's figure omits them.)
    assert ffs.write_requests >= 8
    assert ffs.sync_writes == 4
    assert ffs.random_writes == ffs.write_requests  # all random
    # Figure 2: "LFS performs the 8 writes in one large transfer ...
    # all writes are sequential and none are synchronous."
    assert lfs.write_requests == 1
    assert lfs.sync_writes == 0
    assert lfs.random_writes == 0
