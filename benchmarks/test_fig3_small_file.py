"""FIG3 — small-file create/read/delete rates (files/second).

Paper claim (§5.1, Figure 3): LFS creates and deletes small files an
order of magnitude faster than SunOS because it replaces per-file
synchronous random writes with batched sequential log writes; read
rates are comparable (LFS slightly ahead for 1 KB files because they
are packed densely in the log).
"""

import pytest

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.harness import fig3_small_file
from repro.units import KIB, MIB

NUM_1K = 10000 if PAPER_SCALE else 2000
NUM_10K = 1000 if PAPER_SCALE else 200
DISK = 300 * MIB if PAPER_SCALE else 128 * MIB


@pytest.mark.parametrize(
    "num_files,file_size,label,min_factor",
    # The create/delete gap narrows for larger files (both systems pay
    # real data-transfer time), exactly as in the paper's Figure 3.
    [(NUM_1K, 1 * KIB, "1KB", 5.0), (NUM_10K, 10 * KIB, "10KB", 3.0)],
    ids=["1k-files", "10k-files"],
)
def test_fig3(benchmark, num_files, file_size, label, min_factor):
    results = once(
        benchmark,
        lambda: fig3_small_file(
            num_files=num_files, file_size=file_size, total_bytes=DISK
        ),
    )
    lfs, ffs = results["lfs"], results["ffs"]

    table = Table(
        ["system", "create/s", "read/s", "delete/s"],
        title=(
            f"Figure 3 ({num_files} x {label} files, simulated "
            "Sun-4/260 + WREN IV)"
        ),
    )
    table.row("Sprite LFS", lfs.create_per_second, lfs.read_per_second,
              lfs.delete_per_second)
    table.row("SunOS FFS", ffs.create_per_second, ffs.read_per_second,
              ffs.delete_per_second)
    emit(table.render())

    benchmark.extra_info.update(
        lfs_create_per_s=round(lfs.create_per_second, 1),
        ffs_create_per_s=round(ffs.create_per_second, 1),
        lfs_read_per_s=round(lfs.read_per_second, 1),
        ffs_read_per_s=round(ffs.read_per_second, 1),
        lfs_delete_per_s=round(lfs.delete_per_second, 1),
        ffs_delete_per_s=round(ffs.delete_per_second, 1),
    )

    # Shape assertions: who wins and by roughly what factor.
    assert lfs.create_per_second > min_factor * ffs.create_per_second
    assert lfs.delete_per_second > min_factor * ffs.delete_per_second
    # Reads comparable; LFS not slower than ~half of FFS.
    assert lfs.read_per_second > 0.5 * ffs.read_per_second
