"""MODEL — measured cleaning economics vs the closed-form write cost.

§5.3 argues the cost of cleaning is "directly related to the
utilization ... of the segments being cleaned".  The closed form is
``write_cost(u) = 2 / (1 - u)``; this benchmark checks that the
measured cleaning rate sits near the corresponding analytic rate curve
and that both blow up together as u -> 1.
"""

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.harness import write_cost_comparison
from repro.units import MIB

UTILIZATIONS = (0.2, 0.4, 0.6, 0.8)
DISK = 300 * MIB if PAPER_SCALE else 128 * MIB


def test_write_cost_model(benchmark):
    points = once(
        benchmark,
        lambda: write_cost_comparison(UTILIZATIONS, total_bytes=DISK),
    )

    table = Table(
        ["u", "write cost 2/(1-u)", "measured KB/s", "model KB/s"],
        title="§5.3: cleaning economics, measured vs analytic",
    )
    for point in points:
        table.row(
            point.utilization,
            point.analytic_write_cost,
            point.measured_rate_kb_s,
            point.model_rate_kb_s,
        )
    emit(table.render())

    for point in points:
        benchmark.extra_info[f"u{point.utilization}_measured"] = round(
            point.measured_rate_kb_s, 1
        )

    # Write cost is convex-increasing in u.
    costs = [point.analytic_write_cost for point in points]
    assert costs == sorted(costs)
    assert costs[-1] / costs[0] > 3
    # Measured rate falls with u and stays within 3x of the model.
    rates = [point.measured_rate_kb_s for point in points]
    assert all(a > b for a, b in zip(rates, rates[1:]))
    for point in points:
        assert (
            0.3 * point.model_rate_kb_s
            < point.measured_rate_kb_s
            < 3.0 * point.model_rate_kb_s
        )
