"""Service scaling: clients vs throughput, latency, and group commit.

The sweep that motivates the service layer: as concurrent clients
increase, group commit amortizes fsync cost (batch sizes grow well past
1) so aggregate throughput scales far better than linearly-degrading
per-request latency would suggest.  The sweep writes the same
``BENCH_service.json`` report as ``python -m repro.service.bench`` so
CI and local runs produce diffable numbers.
"""

import os

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.service.bench import run_sweep, write_report

CLIENTS = (1, 2, 4, 8, 16)
REQUESTS = 100 if PAPER_SCALE else 40
SEED = 0
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_service_scaling(benchmark):
    points = once(
        benchmark,
        lambda: run_sweep(
            CLIENTS, seed=SEED, requests_per_client=REQUESTS
        ),
    )

    table = Table(
        ["clients", "req/s", "p50 ms", "p99 ms", "batch mean", "throttles"],
        title=f"Service scaling ({REQUESTS} requests/client, seed {SEED})",
    )
    for point in points:
        table.row(
            point["clients"],
            point["throughput_per_second"],
            point["latency_p50_seconds"] * 1000,
            point["latency_p99_seconds"] * 1000,
            point["commit_batch_mean"],
            point["throttle_events"],
        )
    emit(table.render())

    write_report(
        points,
        os.path.join(_REPO_ROOT, "BENCH_service.json"),
        SEED,
        REQUESTS,
    )

    last = points[-1]
    benchmark.extra_info.update(
        max_clients=last["clients"],
        max_clients_req_per_s=last["throughput_per_second"],
        max_clients_batch_mean=last["commit_batch_mean"],
    )

    # Shape assertions: nothing dropped anywhere; group commit actually
    # groups once there is concurrency; batching grows with clients.
    assert all(point["dropped"] == 0 for point in points)
    by_clients = {point["clients"]: point for point in points}
    assert by_clients[16]["commit_batch_mean"] > 1.5
    assert (
        by_clients[16]["commit_batch_mean"]
        > by_clients[1]["commit_batch_mean"]
    )
    # Aggregate throughput rises with offered load.
    assert (
        by_clients[16]["throughput_per_second"]
        > by_clients[1]["throughput_per_second"]
    )
