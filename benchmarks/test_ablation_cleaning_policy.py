"""ABL-CLEAN — cleaning-policy ablation.

§4.3.4 chooses victims greedily ("it is desirable to choose the
segments with the most free space") and leaves better policies open.
This ablation churns an office/engineering workload (hot/cold access
per §3) on a small disk under greedy, cost-benefit and random victim
selection, and compares write cost (log bytes written per byte of user
data — lower is better).
"""

from benchmarks.conftest import emit, once
from repro.analysis.report import Table
from repro.harness import ablation_cleaner_policy

POLICIES = ("greedy", "cost-benefit", "random")


def test_cleaning_policies(benchmark):
    points = once(benchmark, lambda: ablation_cleaner_policy(POLICIES))

    table = Table(
        ["policy", "write cost", "segments cleaned", "live blocks copied",
         "ops/s"],
        title="Cleaning-policy ablation (office workload, small disk)",
    )
    for point in points:
        table.row(
            point.policy,
            point.write_cost,
            point.segments_cleaned,
            point.live_blocks_copied,
            point.ops_per_second,
        )
    emit(table.render())

    by_policy = {point.policy: point for point in points}
    for point in points:
        benchmark.extra_info[f"{point.policy}_write_cost"] = round(
            point.write_cost, 3
        )

    # Every policy keeps the system functional under churn.
    for point in points:
        assert point.write_cost >= 1.0
        assert point.ops_per_second > 0
    # Informed policies should not copy more live data than random
    # victim selection does.
    assert (
        by_policy["greedy"].live_blocks_copied
        <= 1.2 * by_policy["random"].live_blocks_copied
    )
