"""Shared benchmark helpers.

Every benchmark reports two kinds of numbers:

* the **simulated** metrics (files/s, KB/s, recovery seconds) that
  reproduce the paper's tables and figures — printed straight to the
  terminal, bypassing pytest's capture, and attached to the
  pytest-benchmark JSON as ``extra_info``;
* the **wall-clock** cost of running the simulation itself, which is
  what pytest-benchmark times.

Scale: by default the workloads are sized to finish the whole benchmark
suite in a few minutes.  Set ``REPRO_PAPER_SCALE=1`` to run the paper's
full parameters (10,000 files, a 100 MB large-file test, a 300 MB disk).
"""

from __future__ import annotations

import os
import sys

import pytest

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0")

_capture_manager = None


def pytest_configure(config):
    global _capture_manager
    _capture_manager = config.pluginmanager.getplugin("capturemanager")


def emit(text: str) -> None:
    """Print a results table to the real terminal, bypassing capture.

    pytest captures at the file-descriptor level by default, so even
    ``sys.__stdout__`` writes would be swallowed; suspending the capture
    manager routes the table to the real stdout (and through any shell
    redirection or ``tee``).
    """
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            sys.stdout.write("\n" + text + "\n")
            sys.stdout.flush()
    else:
        sys.__stdout__.write("\n" + text + "\n")
        sys.__stdout__.flush()


@pytest.fixture
def paper_scale() -> bool:
    return PAPER_SCALE


def once(benchmark, fn):
    """Run a simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
