"""REC — crash recovery: LFS checkpoint+roll-forward vs FFS fsck.

Paper claim (§4.4): "LFS never needs to scan the entire file system to
recover from a crash" — recovery reads the checkpoint regions and the
log tail, so its time is independent of file system size/contents,
while fsck scans every inode table block and the whole directory tree.
"""

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.harness import recovery_comparison
from repro.units import MIB

FILE_COUNTS = (200, 1000, 3000) if PAPER_SCALE else (100, 400, 1000)
DISKS = (
    (96 * MIB, 192 * MIB, 300 * MIB)
    if PAPER_SCALE
    else (48 * MIB, 96 * MIB, 192 * MIB)
)


def test_recovery(benchmark):
    points = once(
        benchmark,
        lambda: recovery_comparison(FILE_COUNTS, disk_sizes=DISKS),
    )

    table = Table(
        ["files", "disk MB", "LFS recovery (s)", "log partials replayed",
         "FFS fsck (s)", "fsck repairs"],
        title="§4.4: crash recovery time (simulated)",
    )
    for point in points:
        table.row(
            point.num_files,
            point.total_bytes // MIB,
            point.lfs_recovery_seconds,
            point.lfs_partials_replayed,
            point.ffs_fsck_seconds,
            point.ffs_repairs,
        )
    emit(table.render())

    for point in points:
        benchmark.extra_info[f"lfs_{point.num_files}_s"] = round(
            point.lfs_recovery_seconds, 3
        )
        benchmark.extra_info[f"fsck_{point.num_files}_s"] = round(
            point.ffs_fsck_seconds, 3
        )

    # LFS recovery is faster everywhere, and the gap widens with the
    # file system (fsck scans every inode table block and directory;
    # LFS reads the checkpoint regions plus the log tail)...
    for point in points:
        assert point.lfs_recovery_seconds < point.ffs_fsck_seconds
    assert points[-1].lfs_recovery_seconds < points[-1].ffs_fsck_seconds / 4
    # ...and essentially flat as the file system grows, while fsck
    # scales with the amount of metadata it must scan.
    lfs_growth = points[-1].lfs_recovery_seconds / points[0].lfs_recovery_seconds
    fsck_growth = points[-1].ffs_fsck_seconds / points[0].ffs_fsck_seconds
    assert lfs_growth < fsck_growth
    assert fsck_growth > 1.5
