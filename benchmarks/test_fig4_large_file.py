"""FIG4 — large-file transfer rates (KB/second).

Paper claims (§5.2, Figure 4), per phase on a 100 MB file with 8 KB
requests:

* sequential write: LFS near disk bandwidth, well above FFS's
  block-at-a-time writes;
* sequential read: equivalent (both laid the file out sequentially);
* random write: LFS unchanged (the log makes random writes sequential),
  FFS collapses to random in-place I/O;
* random read: equivalent (random I/O either way);
* sequential re-read after random writes: FFS wins — its in-place
  layout is still sequential while LFS's blocks sit in write order.
"""

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.harness import fig4_large_file
from repro.units import MIB
from repro.workloads.largefile import PHASES

FILE_BYTES = 100 * MIB if PAPER_SCALE else 20 * MIB
DISK = 300 * MIB if PAPER_SCALE else 128 * MIB


def test_fig4(benchmark):
    results = once(
        benchmark,
        lambda: fig4_large_file(file_bytes=FILE_BYTES, total_bytes=DISK),
    )
    lfs, ffs = results["lfs"], results["ffs"]

    table = Table(
        ["phase", "LFS KB/s", "FFS KB/s"],
        title=(
            f"Figure 4 ({FILE_BYTES // MIB} MB file, 8 KB requests, "
            "simulated WREN IV)"
        ),
    )
    for phase in PHASES:
        table.row(phase, lfs.kb_per_second(phase), ffs.kb_per_second(phase))
    emit(table.render())

    for phase in PHASES:
        benchmark.extra_info[f"lfs_{phase}"] = round(lfs.kb_per_second(phase))
        benchmark.extra_info[f"ffs_{phase}"] = round(ffs.kb_per_second(phase))

    l, f = lfs.kb_per_second, ffs.kb_per_second
    # Sequential write: LFS wins.
    assert l("seq_write") > 1.2 * f("seq_write")
    # LFS write bandwidth independent of pattern (§5.2).
    assert l("rand_write") >= 0.8 * l("seq_write")
    # Random write: LFS wins big.
    assert l("rand_write") > 2.5 * f("rand_write")
    # Sequential read: comparable.
    assert 0.6 < l("seq_read") / f("seq_read") < 1.7
    # Random read: comparable.
    assert 0.6 < l("rand_read") / f("rand_read") < 1.7
    # Sequential re-read of a randomly written file: FFS wins (the one
    # access pattern where update-in-place beats the log, §5.2).
    assert f("seq_reread") > 1.5 * l("seq_reread")
