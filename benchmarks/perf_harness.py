#!/usr/bin/env python
"""Wall-clock perf harness for the simulator's hot paths.

Every other benchmark in this directory reports *simulated* seconds —
the paper's metrics.  This harness times the **simulator itself**
(Python wall-clock) on three workloads:

* ``small_file`` — the Figure 3 create/read/delete cycle;
* ``large_file_random_write`` — the Figure 4 random-write phase;
* ``seq_read`` — sequential reread of a large file through a cache
  smaller than the file, with readahead enabled (the zero-copy read
  path plus the sequential-prefetch pipeline);
* ``seq_reread_random_write`` — random overwrites followed by a
  sequential reread (write path and read path in one workload);
* ``cleaning`` — a cleaning-heavy pass over a fragmented log (the
  workload that hammers ``_pop_clean``, ``clean_count`` and the
  checkpoint serialization paths);
* ``batch_checksum`` — whole-segment CRC scans plus
  summary/checkpoint/inode codec round-trips (the batch-serialization
  engine vs the per-block CRC and Packer-per-field codecs);
* ``scheduler_dispatch`` — timer dispatch under heavy same-timestamp
  load plus a small multi-client service run (the bucketed clock vs the
  per-timer ``(expiry, seq)`` heap).

For each workload it can also re-run the *legacy* hot paths — the
pre-optimization implementations (O(num_segments) usage-array scans,
O(pending) durability-list rebuilds, Packer-per-field serialization,
copy-semantics device reads, ``b"".join`` partial-segment assembly,
O(cache) eviction scans, no readahead) patched back over the optimized
classes — giving an honest
before/after comparison on the same machine, and it asserts the two
modes produce bit-identical simulated results.  The read workloads'
fingerprints cover the data actually read (a running CRC) and the log
bytes written, not simulated seconds: readahead legitimately reschedules
read I/O, so the before/after invariant there is "same bytes, same
on-disk log", not "same clock".

Operation-count probes assert the O(1) invariants directly:

* every clean-heap entry is pushed once and popped at most once, so the
  total heap work is bounded by segment state transitions — not by
  ``min_clean_calls * num_segments`` as the old scan was;
* every durability undo record pays exactly one drain step, so
  ``mark_durable`` work is bounded by the number of undo records — not
  by ``mark_durable_calls * pending`` as the old rebuild was.

A third leg per workload runs with telemetry **enabled** (a live
:class:`repro.obs.Telemetry`) and a fourth with full tracing on
(``Telemetry(trace_io=True)`` — request spans plus per-I/O disk
spans), recording the observability layer's wall-clock overhead next
to the default telemetry-disabled numbers and asserting all modes
produce identical simulated results.  The telemetry-disabled leg is
additionally compared against the committed ``BENCH_hotpaths.json``
baseline (3% tolerance) when the scales match — the guard that the
disabled-mode instrumentation hooks stay free even as tracing grows.

Results are written to ``BENCH_hotpaths.json`` at the repository root
(schema in :mod:`repro.tools.bench_report`).

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py             # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --smoke     # CI smoke
    PYTHONPATH=src python benchmarks/perf_harness.py --no-legacy # after only
"""

from __future__ import annotations

import argparse
import heapq
import os
import sys
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if not any(
    os.path.isdir(os.path.join(path, "repro")) for path in sys.path if path
):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.cache.block_cache import BlockCache
from repro.cache.readahead import ReadaheadPolicy
from repro.cache.writeback import WritebackConfig
from repro.common import serialization
from repro.common.serialization import Packer, Unpacker, checksum
from repro.disk.device import SectorDevice, _PendingWrite
from repro.errors import CleanerError, CorruptionError
from repro.lfs.checkpoint import CheckpointData
from repro.lfs.cleaner import SegmentCleaner
from repro.lfs.config import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_REGION_BLOCKS,
    SUMMARY_MAGIC,
    LfsConfig,
)
from repro.lfs.filesystem import LogStructuredFS, make_lfs
from repro.lfs.segments import LogPosition, SegmentManager
from repro.lfs.inode_map import IMAP_ENTRY_SIZE, ImapEntry, InodeMap
from repro.lfs.segment_usage import (
    USAGE_ENTRY_SIZE,
    SegmentInfo,
    SegmentState,
    SegmentUsage,
)
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.common.inode import NIL, BlockKind, FileType, Inode, N_DIRECT
from repro.obs import Telemetry
from repro.sim.clock import SimClock
from repro.tools import bench_report
from repro.units import KIB, MIB

# ----------------------------------------------------------------------
# Scales
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scale:
    name: str
    disk_bytes: int
    segment_bytes: int
    small_files: int
    small_file_size: int
    large_file_bytes: int
    large_request_bytes: int
    clean_fill_segments: int
    clean_keeper_blocks: int
    repeats: int

    def lfs_config(self) -> LfsConfig:
        return LfsConfig(
            segment_size=self.segment_bytes,
            cache_bytes=2 * MIB,
            max_inodes=16384,
            writeback=WritebackConfig(),
        )


SCALES = {
    # CI smoke: a few seconds total.
    "smoke": Scale(
        name="smoke",
        disk_bytes=16 * MIB,
        segment_bytes=64 * KIB,
        small_files=80,
        small_file_size=1024,
        large_file_bytes=1 * MIB,
        large_request_bytes=8 * KIB,
        clean_fill_segments=24,
        clean_keeper_blocks=1,
        repeats=1,
    ),
    # Default: REPRO_PAPER_SCALE=0 sizing.  Many small segments so the
    # cleaning pass exercises the per-checkpoint segment-usage
    # serialization and the cleaner's usage-array queries — the paths
    # this PR moved off O(num_segments) scans.
    "small": Scale(
        name="small",
        disk_bytes=256 * MIB,
        segment_bytes=64 * KIB,
        small_files=600,
        small_file_size=1024,
        large_file_bytes=8 * MIB,
        large_request_bytes=8 * KIB,
        clean_fill_segments=512,
        clean_keeper_blocks=1,
        # Best-of-3: wall-clock minima are far more stable than means on
        # a shared machine, and the 3% baseline gate compares minima.
        repeats=3,
    ),
}


# ----------------------------------------------------------------------
# Legacy hot paths (the pre-optimization implementations, verbatim
# semantics) — patched over the optimized classes for the "before" leg.
# ----------------------------------------------------------------------


def _legacy_usage_clean_segments(self):
    return [
        seg
        for seg, info in enumerate(self._info)
        if info.state is SegmentState.CLEAN
    ]


def _legacy_usage_clean_count(self):
    return sum(1 for info in self._info if info.state is SegmentState.CLEAN)


def _legacy_usage_dirty_segments(self):
    return [
        seg
        for seg, info in enumerate(self._info)
        if info.state is SegmentState.DIRTY
    ]


def _legacy_usage_total_live_bytes(self):
    return sum(info.live_bytes for info in self._info)


def _legacy_usage_min_clean(self):
    self.min_clean_calls += 1
    clean = _legacy_usage_clean_segments(self)
    return clean[0] if clean else None


def _legacy_info_pack(self):
    return (
        Packer()
        .u64(self.live_bytes)
        .f64(self.last_write)
        .u8(int(self.state))
        .raw(b"\x00" * 7)
        .bytes()
    )


def _legacy_info_unpack(cls, data):
    unpacker = Unpacker(data)
    live = unpacker.u64()
    last_write = unpacker.f64()
    raw_state = unpacker.u8()
    try:
        state = SegmentState(raw_state)
    except ValueError as exc:
        raise CorruptionError(f"bad segment state {raw_state}") from exc
    return cls(live_bytes=live, last_write=last_write, state=state)


def _legacy_usage_pack_block(self, index):
    if not 0 <= index < self.num_blocks:
        raise CorruptionError(f"usage block index {index} out of range")
    first = index * self.entries_per_block
    last = min(first + self.entries_per_block, self.num_segments)
    data = b"".join(self._info[seg].pack() for seg in range(first, last))
    return data + b"\x00" * (self.block_size - len(data))


def _legacy_usage_load_block(self, index, data):
    if not 0 <= index < self.num_blocks:
        raise CorruptionError(f"usage block index {index} out of range")
    first = index * self.entries_per_block
    last = min(first + self.entries_per_block, self.num_segments)
    for position, seg in enumerate(range(first, last)):
        offset = position * USAGE_ENTRY_SIZE
        entry = SegmentInfo.unpack(data[offset : offset + USAGE_ENTRY_SIZE])
        info = self._info[seg]
        self._set_live(info, entry.live_bytes)
        self._set_state(seg, info, entry.state)
        info.last_write = entry.last_write
    self._dirty_blocks.discard(index)


def _legacy_imap_pack(self):
    return (
        Packer()
        .u64(self.inode_addr)
        .u8(self.slot)
        .u8(1 if self.allocated else 0)
        .u32(self.version)
        .f64(self.atime)
        .raw(b"\x00\x00")
        .bytes()
    )


def _legacy_imap_unpack(cls, data):
    unpacker = Unpacker(data)
    inode_addr = unpacker.u64()
    slot = unpacker.u8()
    allocated = unpacker.u8() != 0
    version = unpacker.u32()
    atime = unpacker.f64()
    return cls(
        inode_addr=inode_addr,
        slot=slot,
        version=version,
        atime=atime,
        allocated=allocated,
    )


def _legacy_inode_map_load_entries(self, index, data):
    first = index * self.entries_per_block
    last = min(first + self.entries_per_block, self.max_inodes)
    for position, inum in enumerate(range(first, last)):
        offset = position * IMAP_ENTRY_SIZE
        self._entries[inum] = ImapEntry.unpack(
            data[offset : offset + IMAP_ENTRY_SIZE]
        )


def _legacy_inode_map_pack_block(self, index):
    if not 0 <= index < self.num_blocks:
        raise CorruptionError(f"imap block index {index} out of range")
    self._ensure_loaded(index)
    first = index * self.entries_per_block
    last = min(first + self.entries_per_block, self.max_inodes)
    data = b"".join(self._entries[inum].pack() for inum in range(first, last))
    return data + b"\x00" * (self.block_size - len(data))


def _legacy_entry_pack_into(packer, entry):
    packer.u8(int(entry.kind))
    packer.u32(entry.inum)
    packer.u64(entry.index)
    packer.u32(entry.version)
    packer.u16(len(entry.inums))
    for inum in entry.inums:
        packer.u32(inum)


def _legacy_entry_unpack(unpacker):
    raw_kind = unpacker.u8()
    try:
        kind = BlockKind(raw_kind)
    except ValueError as exc:
        raise CorruptionError(f"bad summary block kind {raw_kind}") from exc
    inum = unpacker.u32()
    index = unpacker.u64()
    version = unpacker.u32()
    count = unpacker.u16()
    inums = tuple(unpacker.u32() for _ in range(count))
    return SummaryEntry(
        kind=kind, inum=inum, index=index, version=version, inums=inums
    )


def _legacy_summary_pack(self, block_size):
    nsummary = self.summary_blocks(block_size)
    body = Packer()
    for entry in self.entries:
        _legacy_entry_pack_into(body, entry)
    body_bytes = body.bytes()
    header = (
        Packer()
        .u32(SUMMARY_MAGIC)
        .u64(self.seq)
        .f64(self.timestamp)
        .u64(self.next_segment_block)
        .u32(len(self.entries))
        .u16(nsummary)
    )
    crc = checksum(header.bytes() + body_bytes)
    header.u32(crc)
    data = header.bytes() + body_bytes
    padded_size = nsummary * block_size
    if len(data) > padded_size:
        raise AssertionError(f"summary packs to {len(data)} bytes > {padded_size}")
    return data + b"\x00" * (padded_size - len(data))


def _legacy_summary_unpack(cls, data, block_size):
    unpacker = Unpacker(data)
    magic = unpacker.u32()
    if magic != SUMMARY_MAGIC:
        raise CorruptionError(f"bad summary magic 0x{magic:08x}")
    seq = unpacker.u64()
    timestamp = unpacker.f64()
    next_segment_block = unpacker.u64()
    nentries = unpacker.u32()
    nsummary = unpacker.u16()
    crc = unpacker.u32()
    if nsummary * block_size > len(data):
        raise CorruptionError(
            f"summary claims {nsummary} blocks, only "
            f"{len(data) // block_size} supplied"
        )
    entries = [_legacy_entry_unpack(unpacker) for _ in range(nentries)]
    verify = (
        Packer()
        .u32(magic)
        .u64(seq)
        .f64(timestamp)
        .u64(next_segment_block)
        .u32(nentries)
        .u16(nsummary)
    )
    body = Packer()
    for entry in entries:
        _legacy_entry_pack_into(body, entry)
    if checksum(verify.bytes() + body.bytes()) != crc:
        raise CorruptionError(f"summary checksum mismatch at seq {seq}")
    return cls(
        seq=seq,
        timestamp=timestamp,
        next_segment_block=next_segment_block,
        entries=entries,
    )


def _legacy_peek_summary_blocks(first_block, block_size):
    unpacker = Unpacker(first_block)
    magic = unpacker.u32()
    if magic != SUMMARY_MAGIC:
        raise CorruptionError(f"bad summary magic 0x{magic:08x}")
    unpacker.u64()  # seq
    unpacker.f64()  # timestamp
    unpacker.u64()  # next segment
    unpacker.u32()  # entry count
    nsummary = unpacker.u16()
    if nsummary == 0:
        raise CorruptionError("summary claims zero blocks")
    return nsummary


def _legacy_device_read(self, sector, count, *, copy=False):
    # Copy semantics: every read materializes a fresh bytes object, the
    # pre-zero-copy behaviour.  ``copy`` is accepted (callers pass it)
    # but irrelevant — everything is a copy here.
    self._check_range(sector, count)
    self.total_sectors_read += count
    start = sector * self.sector_size
    return bytes(self._data[start : start + count * self.sector_size])


def _legacy_write_partial(self, chunk, nsummary):
    # The pre-pool segment writer: serialize every block to its own
    # bytes object and b"".join the partial segment together.
    bs = self.layout.config.block_size
    pos = self.position
    now = self.clock.now()
    first_block = (
        self.layout.segment_first_block(pos.active_segment)
        + pos.active_offset
    )
    content_start = first_block + nsummary
    for offset, planned in enumerate(chunk):
        planned.finalize(content_start + offset)
    summary = SegmentSummary(
        seq=pos.sequence,
        timestamp=now,
        next_segment_block=self.layout.segment_first_block(pos.next_segment),
        entries=[planned.entry for planned in chunk],
    )
    parts = [summary.pack(bs)]
    for planned in chunk:
        payload = planned.payload()
        if len(payload) != bs:
            raise CleanerError(
                f"planned block serialized to {len(payload)} "
                f"bytes, expected {bs}"
            )
        parts.append(payload)
    data = b"".join(parts)
    if len(data) != (nsummary + len(chunk)) * bs:
        raise AssertionError("partial segment size mismatch")
    label = (
        f"segment:{pos.active_segment}"
        f"+{pos.active_offset} seq={pos.sequence}"
        + (" (cleaner)" if self.cleaner_mode else "")
    )
    self.disk.write(
        first_block * self.layout.config.sectors_per_block,
        data,
        sync=False,
        label=label,
    )
    pos.active_offset += nsummary + len(chunk)
    pos.sequence += 1
    self.partial_segments_written += 1
    self.log_bytes_written += len(data)
    if self.cleaner_mode:
        self.cleaner_bytes_written += len(data)
    if self.remaining_blocks() < 2:
        self._advance_segment()
    return len(data)


def _legacy_relocate_live_blocks(self, seg):
    # Pre-pool cleaner: each victim segment read materializes a fresh
    # segment-sized bytes object (the legacy device read above already
    # copies; this path just skips the staging pool entirely).
    fs = self.fs
    layout = fs.layout
    bps = fs.config.blocks_per_segment
    if fs.usage.info(seg).state is not SegmentState.DIRTY:
        raise CorruptionError(f"cleaning non-dirty segment {seg}")
    first_block = layout.segment_first_block(seg)
    with self.telemetry.span("cleaner.relocate_segment", segment=seg) as span:
        raw = bytes(
            fs.disk.read(
                first_block * fs.config.sectors_per_block,
                bps * fs.config.sectors_per_block,
                label=f"cleaner segment {seg}",
            )
        )
        self._scan_segment(seg, first_block, raw, span)


def _legacy_readahead_advise(self, inum, first, last):
    # Before this PR there was no readahead: never prefetch.
    return 0


def _legacy_cache_evict_to_capacity(self):
    # Pre-optimization eviction: materialize the full evictable-victim
    # list (an O(cache) scan) on every over-capacity insert, then evict
    # from the front until back under capacity.
    if self.used_bytes <= self.capacity_bytes:
        return
    victims = [
        key for key, block in self._blocks.items() if self._evictable(block)
    ]
    for key in victims:
        if self.used_bytes <= self.capacity_bytes:
            break
        del self._blocks[key]
        self._forget_key(key)
        self.stats.evictions += 1
        if self._obs_enabled:
            self._m_evictions.inc()


def _legacy_device_write(self, sector, data, completion_time=0.0, durable=False):
    if len(data) % self.sector_size:
        raise CorruptionError(
            f"write of {len(data)} bytes is not sector-aligned"
        )
    count = len(data) // self.sector_size
    self._check_range(sector, count)
    self.total_sectors_written += count
    start = sector * self.sector_size
    self._pending.append(
        _PendingWrite(
            completion_time=completion_time,
            sector=sector,
            old_data=bytes(self._data[start : start + len(data)]),
        )
    )
    self.undo_records_created += 1
    self._data[start : start + len(data)] = data


def _legacy_device_mark_durable(self, now):
    self.mark_durable_calls += 1
    self.durability_scan_steps += len(self._pending)
    self._pending = type(self._pending)(
        p for p in self._pending if p.completion_time > now
    )


def _legacy_segment_checksum(data, value=0):
    # Pre-batch CRC: a fresh bytes copy and a checksum call per 4 KiB
    # block.  Chaining makes the result identical to the whole-buffer
    # CRC, so the before/after fingerprints still match.
    view = memoryview(data)
    crc = value
    for offset in range(0, len(view), 4096):
        crc = zlib.crc32(bytes(view[offset : offset + 4096]), crc)
    return crc & 0xFFFFFFFF


def _legacy_checkpoint_pack(self, region_bytes):
    body = (
        Packer()
        .f64(self.timestamp)
        .u64(self.position.sequence)
        .u32(self.position.active_segment)
        .u32(self.position.active_offset)
        .u32(self.position.next_segment)
        .u32(len(self.imap_addrs))
        .u32(len(self.usage_addrs))
    )
    for addr in self.imap_addrs:
        body.u64(addr)
    for addr in self.usage_addrs:
        body.u64(addr)
    body_bytes = body.bytes()
    if len(body_bytes) + 8 > region_bytes:
        raise CorruptionError(
            f"checkpoint needs {len(body_bytes) + 8} bytes, region "
            f"holds {region_bytes}"
        )
    padded_body = body_bytes + b"\x00" * (region_bytes - 8 - len(body_bytes))
    header = Packer().u32(CHECKPOINT_MAGIC).u32(checksum(padded_body))
    return header.bytes() + padded_body


def _legacy_checkpoint_unpack(cls, data):
    from repro.errors import ChecksumMismatch

    unpacker = Unpacker(data)
    magic = unpacker.u32()
    if magic != CHECKPOINT_MAGIC:
        raise CorruptionError(f"bad checkpoint magic 0x{magic:08x}")
    crc = unpacker.u32()
    if checksum(data[unpacker.offset :]) != crc:
        raise ChecksumMismatch("checkpoint checksum mismatch")
    timestamp = unpacker.f64()
    sequence = unpacker.u64()
    active_segment = unpacker.u32()
    active_offset = unpacker.u32()
    next_segment = unpacker.u32()
    n_imap = unpacker.u32()
    n_usage = unpacker.u32()
    imap_addrs = [unpacker.u64() for _ in range(n_imap)]
    usage_addrs = [unpacker.u64() for _ in range(n_usage)]
    return cls(
        timestamp=timestamp,
        position=LogPosition(
            active_segment=active_segment,
            active_offset=active_offset,
            next_segment=next_segment,
            sequence=sequence,
        ),
        imap_addrs=imap_addrs,
        usage_addrs=usage_addrs,
    )


def _legacy_inode_pack(self):
    from repro.common.inode import INODE_SIZE

    packer = (
        Packer()
        .u32(self.inum)
        .u8(int(self.ftype))
        .u16(self.nlink)
        .u64(self.size)
        .f64(self.mtime)
        .f64(self.ctime)
        .f64(self.atime)
    )
    for addr in self.direct:
        packer.u64(addr)
    packer.u64(self.indirect)
    packer.u64(self.dindirect)
    data = packer.bytes()
    if len(data) > INODE_SIZE:
        raise AssertionError(f"inode packs to {len(data)} > {INODE_SIZE}")
    return data + b"\x00" * (INODE_SIZE - len(data))


def _legacy_inode_unpack(cls, data):
    unpacker = Unpacker(data)
    inum = unpacker.u32()
    raw_type = unpacker.u8()
    try:
        ftype = FileType(raw_type)
    except ValueError as exc:
        raise CorruptionError(f"bad inode file type {raw_type}") from exc
    nlink = unpacker.u16()
    size = unpacker.u64()
    mtime = unpacker.f64()
    ctime = unpacker.f64()
    atime = unpacker.f64()
    direct = [unpacker.u64() for _ in range(N_DIRECT)]
    indirect = unpacker.u64()
    dindirect = unpacker.u64()
    return cls(
        inum=inum,
        ftype=ftype,
        nlink=nlink,
        size=size,
        mtime=mtime,
        ctime=ctime,
        atime=atime,
        direct=direct,
        indirect=indirect,
        dindirect=dindirect,
    )


# The pre-batch SimClock: one (expiry, seq) heap entry per timer, one
# O(log n) sift per schedule and per fire — no same-timestamp batching.
# FIFO order for equal expiries comes from the monotonic seq tiebreaker,
# so simulated results are identical to the bucketed clock's.


def _legacy_clock_init(self, start=0.0):
    if start < 0:
        raise ValueError(f"clock cannot start before zero: {start}")
    self._now = float(start)
    self._timers = []
    self._timer_seq = 0
    self._ntimers = 0  # keeps __repr__ working; unused otherwise
    self.timer_batches = 0
    self.timers_fired = 0


def _legacy_clock_advance_to(self, t):
    if t <= self._now:
        return self._now
    while self._timers and self._timers[0][0] <= t:
        expiry, _seq, callback = heapq.heappop(self._timers)
        self._now = max(self._now, expiry)
        self.timer_batches += 1
        self.timers_fired += 1
        callback()
    self._now = max(self._now, t)
    return self._now


def _legacy_clock_call_at(self, t, callback):
    self._timer_seq += 1
    heapq.heappush(self._timers, (float(t), self._timer_seq, callback))


def _legacy_clock_next_timer_at(self):
    return self._timers[0][0] if self._timers else None


def _legacy_clock_cancel_all(self):
    self._timers.clear()


def _legacy_clock_pending(self):
    return len(self._timers)


def _legacy_patches():
    return [
        (SegmentUsage, "clean_segments", _legacy_usage_clean_segments),
        (SegmentUsage, "clean_count", _legacy_usage_clean_count),
        (SegmentUsage, "dirty_segments", _legacy_usage_dirty_segments),
        (SegmentUsage, "total_live_bytes", _legacy_usage_total_live_bytes),
        (SegmentUsage, "min_clean", _legacy_usage_min_clean),
        (SegmentUsage, "pack_block", _legacy_usage_pack_block),
        (SegmentUsage, "load_block", _legacy_usage_load_block),
        (SegmentInfo, "pack", _legacy_info_pack),
        (SegmentInfo, "unpack", classmethod(_legacy_info_unpack)),
        (ImapEntry, "pack", _legacy_imap_pack),
        (ImapEntry, "unpack", classmethod(_legacy_imap_unpack)),
        (InodeMap, "_load_entries", _legacy_inode_map_load_entries),
        (InodeMap, "pack_block", _legacy_inode_map_pack_block),
        (SegmentSummary, "pack", _legacy_summary_pack),
        (SegmentSummary, "unpack", classmethod(_legacy_summary_unpack)),
        (
            SegmentSummary,
            "peek_summary_blocks",
            staticmethod(_legacy_peek_summary_blocks),
        ),
        (SectorDevice, "read", _legacy_device_read),
        (SectorDevice, "write", _legacy_device_write),
        (SectorDevice, "mark_durable", _legacy_device_mark_durable),
        (SegmentManager, "_write_partial", _legacy_write_partial),
        (SegmentCleaner, "_relocate_live_blocks", _legacy_relocate_live_blocks),
        (ReadaheadPolicy, "advise", _legacy_readahead_advise),
        (BlockCache, "_evict_to_capacity", _legacy_cache_evict_to_capacity),
        (serialization, "segment_checksum", _legacy_segment_checksum),
        (CheckpointData, "pack", _legacy_checkpoint_pack),
        (CheckpointData, "unpack", classmethod(_legacy_checkpoint_unpack)),
        (Inode, "pack", _legacy_inode_pack),
        (Inode, "unpack", classmethod(_legacy_inode_unpack)),
        (SimClock, "__init__", _legacy_clock_init),
        (SimClock, "advance_to", _legacy_clock_advance_to),
        (SimClock, "call_at", _legacy_clock_call_at),
        (SimClock, "next_timer_at", _legacy_clock_next_timer_at),
        (SimClock, "cancel_all_timers", _legacy_clock_cancel_all),
        (SimClock, "pending_timers", _legacy_clock_pending),
    ]


@contextmanager
def legacy_hot_paths():
    """Temporarily restore the pre-optimization hot paths."""
    patches = _legacy_patches()
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _ in patches]
    for cls, name, fn in patches:
        setattr(cls, name, fn)
    try:
        yield
    finally:
        for cls, name, original in saved:
            setattr(cls, name, original)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def _fresh_fs(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> LogStructuredFS:
    return make_lfs(
        total_bytes=scale.disk_bytes,
        config=scale.lfs_config(),
        telemetry=telemetry,
    )


def wl_small_file(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    from repro.workloads.smallfile import run_small_file_test

    fs = _fresh_fs(scale, telemetry)
    sim_start = fs.clock.now()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    result = run_small_file_test(
        fs,
        num_files=scale.small_files,
        file_size=scale.small_file_size,
        verify=True,
    )
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    simulated = fs.clock.now() - sim_start
    fingerprint = {
        "create_seconds": result.create_seconds,
        "read_seconds": result.read_seconds,
        "delete_seconds": result.delete_seconds,
        "log_bytes_written": fs.segments.log_bytes_written,
    }
    return wall, 3 * scale.small_files, simulated, fingerprint, cpu


def wl_large_file_random_write(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    import random

    fs = _fresh_fs(scale, telemetry)
    request = scale.large_request_bytes
    n_requests = scale.large_file_bytes // request
    payload = bytes(request)
    handle = fs.create("/big")
    for index in range(n_requests):  # sequential fill (untimed setup)
        handle.pwrite(index * request, payload)
    fs.sync()
    rng = random.Random(0xB16F11E)
    offsets = [
        rng.randrange(n_requests) * request for _ in range(n_requests)
    ]
    sim_start = fs.clock.now()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for offset in offsets:
        handle.pwrite(offset, payload)
    fs.sync()
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    simulated = fs.clock.now() - sim_start
    handle.close()
    fingerprint = {
        "simulated_seconds": simulated,
        "log_bytes_written": fs.segments.log_bytes_written,
    }
    return wall, n_requests, simulated, fingerprint, cpu


def _readahead_config(scale: Scale) -> LfsConfig:
    """Config for the read workloads: readahead on, cache smaller than
    the file so sequential rereads actually hit the disk."""
    config = scale.lfs_config()
    cache = max(256 * KIB, min(config.cache_bytes, scale.large_file_bytes // 4))
    return LfsConfig(
        segment_size=config.segment_size,
        cache_bytes=cache,
        max_inodes=config.max_inodes,
        writeback=config.writeback,
        readahead_blocks=16,
    )


def _write_stream_file(fs: LogStructuredFS, scale: Scale, chunk: int):
    """Untimed setup: lay down ``large_file_bytes`` of per-chunk-tagged
    data sequentially (so a content CRC verifies read ordering)."""
    nchunks = scale.large_file_bytes // chunk
    handle = fs.create("/stream")
    for index in range(nchunks):
        payload = index.to_bytes(4, "little") * (chunk // 4)
        handle.pwrite(index * chunk, payload)
    fs.sync()
    return handle, nchunks


def _check_readahead(fs: LogStructuredFS) -> None:
    stats = fs.readahead.stats
    if stats.blocks_prefetched:
        assert stats.hits > 0, "readahead prefetched but never hit"


def wl_seq_read(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    fs = make_lfs(
        total_bytes=scale.disk_bytes,
        config=_readahead_config(scale),
        telemetry=telemetry,
    )
    chunk = 16 * fs.config.block_size
    handle, nchunks = _write_stream_file(fs, scale, chunk)
    crc = 0
    bytes_read = 0
    ops = 0
    sim_start = fs.clock.now()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for _ in range(2):  # two passes: the cache cannot hold the file
        for index in range(nchunks):
            data = handle.pread(index * chunk, chunk)
            crc = zlib.crc32(data, crc)
            bytes_read += len(data)
            ops += 1
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    simulated = fs.clock.now() - sim_start
    handle.close()
    _check_readahead(fs)
    # No simulated seconds here: readahead reschedules read I/O, so the
    # leg invariant is the data itself plus the on-disk log.
    fingerprint = {
        "bytes_read": bytes_read,
        "data_crc32": crc,
        "log_bytes_written": fs.segments.log_bytes_written,
    }
    return wall, ops, simulated, fingerprint, cpu


def wl_seq_reread_random_write(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    import random

    fs = make_lfs(
        total_bytes=scale.disk_bytes,
        config=_readahead_config(scale),
        telemetry=telemetry,
    )
    chunk = 16 * fs.config.block_size
    handle, nchunks = _write_stream_file(fs, scale, chunk)
    request = scale.large_request_bytes
    n_requests = scale.large_file_bytes // request
    payload = b"\xa5" * request
    rng = random.Random(0x5EC_0DE)
    offsets = [
        rng.randrange(n_requests) * request for _ in range(n_requests // 2)
    ]
    crc = 0
    bytes_read = 0
    sim_start = fs.clock.now()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for offset in offsets:  # random overwrites (the pooled write path)
        handle.pwrite(offset, payload)
    fs.sync()
    for index in range(nchunks):  # sequential reread (readahead path)
        data = handle.pread(index * chunk, chunk)
        crc = zlib.crc32(data, crc)
        bytes_read += len(data)
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    simulated = fs.clock.now() - sim_start
    handle.close()
    _check_readahead(fs)
    fingerprint = {
        "bytes_read": bytes_read,
        "data_crc32": crc,
        "log_bytes_written": fs.segments.log_bytes_written,
    }
    return wall, len(offsets) + nchunks, simulated, fingerprint, cpu


def _fragment_log(fs: LogStructuredFS, scale: Scale) -> int:
    """Fragment ``clean_fill_segments`` segments: interleave one batch of
    keeper blocks with a batch of churn blocks per segment (syncing each
    batch so the interleaving survives into log order), then delete the
    churn file.  Every dirty segment is left holding a few live blocks —
    the shape that maximizes cleaning passes per byte copied."""
    block_size = fs.config.block_size
    blocks_per_segment = fs.config.segment_size // block_size
    keep = scale.clean_keeper_blocks
    churn_per_batch = max(1, blocks_per_segment - keep - 1)
    payload = b"u" * block_size
    keeper = fs.create("/keep")
    churn = fs.create("/churn")
    keeper_blocks = churn_blocks = 0
    for _ in range(scale.clean_fill_segments):
        for _ in range(keep):
            keeper.pwrite(keeper_blocks * block_size, payload)
            keeper_blocks += 1
        for _ in range(churn_per_batch):
            churn.pwrite(churn_blocks * block_size, payload)
            churn_blocks += 1
        fs.sync()
    keeper.close()
    churn.close()
    fs.unlink("/churn")
    fs.sync()
    return keeper_blocks + churn_blocks


def wl_cleaning(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    fs = _fresh_fs(scale, telemetry)
    _fragment_log(fs, scale)
    sim_start = fs.clock.now()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    cleaned = fs.clean_now(fs.layout.num_segments)
    fs.disk.drain()
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    simulated = fs.clock.now() - sim_start
    fingerprint = {
        "segments_cleaned": cleaned,
        "live_blocks_copied": fs.cleaner.stats.live_blocks_copied,
        "simulated_seconds": simulated,
        "log_bytes_written": fs.segments.log_bytes_written,
    }
    # Stash the instance so probes can inspect counters (after-mode only).
    wl_cleaning.last_fs = fs  # type: ignore[attr-defined]
    return wall, max(1, cleaned), simulated, fingerprint, cpu


def _codec_fixture(scale: Scale):
    """Deterministic serialization fixture shared by both legs."""
    import random

    rng = random.Random(0x5E6_C0DE)
    bs = 4 * KIB
    entries = []
    for i in range(scale.segment_bytes // bs - 1):
        if i % 8 == 0:
            entries.append(
                SummaryEntry(
                    kind=BlockKind.INODE,
                    inum=0,
                    index=i,
                    version=i,
                    inums=tuple(
                        rng.randrange(1, 16384) for _ in range(4)
                    ),
                )
            )
        else:
            entries.append(
                SummaryEntry(
                    kind=BlockKind.DATA,
                    inum=rng.randrange(1, 16384),
                    index=i,
                    version=i & 0xFFFF,
                )
            )
    summary = SegmentSummary(
        seq=7, timestamp=123.5, next_segment_block=999, entries=entries
    )
    checkpoint = CheckpointData(
        timestamp=321.25,
        position=LogPosition(
            active_segment=3, active_offset=9, next_segment=4, sequence=77
        ),
        imap_addrs=[rng.randrange(1, 1 << 40) for _ in range(1024)],
        usage_addrs=[rng.randrange(1, 1 << 40) for _ in range(1024)],
    )
    inodes = [
        Inode(
            inum=i + 2,
            ftype=FileType.REGULAR,
            nlink=1,
            size=rng.randrange(0, 1 << 24),
            mtime=float(i),
            ctime=float(i) / 2,
            atime=0.0,
            direct=[rng.randrange(0, 1 << 32) for _ in range(N_DIRECT)],
            indirect=rng.randrange(0, 1 << 32),
            dindirect=NIL,
        )
        for i in range(48)
    ]
    return summary, checkpoint, inodes


def wl_batch_checksum(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    """Whole-segment CRC scans plus codec round-trips.

    The legacy leg patches back the per-4-KiB-block CRC and the
    Packer-per-field summary/checkpoint/inode codecs; both legs produce
    identical bytes, so one running CRC over everything serialized is
    the cross-leg fingerprint.
    """
    import random

    rng = random.Random(0xBA7C4)
    bs = 4 * KIB
    region_bytes = CHECKPOINT_REGION_BLOCKS * bs
    nsegments = max(4, scale.clean_fill_segments // 8)
    views = [
        memoryview(rng.randbytes(scale.segment_bytes))
        for _ in range(nsegments)
    ]
    summary, checkpoint, inodes = _codec_fixture(scale)
    scan_rounds = max(2, scale.clean_fill_segments // 4)
    codec_rounds = max(8, scale.clean_fill_segments // 4)
    crc = 0
    ops = 0
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for _ in range(scan_rounds):
        for view in views:
            crc = serialization.segment_checksum(view, crc)
            ops += 1
    for _ in range(codec_rounds):
        packed = summary.pack(bs)
        crc = zlib.crc32(packed, crc)
        restored = SegmentSummary.unpack(packed, bs)
        if len(restored.entries) != len(summary.entries):
            raise AssertionError("summary round-trip lost entries")
        region = checkpoint.pack(region_bytes)
        crc = zlib.crc32(region, crc)
        CheckpointData.unpack(region)
        for inode in inodes:
            blob = inode.pack()
            crc = zlib.crc32(blob, crc)
            Inode.unpack(blob)
        ops += 2 + len(inodes)
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    fingerprint = {
        "crc32": crc,
        "segment_bytes_scanned": scan_rounds * nsegments * scale.segment_bytes,
        "ops": ops,
    }
    return wall, ops, 0.0, fingerprint, cpu


def wl_scheduler_dispatch(
    scale: Scale, telemetry: Optional[Telemetry] = None
) -> Tuple[float, int, float, Dict[str, Any], float]:
    """Timer dispatch under heavy same-timestamp load.

    Phase 1 is the shape the service scheduler produces — hundreds of
    events landing on each instant, drained through the
    ``advance_to(next_timer_at())`` event-loop idiom, plus a
    same-instant rescheduling chain.  Phase 2 is a small real
    multi-client service run on the same clock.  The legacy leg patches
    back the per-timer ``(expiry, seq)`` heap; FIFO tie-breaking is
    identical in both, so the fingerprints match.
    """
    from repro.service.config import ServiceConfig
    from repro.service.scheduler import simulate_service

    timestamps = scale.clean_fill_segments * 8
    per_timestamp = 64
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    clock = SimClock()
    chain = [timestamps * per_timestamp // 8]

    def reschedule() -> None:
        fired[0] += 1
        if chain[0] > 0:
            chain[0] -= 1
            clock.call_at(clock.now(), reschedule)

    config = ServiceConfig(
        num_clients=4,
        seed=0,
        requests_per_client=10 if scale.name == "smoke" else 30,
    )
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    for t in range(1, timestamps + 1):
        at = float(t)
        for _ in range(per_timestamp):
            clock.call_at(at, tick)
    clock.call_at(float(timestamps + 1), reschedule)
    while clock.pending_timers():
        clock.advance_to(clock.next_timer_at())
    stats, fs = simulate_service(
        config, total_bytes=32 * MIB, telemetry=telemetry
    )
    fs.unmount()
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    simulated = clock.now() + fs.clock.now()
    ops = fired[0] + config.num_clients * config.requests_per_client
    fingerprint = {
        "timers_fired": fired[0],
        "clock_now": clock.now(),
        "service": stats.to_dict(),
    }
    return wall, ops, simulated, fingerprint, cpu


WORKLOADS: Dict[
    str, Callable[..., Tuple[float, int, float, Dict[str, Any], float]]
] = {
    "small_file": wl_small_file,
    "large_file_random_write": wl_large_file_random_write,
    "seq_read": wl_seq_read,
    "seq_reread_random_write": wl_seq_reread_random_write,
    "cleaning": wl_cleaning,
    "batch_checksum": wl_batch_checksum,
    "scheduler_dispatch": wl_scheduler_dispatch,
}


# ----------------------------------------------------------------------
# Probes: operation-count evidence of the O(1) invariants
# ----------------------------------------------------------------------


def run_probes(fs: LogStructuredFS) -> Dict[str, Any]:
    usage = fs.usage
    device = fs.disk.device
    usage.verify_indexes()
    probes: Dict[str, Any] = {
        "num_segments": usage.num_segments,
        "min_clean_calls": usage.min_clean_calls,
        "heap_pushes": usage.heap_pushes,
        "heap_pops": usage.heap_pops,
        "segments_cleaned": fs.cleaner.stats.segments_cleaned,
        "mark_durable_calls": device.mark_durable_calls,
        "undo_records_created": device.undo_records_created,
        "undo_records_skipped": device.undo_records_skipped,
        "durability_scan_steps": device.durability_scan_steps,
    }
    # Write-amplification ledger of the cleaning leg: the cleaner ran,
    # so the cleaner-copied bytes are non-zero and amplification > 1.
    wamp = fs.wamp_report()
    probes["wamp_user_bytes"] = wamp["user_bytes"]
    probes["wamp_log_bytes"] = wamp["log_bytes"]
    probes["wamp_cleaner_bytes"] = wamp["cleaner_bytes"]
    probes["wamp_write_amplification"] = round(
        wamp["write_amplification"], 6
    )
    # _pop_clean is amortized O(1): total heap traffic is bounded by
    # state transitions (each entry pushed once, popped at most once),
    # never by min_clean_calls * num_segments as the old scan was.
    assert usage.heap_pops <= usage.heap_pushes, probes
    assert (
        usage.heap_pushes
        == usage.num_segments + fs.cleaner.stats.segments_cleaned
    ), probes
    old_scan_equivalent = usage.min_clean_calls * usage.num_segments
    probes["pop_clean_heap_traffic"] = usage.heap_pushes + usage.heap_pops
    probes["pop_clean_legacy_scan_equivalent"] = old_scan_equivalent
    assert probes["pop_clean_heap_traffic"] <= max(
        old_scan_equivalent, probes["pop_clean_heap_traffic"]
    )
    # mark_durable is amortized O(1): every undo record pays exactly one
    # drain step, so the total work is bounded by records created — the
    # old implementation's work was sum(len(pending)) over calls.
    assert device.durability_scan_steps <= device.undo_records_created, probes
    probes["durability_steps_per_call"] = round(
        device.durability_scan_steps / max(1, device.mark_durable_calls), 4
    )
    return probes


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


class _Leg:
    """Best-of-N accumulator for one (workload, mode) pair."""

    def __init__(self) -> None:
        self.best: Optional[Tuple[float, int, float, Optional[float]]] = None
        self.fingerprint: Dict[str, Any] = {}

    def add(
        self,
        wall: float,
        ops: int,
        simulated: float,
        fp: Dict[str, Any],
        cpu: Optional[float] = None,
    ):
        if self.best is None or wall < self.best[0]:
            self.best = (wall, ops, simulated, cpu)
        self.fingerprint = fp

    def entry(self) -> Dict[str, Any]:
        assert self.best is not None
        wall, ops, simulated, cpu = self.best
        return bench_report.workload_entry(wall, ops, simulated, cpu)


def _leg_task(scale_name: str, workload_name: str, mode: str):
    """One timed leg; module-level so ``--jobs`` can farm it out.

    Returns ``(workload result tuple, probes-or-None)``.  The O(1)
    probes must run here — in the process that just ran the cleaning
    workload — because the live file system cannot cross a process
    boundary.

    Legs share a process when run sequentially, and the tracing leg
    leaves a large span graph behind; collect it before starting the
    timer so one leg's garbage never inflates the next leg's numbers.
    """
    import gc

    gc.collect()
    scale = SCALES[scale_name]
    workload = WORKLOADS[workload_name]
    if mode == "before":
        with legacy_hot_paths():
            return workload(scale), None
    if mode == "telemetry":
        return workload(scale, telemetry=Telemetry()), None
    if mode == "tracing":
        return workload(scale, telemetry=Telemetry(trace_io=True)), None
    result = workload(scale)
    probes = None
    if workload_name == "cleaning":
        probes = run_probes(wl_cleaning.last_fs)  # type: ignore[attr-defined]
    return result, probes


def run_harness(
    scale: Scale,
    compare_legacy: bool,
    min_cleaning_speedup: float,
    min_seq_read_speedup: float = 0.0,
    min_checksum_speedup: float = 0.0,
    min_dispatch_speedup: float = 0.0,
    jobs: int = 1,
) -> Dict[str, Any]:
    workloads: Dict[str, Dict[str, Any]] = {}
    checks: Dict[str, bool] = {}
    identical = True
    telemetry_identical = True
    tracing_identical = True

    # Build the full leg list up front.  Within a repeat the run order
    # alternates: in-process warm-up (allocator, page cache) favors
    # whichever leg runs later, so interleaving keeps comparisons honest.
    legs = []
    for name in WORKLOADS:
        for repeat in range(scale.repeats):
            modes = ["after", "before", "telemetry", "tracing"]
            if repeat % 2:
                modes.reverse()
            for mode in modes:
                if mode == "before" and not compare_legacy:
                    continue
                legs.append((name, mode, repeat))

    if jobs > 1:
        # Parallel legs share the machine, so wall-clock minima are
        # noisier than a sequential run: use --jobs for fingerprint /
        # identity verification and CI smoke, not for gate-quality
        # numbers.
        from repro.harness.parallel import run_tasks

        print(
            f"[perf] running {len(legs)} legs across {jobs} processes ...",
            flush=True,
        )
        outcomes = run_tasks(
            _leg_task,
            [(scale.name, name, mode) for name, mode, _ in legs],
            jobs=jobs,
        )
    else:
        outcomes = []
        for name, mode, repeat in legs:
            print(f"[perf] {name} ({mode}, run {repeat + 1}) ...", flush=True)
            outcomes.append(_leg_task(scale.name, name, mode))

    acc: Dict[str, Dict[str, _Leg]] = {
        name: {
            "after": _Leg(),
            "before": _Leg(),
            "telemetry": _Leg(),
            "tracing": _Leg(),
        }
        for name in WORKLOADS
    }
    probes: Optional[Dict[str, Any]] = None
    for (name, mode, _repeat), (result, leg_probes) in zip(legs, outcomes):
        acc[name][mode].add(*result)
        if leg_probes is not None:
            probes = leg_probes

    for name in WORKLOADS:
        after = acc[name]["after"]
        before = acc[name]["before"]
        tele = acc[name]["telemetry"]
        tracing = acc[name]["tracing"]
        entry: Dict[str, Any] = {"after": after.entry()}
        entry["telemetry_on"] = tele.entry()
        entry["telemetry_overhead"] = round(
            entry["telemetry_on"]["wall_seconds"]
            / entry["after"]["wall_seconds"]
            - 1.0,
            4,
        )
        entry["tracing_on"] = tracing.entry()
        entry["tracing_overhead"] = round(
            entry["tracing_on"]["wall_seconds"]
            / entry["after"]["wall_seconds"]
            - 1.0,
            4,
        )
        if tele.fingerprint != after.fingerprint:
            telemetry_identical = False
            print(
                f"[perf] WARNING: {name} simulated results differ with "
                f"telemetry on: on={tele.fingerprint} "
                f"off={after.fingerprint}",
                file=sys.stderr,
            )
        if tracing.fingerprint != after.fingerprint:
            tracing_identical = False
            print(
                f"[perf] WARNING: {name} simulated results differ with "
                f"tracing on: on={tracing.fingerprint} "
                f"off={after.fingerprint}",
                file=sys.stderr,
            )
        workloads[name] = entry
        if compare_legacy:
            entry["before"] = before.entry()
            if before.fingerprint != after.fingerprint:
                identical = False
                print(
                    f"[perf] WARNING: {name} simulated results differ: "
                    f"legacy={before.fingerprint} new={after.fingerprint}",
                    file=sys.stderr,
                )

    # ``probes`` came from an optimized-mode cleaning leg (asserted in
    # the process that ran it — see _leg_task).
    assert probes is not None, "no after-mode cleaning leg ran"
    checks["o1_probes"] = True  # run_probes asserts
    checks["telemetry_results_identical"] = telemetry_identical
    checks["tracing_results_identical"] = tracing_identical
    if compare_legacy:
        checks["simulated_results_identical"] = identical

    report = bench_report.build_report(
        scale=scale.name, workloads=workloads, probes=probes, checks=checks
    )

    if compare_legacy:
        for wl_name, check_name, target in (
            ("cleaning", "cleaning_speedup_ok", min_cleaning_speedup),
            ("seq_read", "seq_read_speedup_ok", min_seq_read_speedup),
            ("batch_checksum", "batch_checksum_speedup_ok", min_checksum_speedup),
            (
                "scheduler_dispatch",
                "scheduler_dispatch_speedup_ok",
                min_dispatch_speedup,
            ),
        ):
            speedup = report["workloads"][wl_name].get("speedup", 0.0)
            checks[check_name] = speedup >= target
            if not checks[check_name]:
                print(
                    f"[perf] WARNING: {wl_name} speedup {speedup:.2f}x below "
                    f"the {target:.1f}x target",
                    file=sys.stderr,
                )
    return report


def apply_baseline_check(
    report: Dict[str, Any], baseline_path: str, tolerance: float
) -> None:
    """Compare the telemetry-disabled leg against a committed baseline.

    Wall-clock numbers only transfer within one machine and one scale,
    so a missing baseline or a scale mismatch records a skip note rather
    than failing; a matching baseline makes
    ``telemetry_disabled_within_baseline`` a real check — the committed
    ``BENCH_hotpaths.json`` predates the telemetry layer, so passing it
    means disabled-mode instrumentation costs under ``tolerance``.
    """
    info: Dict[str, Any] = {"path": baseline_path, "tolerance": tolerance}
    report["baseline"] = info
    if not baseline_path or not os.path.exists(baseline_path):
        info["skipped"] = "no baseline report"
        return
    try:
        baseline = bench_report.load_report(baseline_path)
    except ValueError as exc:
        info["skipped"] = str(exc)
        return
    if baseline.get("scale") != report["scale"]:
        info["skipped"] = (
            f"scale mismatch: baseline={baseline.get('scale')!r} "
            f"run={report['scale']!r}"
        )
        return
    regressions = bench_report.find_regressions(baseline, report, tolerance)
    info["baseline_generated_at"] = baseline.get("generated_at")
    info["regressions"] = regressions
    report["checks"]["telemetry_disabled_within_baseline"] = not regressions
    for line in regressions:
        print(f"[perf] WARNING: regression vs baseline: {line}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="workload sizing (default: small)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="shortcut for --scale smoke (CI)",
    )
    parser.add_argument(
        "--no-legacy", dest="legacy", action="store_false",
        help="skip the legacy before-leg (after-only numbers)",
    )
    parser.add_argument(
        "--min-cleaning-speedup", type=float, default=2.0,
        help="fail if the cleaning workload speedup is below this "
        "(default 2.0; only with the legacy leg)",
    )
    parser.add_argument(
        "--min-seq-read-speedup", type=float, default=1.2,
        help="fail if the seq_read workload speedup is below this "
        "(default 1.2; only with the legacy leg)",
    )
    parser.add_argument(
        "--min-checksum-speedup", type=float, default=2.0,
        help="fail if the batch_checksum workload speedup is below this "
        "(default 2.0; only with the legacy leg)",
    )
    parser.add_argument(
        "--min-dispatch-speedup", type=float, default=2.0,
        help="fail if the scheduler_dispatch workload speedup is below "
        "this (default 2.0; only with the legacy leg)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the timed legs; parallel legs share "
        "the machine, so use for identity verification and CI smoke, "
        "not for gate-quality wall-clock numbers (default 1)",
    )
    parser.add_argument(
        "--output", default=os.path.join(_REPO_ROOT, "BENCH_hotpaths.json"),
        help="report path (default: BENCH_hotpaths.json at the repo root)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(_REPO_ROOT, "BENCH_hotpaths.json"),
        help="committed report to hold the telemetry-disabled leg to "
        "(skipped on scale mismatch; '' disables)",
    )
    parser.add_argument(
        "--baseline-tolerance", type=float, default=0.03,
        help="max wall-clock growth vs the baseline (default 0.03)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any check fails (CI)",
    )
    args = parser.parse_args(argv)
    scale = SCALES["smoke" if args.smoke else args.scale]

    report = run_harness(
        scale,
        compare_legacy=args.legacy,
        min_cleaning_speedup=args.min_cleaning_speedup,
        min_seq_read_speedup=args.min_seq_read_speedup,
        min_checksum_speedup=args.min_checksum_speedup,
        min_dispatch_speedup=args.min_dispatch_speedup,
        jobs=args.jobs,
    )
    # Load the baseline before write_report can overwrite it in place.
    apply_baseline_check(report, args.baseline, args.baseline_tolerance)
    bench_report.write_report(args.output, report)
    print()
    print(bench_report.summarize(report))
    print(f"\nreport written to {args.output}")
    if args.strict and not all(report["checks"].values()):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
