"""FIG5 — segment cleaning rate vs segment utilization.

Paper claim (§5.3, Figure 5): the rate at which clean segments can be
generated falls as the utilization of the cleaned segments rises;
segments with no live blocks are free to clean; highly utilized
segments yield almost no space.  This sweep reproduces the paper's
methodology exactly (create 1 KB files, delete a fixed fraction, clean)
and prints the analytic model value next to each measured point.
"""

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.harness import fig5_cleaning_rate
from repro.lfs.config import LfsConfig
from repro.units import MIB

UTILIZATIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)
DISK = 300 * MIB if PAPER_SCALE else 128 * MIB
FILL = 48 if PAPER_SCALE else 16


def test_fig5(benchmark):
    points = once(
        benchmark,
        lambda: fig5_cleaning_rate(
            UTILIZATIONS, total_bytes=DISK, fill_segments=FILL
        ),
    )
    segment_size = LfsConfig().segment_size

    table = Table(
        ["target u", "measured u", "net KB/s", "model KB/s", "gross KB/s",
         "live copied"],
        title="Figure 5: cleaning rate vs segment utilization",
    )
    rates = []
    for point, model in points:
        rate = point.clean_kb_per_second(segment_size)
        rates.append(rate)
        table.row(
            point.target_utilization,
            point.measured_utilization,
            rate,
            model,
            point.gross_kb_per_second(segment_size),
            point.live_blocks_copied,
        )
    emit(table.render())

    for (point, _model), rate in zip(points, rates):
        benchmark.extra_info[f"u{point.target_utilization}"] = round(rate, 1)

    # Monotonically decreasing in utilization.
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    # Cleaning empty segments is essentially free (fast path).
    assert rates[0] > 5 * rates[1]
    # Highly utilized segments yield almost nothing.
    assert rates[-1] < 0.15 * rates[1]
    # Within sight of the analytic model at mid utilizations.
    for point, model in points[1:]:
        measured = point.clean_kb_per_second(segment_size)
        assert 0.3 * model < measured < 3.0 * model
