"""ABL-SYNC — decomposing LFS's small-file win.

The paper attributes FFS's small-file collapse to two compounding
causes: the writes are *synchronous* (§3.1) and they are *small and
random* (§2.3).  This ablation separates them by running the Figure 3
create phase against three systems on identical hardware:

* stock FFS (synchronous metadata — the real SunOS behaviour),
* FFS with asynchronous metadata (an ablation, not a real mode: it
  forfeits FFS's crash guarantees),
* LFS.

Async-metadata FFS recovers much of the gap — asynchrony is the bigger
lever — but LFS stays ahead because its writes are also batched and
sequential rather than scattered block-sized updates.
"""

from benchmarks.conftest import emit, once
from repro.analysis.report import Table
from repro.ffs.config import FfsConfig
from repro.harness import new_rig
from repro.units import KIB, MIB
from repro.workloads.smallfile import run_small_file_test

NUM_FILES = 1500
DISK = 128 * MIB


def run_all():
    results = {}
    rig = new_rig("lfs", total_bytes=DISK)
    results["lfs"] = (
        run_small_file_test(rig.fs, num_files=NUM_FILES, file_size=1 * KIB),
        rig,
    )
    rig = new_rig("ffs", total_bytes=DISK)
    results["ffs-sync"] = (
        run_small_file_test(rig.fs, num_files=NUM_FILES, file_size=1 * KIB),
        rig,
    )
    rig = new_rig(
        "ffs",
        total_bytes=DISK,
        ffs_config=FfsConfig(synchronous_metadata=False),
    )
    results["ffs-async"] = (
        run_small_file_test(rig.fs, num_files=NUM_FILES, file_size=1 * KIB),
        rig,
    )
    return results


def test_async_metadata_ablation(benchmark):
    results = once(benchmark, run_all)

    table = Table(
        ["system", "create/s", "delete/s", "sync disk requests"],
        title=(
            "Async-metadata ablation: how much of Figure 3 is "
            "synchrony, how much is layout?"
        ),
    )
    for name, (result, rig) in results.items():
        table.row(
            name,
            result.create_per_second,
            result.delete_per_second,
            rig.disk.stats.sync_requests,
        )
    emit(table.render())

    lfs = results["lfs"][0]
    sync_ffs = results["ffs-sync"][0]
    async_ffs = results["ffs-async"][0]
    for name, (result, _rig) in results.items():
        benchmark.extra_info[f"{name}_create"] = round(
            result.create_per_second, 1
        )

    # Removing synchrony recovers most of the gap...
    assert async_ffs.create_per_second > 3 * sync_ffs.create_per_second
    # ...but the log's batched sequential writes keep LFS ahead of even
    # asynchronous update-in-place.
    assert lfs.create_per_second > 1.5 * async_ffs.create_per_second
    assert lfs.create_per_second > 5 * sync_ffs.create_per_second
