"""ABL-RAID — §2.1: arrays raise bandwidth, not access time.

Paper claim: "the bandwidth and throughput of disk subsystems can be
substantially increased by the use of arrays of disks such as RAIDs,
[but] the access time for small disk accesses is not substantially
improved".  LFS's segment-sized transfers stripe across every spindle
and scale; the FFS baseline's small synchronous metadata writes still
wait for one head, so extra spindles barely help its small-file rate.
"""

from benchmarks.conftest import emit, once
from repro.analysis.report import Table
from repro.harness import ablation_disk_array

DISK_COUNTS = (1, 2, 4)


def test_disk_array(benchmark):
    points = once(benchmark, lambda: ablation_disk_array(DISK_COUNTS))

    table = Table(
        ["system", "disks", "create files/s", "seq write KB/s"],
        title="Disk-array ablation (§2.1: bandwidth scales, latency doesn't)",
    )
    by_key = {}
    for point in points:
        by_key[(point.kind, point.num_disks)] = point
        table.row(
            point.kind.upper(),
            point.num_disks,
            point.create_files_per_second,
            point.seq_write_kb_per_second,
        )
    emit(table.render())

    for point in points:
        benchmark.extra_info[
            f"{point.kind}_{point.num_disks}d_kbps"
        ] = round(point.seq_write_kb_per_second)

    # LFS sequential write bandwidth scales with spindle count...
    lfs_scaling = (
        by_key[("lfs", 4)].seq_write_kb_per_second
        / by_key[("lfs", 1)].seq_write_kb_per_second
    )
    assert lfs_scaling > 2.0
    # ...while FFS's synchronous small-file creation barely improves.
    ffs_create_scaling = (
        by_key[("ffs", 4)].create_files_per_second
        / by_key[("ffs", 1)].create_files_per_second
    )
    assert ffs_create_scaling < 1.5
    # And on every array size LFS wins the create benchmark outright.
    for count in DISK_COUNTS:
        assert (
            by_key[("lfs", count)].create_files_per_second
            > 3 * by_key[("ffs", count)].create_files_per_second
        )
