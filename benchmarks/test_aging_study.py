"""AGING — the long-run question the paper leaves open.

Conclusion (§6): "the real test of a file system is its performance
over months and years of use ... It is from these workloads that the
overheads due to cleaning can be evaluated."  This benchmark ages an
LFS through many epochs of office/engineering churn and checks that the
cleaning overhead finds a bounded steady state rather than growing
without limit.
"""

from benchmarks.conftest import PAPER_SCALE, emit, once
from repro.analysis.report import Table
from repro.analysis.aging import run_aging_study
from repro.harness import new_rig
from repro.lfs.config import LfsConfig
from repro.units import KIB, MIB

EPOCHS = 12 if PAPER_SCALE else 8
OPS_PER_EPOCH = 3000 if PAPER_SCALE else 1200


def test_aging(benchmark):
    def run():
        config = LfsConfig(segment_size=512 * KIB, cache_bytes=6 * MIB)
        rig = new_rig("lfs", total_bytes=64 * MIB, lfs_config=config)
        return run_aging_study(
            rig.fs,
            epochs=EPOCHS,
            operations_per_epoch=OPS_PER_EPOCH,
            target_population=400,
        )

    study = once(benchmark, run)

    table = Table(
        ["epoch", "write cost", "cleaner frac", "clean segs",
         "live frac", "ops/s"],
        title="Aging study: office churn, epoch by epoch",
    )
    for sample in study.samples:
        table.row(
            sample.epoch,
            sample.write_cost,
            sample.cleaner_write_fraction,
            sample.clean_segments,
            sample.live_fraction,
            sample.ops_per_second,
        )
    emit(table.render())
    last = study.samples[-1]
    emit(
        "final segment-utilization histogram (deciles 0-9): "
        + " ".join(str(count) for count in last.utilization_histogram)
    )

    benchmark.extra_info["steady_write_cost"] = round(
        study.steady_state_write_cost(), 3
    )

    # Cleaning overhead is bounded: write cost settles well below the
    # catastrophic regime (2/(1-u) at u=0.8 would be 10).
    assert study.steady_state_write_cost() < 4.0
    # And it does settle: the last epochs agree within tolerance.
    assert study.converged(tail=3, tolerance=0.25)
    # The system stays live: clean segments never exhausted.
    assert all(sample.clean_segments > 0 for sample in study.samples)
