"""ABL-SEG — segment-size ablation.

Paper design rule (§4.3): "sizing segments so that the disk seek at the
start of a segment write is amortized across a long data transfer
time."  Sweeping the segment size shows sequential write bandwidth
climbing toward the disk's limit as segments grow, and flattening once
the seek is fully amortized (the paper's 1 MB choice sits on the flat
part of the curve).
"""

from benchmarks.conftest import emit, once
from repro.analysis.report import Table
from repro.harness import ablation_segment_size
from repro.units import KIB, MIB

SIZES = (64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB)


def test_segment_size_sweep(benchmark):
    points = once(benchmark, lambda: ablation_segment_size(SIZES))

    table = Table(
        ["segment size", "create files/s", "seq write KB/s"],
        title="Segment-size ablation (§4.3's amortization rule)",
    )
    for point in points:
        table.row(
            f"{point.segment_size // KIB} KB",
            point.create_files_per_second,
            point.seq_write_kb_per_second,
        )
    emit(table.render())

    for point in points:
        benchmark.extra_info[f"seg_{point.segment_size // KIB}k_kbps"] = round(
            point.seq_write_kb_per_second
        )

    rates = [point.seq_write_kb_per_second for point in points]
    # Bigger segments amortize the per-segment seek (and dilute the
    # per-partial-segment summary overhead): monotone improvement.
    assert all(a <= b for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0] * 1.10
    # Diminishing returns: the 1 MB -> 4 MB step buys much less than
    # the 64 KB -> 256 KB step (the curve flattens).
    small_gain = rates[1] / rates[0]
    large_gain = rates[-1] / rates[-2]
    assert large_gain < small_gain
