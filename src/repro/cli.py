"""Command-line interface: ``python -m repro <command> ...``.

Device images are ordinary host files (see
:meth:`repro.disk.device.SectorDevice.save`), so you can format an
image, write files into it, crash it, fsck or roll it forward, and
inspect the raw on-disk structures — a miniature of the workflow the
paper's systems supported.

Commands::

    mkfs IMAGE --fs {lfs,ffs} --size 64M      format a new image
    ls IMAGE [PATH]                           list a directory
    write IMAGE PATH < stdin                  write a file from stdin
    cat IMAGE PATH                            print a file
    rm IMAGE PATH                             delete a file
    mkdir IMAGE PATH                          create a directory
    inspect IMAGE                             dump on-disk structures
    fsck IMAGE                                check/repair an FFS image
    fig {1,3,4,5,scaling,recovery}            run a paper experiment
    stats IMAGE                               mount with telemetry, report
    stats A.jsonl B.jsonl ...                 merge exported telemetry
                                              streams and report
    crashtest --trials N --seed S             crash+corruption campaign
    chaos --trials N --seed S --clients C     crash-under-load campaign with
                                              durability-contract checking
    serve-sim --clients N --seed S            multi-client service sim
                                              (--record REQ.JSONL captures
                                              the request stream)
    cluster-sim --shards S --clients N        sharded scale-out run with
                                              optional live migration
                                              (--migrate SRC:DST@T)
    trace --clients N --seed S                traced service run + latency
                                              attribution (BENCH_trace.json)
    bench-diff A.json B.json                  compare two perf reports
                                              (hotpaths or service/cluster)

``fig --telemetry out.jsonl`` records the experiment's metrics and
spans (see :mod:`repro.obs`) and writes them as JSONL for offline
analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.disk.device import SectorDevice
from repro.disk.geometry import DiskGeometry
from repro.disk.sim_disk import SimDisk
from repro.errors import ReproError
from repro.ffs.filesystem import FastFileSystem
from repro.ffs.fsck import fsck as run_fsck
from repro.lfs.filesystem import LogStructuredFS
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.tools.inspect import describe_image, identify
from repro.units import KIB, MIB


def _parse_size(text: str) -> int:
    text = text.strip().upper()
    multiplier = 1
    if text.endswith("K"):
        multiplier, text = KIB, text[:-1]
    elif text.endswith("M"):
        multiplier, text = MIB, text[:-1]
    elif text.endswith("G"):
        multiplier, text = 1024 * MIB, text[:-1]
    try:
        return int(text) * multiplier
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad size: {text!r}") from exc


def _open_image(path: str, telemetry=None, readahead: int = 0):
    """Load an image and mount whatever file system it holds.

    Images load onto a :class:`FaultyDevice` with a no-fault injector:
    behavior is identical to a plain ``SectorDevice``, but the
    ``disk.fault.*`` counter series registers, so telemetry reports
    (``repro stats``) always show the fault channel — normally at zero.
    """
    from repro.faults import FaultInjector, FaultyDevice
    from repro.ffs.config import FfsConfig
    from repro.lfs.config import LfsConfig

    device = FaultyDevice.load(path)
    device.injector = FaultInjector(telemetry=telemetry)
    clock = SimClock()
    cpu = CpuModel(clock)
    disk = SimDisk(
        DiskGeometry(name="image", total_bytes=device.total_bytes),
        clock,
        device=device,
        telemetry=telemetry,
    )
    kind = identify(device)
    if kind == "lfs":
        config = LfsConfig(readahead_blocks=readahead)
        return LogStructuredFS.mount(disk, cpu, config=config), device
    if kind == "ffs":
        config = FfsConfig(readahead_blocks=readahead)
        return FastFileSystem.mount(disk, cpu, config=config), device
    raise ReproError(f"{path!r} holds no recognizable file system")


def cmd_mkfs(args) -> int:
    clock = SimClock()
    cpu = CpuModel(clock)
    disk = SimDisk(
        DiskGeometry(name="image", total_bytes=args.size), clock
    )
    if args.fs == "lfs":
        fs = LogStructuredFS.mkfs(disk, cpu)
    else:
        fs = FastFileSystem.mkfs(disk, cpu)
    fs.unmount()
    disk.device.save(args.image)
    print(f"formatted {args.image}: {args.fs} on {args.size} bytes")
    return 0


def cmd_ls(args) -> int:
    fs, _device = _open_image(args.image)
    for name in fs.listdir(args.path):
        stat = fs.stat(f"{args.path.rstrip('/')}/{name}")
        kind = "d" if stat.is_dir else "-"
        print(f"{kind} {stat.size:>10}  {name}")
    return 0


def cmd_write(args) -> int:
    fs, device = _open_image(args.image)
    data = sys.stdin.buffer.read()
    fs.write_file(args.path, data)
    fs.unmount()
    device.save(args.image)
    print(f"wrote {len(data)} bytes to {args.path}")
    return 0


def cmd_cat(args) -> int:
    fs, _device = _open_image(args.image)
    data = fs.read_file(args.path)
    buffer = getattr(sys.stdout, "buffer", None)
    if buffer is not None:
        buffer.write(data)
    else:  # stdout replaced by a text stream (tests, pipes)
        sys.stdout.write(data.decode("utf-8", "replace"))
    return 0


def cmd_rm(args) -> int:
    fs, device = _open_image(args.image)
    fs.unlink(args.path)
    fs.unmount()
    device.save(args.image)
    return 0


def cmd_mkdir(args) -> int:
    fs, device = _open_image(args.image)
    fs.mkdir(args.path)
    fs.unmount()
    device.save(args.image)
    return 0


def cmd_inspect(args) -> int:
    device = SectorDevice.load(args.image)
    print(describe_image(device))
    return 0


def cmd_fsck(args) -> int:
    device = SectorDevice.load(args.image)
    if identify(device) != "ffs":
        print("fsck only applies to FFS images (LFS recovers at mount)")
        return 1
    clock = SimClock()
    disk = SimDisk(
        DiskGeometry(name="image", total_bytes=device.total_bytes),
        clock,
        device=device,
    )
    report = run_fsck(disk)
    print(
        f"fsck: {report.inodes_scanned} inodes scanned, "
        f"{report.repairs()} repairs, "
        f"{report.duration_seconds:.3f}s simulated"
    )
    device.save(args.image)
    return 0 if report.clean or report.repairs() else 1


def cmd_verify(args) -> int:
    device = SectorDevice.load(args.image)
    kind = identify(device)
    if kind == "lfs":
        from repro.lfs.verify import verify_lfs

        report = verify_lfs(device)
        print(
            f"verify: {report.inodes_checked} inodes, "
            f"{report.blocks_checked} blocks, "
            f"{report.directories_checked} directories checked"
        )
        for error in report.errors:
            print(f"  INCONSISTENT: {error}")
        print("clean" if report.consistent else f"{len(report.errors)} errors")
        return 0 if report.consistent else 1
    if kind == "ffs":
        print("use 'fsck' for FFS images")
        return 1
    print("unrecognized image")
    return 1


def cmd_fig(args) -> int:
    from repro.analysis.report import Table
    from repro.harness import (
        fig1_fig2_creation_traces,
        fig3_small_file,
        fig4_large_file,
        fig5_cleaning_rate,
        recovery_comparison,
        sec31_cpu_scaling,
    )
    from repro.lfs.config import LfsConfig
    from repro.obs import Telemetry, export_jsonl
    from repro.workloads.largefile import PHASES

    telemetry = Telemetry() if args.telemetry else None
    which = args.which
    if which == "1":
        for kind, trace in fig1_fig2_creation_traces(
            telemetry=telemetry
        ).items():
            print(f"--- {kind}: {trace.write_requests} writes "
                  f"({trace.sync_writes} sync) ---")
            print(trace.table)
    elif which == "3":
        results = fig3_small_file(
            num_files=1000, total_bytes=128 * MIB, telemetry=telemetry
        )
        table = Table(["system", "create/s", "read/s", "delete/s"])
        for kind, r in results.items():
            table.row(kind, r.create_per_second, r.read_per_second,
                      r.delete_per_second)
        print(table.render())
    elif which == "4":
        results = fig4_large_file(
            file_bytes=10 * MIB, total_bytes=128 * MIB, telemetry=telemetry
        )
        table = Table(["phase", "lfs KB/s", "ffs KB/s"])
        for phase in PHASES:
            table.row(phase, results["lfs"].kb_per_second(phase),
                      results["ffs"].kb_per_second(phase))
        print(table.render())
    elif which == "5":
        seg = LfsConfig().segment_size
        table = Table(["utilization", "KB/s cleaned", "model KB/s"])
        for point, model in fig5_cleaning_rate(
            (0.0, 0.2, 0.4, 0.6, 0.8),
            total_bytes=96 * MIB,
            fill_segments=12,
            telemetry=telemetry,
        ):
            table.row(point.target_utilization,
                      point.clean_kb_per_second(seg), model)
        print(table.render())
    elif which == "scaling":
        table = Table(["cpu", "lfs ms/op", "ffs ms/op"])
        for point in sec31_cpu_scaling(
            (1.0, 4.0, 16.0), num_files=100, telemetry=telemetry
        ):
            table.row(f"{point.speed_factor:.0f}x",
                      point.lfs_ms_per_create_delete,
                      point.ffs_ms_per_create_delete)
        print(table.render())
    elif which == "recovery":
        table = Table(["files", "lfs recovery s", "ffs fsck s"])
        for point in recovery_comparison(
            (100, 400), total_bytes=96 * MIB, telemetry=telemetry
        ):
            table.row(point.num_files, point.lfs_recovery_seconds,
                      point.ffs_fsck_seconds)
        print(table.render())
    if telemetry is not None:
        lines = export_jsonl(telemetry, args.telemetry)
        print(f"telemetry: {lines} records -> {args.telemetry}")
    return 0


def _exercise_reads(fs, pattern: str, chunk_blocks: int = 4) -> int:
    """Read every regular file in the image (recursively).

    ``seq-read`` reads each file front to back in small chunks — the
    access pattern the readahead pipeline detects; ``random-read``
    touches the same chunks in a seeded-random order, which must never
    trigger readahead (``cache.readahead_hits`` stays 0).
    """
    import random as _random

    rng = _random.Random(0)
    chunk = chunk_blocks * fs.block_size
    total = 0

    def walk(path: str) -> None:
        nonlocal total
        for name in fs.listdir(path):
            child = f"{path.rstrip('/')}/{name}"
            stat = fs.stat(child)
            if stat.is_dir:
                walk(child)
                continue
            offsets = list(range(0, max(stat.size, 1), chunk))
            if pattern == "random-read":
                rng.shuffle(offsets)
            with fs.open(child) as handle:
                for offset in offsets:
                    total += len(handle.pread(offset, chunk))

    walk("/")
    return total


def cmd_stats(args) -> int:
    from repro.obs import (
        Telemetry,
        export_jsonl,
        merge_jsonl_files,
        render_report,
    )

    if all(path.endswith(".jsonl") for path in args.inputs):
        # Telemetry-stream mode: fold one or more exported JSONL
        # streams (one per shard rig, say) into a single report — the
        # same merge arithmetic the parallel runner uses.
        merged = merge_jsonl_files(args.inputs)
        title = ", ".join(args.inputs)
        print(render_report(merged, title=f"merged {title}"))
        if args.telemetry:
            lines = export_jsonl(merged, args.telemetry)
            print(f"telemetry: {lines} records -> {args.telemetry}")
        return 0
    if len(args.inputs) != 1:
        raise ReproError(
            "stats takes either one device image or telemetry .jsonl "
            "files (all arguments must end in .jsonl to merge)"
        )
    image = args.inputs[0]
    telemetry = Telemetry()
    # Readahead is armed for either exercise pattern: the point of the
    # random-read leg is that the policy itself declines to prefetch
    # (cache.readahead_hits stays 0), not that it was switched off.
    readahead = args.readahead if args.exercise else 0
    fs, _device = _open_image(
        image, telemetry=telemetry, readahead=readahead
    )
    if args.exercise:
        nbytes = _exercise_reads(fs, args.exercise)
        print(f"exercised {args.exercise}: {nbytes} bytes read")
    print(render_report(telemetry, title=f"mount {image}"))
    print("-- disk --")
    print(f"  {fs.disk.stats.summary()}")
    if args.telemetry:
        lines = export_jsonl(telemetry, args.telemetry)
        print(f"telemetry: {lines} records -> {args.telemetry}")
    return 0


def cmd_crashtest(args) -> int:
    from repro.faults import run_campaign
    from repro.obs import Telemetry, export_jsonl

    telemetry = Telemetry() if args.telemetry else None
    report = run_campaign(
        trials=args.trials,
        seed=args.seed,
        telemetry=telemetry,
        device_bytes=args.size,
        log=print if args.verbose else None,
        jobs=args.jobs,
    )
    print(report.render())
    if telemetry is not None:
        lines = export_jsonl(telemetry, args.telemetry)
        print(f"telemetry: {lines} records -> {args.telemetry}")
    return 0 if report.survived_all else 1


def cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos_campaign
    from repro.obs import Telemetry, export_jsonl

    telemetry = Telemetry() if args.telemetry else None
    report = run_chaos_campaign(
        trials=args.trials,
        seed=args.seed,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        telemetry=telemetry,
        device_bytes=args.size,
        log=print if args.verbose else None,
        jobs=args.jobs,
    )
    print(report.render())
    if telemetry is not None:
        lines = export_jsonl(telemetry, args.telemetry)
        print(f"telemetry: {lines} records -> {args.telemetry}")
    return 0 if report.passed_all else 1


def cmd_serve_sim(args) -> int:
    from repro.obs import Telemetry, export_jsonl
    from repro.service import ServiceConfig, simulate_service
    from repro.service.recording import RequestRecorder

    telemetry = Telemetry() if args.telemetry else None
    recorder = RequestRecorder() if args.record else None
    config = ServiceConfig(
        num_clients=args.clients,
        seed=args.seed,
        requests_per_client=args.requests_per_client,
        commit_window=args.commit_window,
        fill_fraction=args.fill,
    )
    stats, fs = simulate_service(
        config, total_bytes=args.size, telemetry=telemetry,
        recorder=recorder,
    )
    fs.unmount()
    print(stats.render(f"serve-sim clients={args.clients} seed={args.seed}"))
    wamp = fs.wamp_report()
    print(
        f"write amplification        "
        f"{wamp['write_amplification']:.4f} "
        f"(user={wamp['user_bytes']} log={wamp['log_bytes']} "
        f"cleaner={wamp['cleaner_bytes']})"
    )
    if args.image:
        fs.disk.device.save(args.image)
        print(f"image -> {args.image}")
    if recorder is not None:
        count = recorder.write(args.record)
        print(f"requests: {count} records -> {args.record}")
    if telemetry is not None:
        lines = export_jsonl(telemetry, args.telemetry)
        print(f"telemetry: {lines} records -> {args.telemetry}")
    return 1 if stats.dropped else 0


def _parse_migration(text: str):
    """``SRC:DST@T`` -> :class:`repro.cluster.MigrationSpec`."""
    from repro.cluster import MigrationSpec

    try:
        pair, at = text.split("@", 1)
        source, target = pair.split(":", 1)
        return MigrationSpec(int(source), int(target), float(at))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad migration {text!r} (want SRC:DST@T, e.g. 2:0@0.05)"
        ) from exc


def cmd_cluster_sim(args) -> int:
    from repro.cluster import ClusterConfig, run_cluster
    from repro.obs import export_jsonl, render_report

    config = ClusterConfig(
        shards=args.shards,
        clients=args.clients,
        seed=args.seed,
        requests_per_client=args.requests_per_client,
        placement=args.placement,
        migrations=tuple(args.migrate or ()),
    )
    result = run_cluster(
        config, jobs=args.jobs, total_bytes=args.size
    )
    print(result.render())
    if args.stats:
        print(render_report(result.telemetry, title="cluster telemetry"))
    if args.telemetry:
        lines = export_jsonl(result.telemetry, args.telemetry)
        print(f"telemetry: {lines} records -> {args.telemetry}")
    return 0 if result.consistent else 1


def cmd_trace(args) -> int:
    from repro.obs import Telemetry, export_jsonl
    from repro.obs.attribution import (
        build_trace_report,
        render_trace_report,
        write_trace_report,
    )
    from repro.service import ServiceConfig, simulate_service

    telemetry = Telemetry(trace_io=args.trace_io)
    config = ServiceConfig(
        num_clients=args.clients,
        seed=args.seed,
        requests_per_client=args.requests_per_client,
        commit_window=args.commit_window,
        fill_fraction=args.fill,
    )
    stats, fs = simulate_service(
        config, total_bytes=args.size, telemetry=telemetry
    )
    fs.unmount()
    report = build_trace_report(
        telemetry,
        fs=fs,
        config={
            "clients": args.clients,
            "seed": args.seed,
            "requests_per_client": args.requests_per_client,
            "commit_window": args.commit_window,
            "fill_fraction": args.fill,
            "trace_io": bool(args.trace_io),
        },
    )
    write_trace_report(report, args.output)
    print(render_trace_report(report))
    print(f"trace report -> {args.output}")
    if args.export:
        lines = export_jsonl(telemetry, args.export)
        print(f"trace export: {lines} records -> {args.export}")
    return 1 if stats.dropped else 0


def cmd_bench_diff(args) -> int:
    from repro.tools.bench_report import (
        diff_reports,
        diff_service_reports,
        is_service_report,
        load_any_report,
        render_diff,
        render_service_diff,
    )

    old = load_any_report(args.old)
    new = load_any_report(args.new)
    if is_service_report(old) != is_service_report(new):
        print(
            "error: cannot diff a hotpaths report against a service "
            "report",
            file=sys.stderr,
        )
        return 1
    max_regression = args.max_regression / 100.0
    if is_service_report(old):
        diff = diff_service_reports(
            old, new, max_regression=max_regression
        )
        print(render_service_diff(diff))
    else:
        diff = diff_reports(old, new, max_regression=max_regression)
        print(render_diff(diff))
    return 1 if diff["regressions"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LFS Storage Manager reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("mkfs", help="format a new device image")
    p.add_argument("image")
    p.add_argument("--fs", choices=("lfs", "ffs"), default="lfs")
    p.add_argument("--size", type=_parse_size, default=64 * MIB)
    p.set_defaults(func=cmd_mkfs)

    p = sub.add_parser("ls", help="list a directory")
    p.add_argument("image")
    p.add_argument("path", nargs="?", default="/")
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("write", help="write stdin to a file in the image")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_write)

    p = sub.add_parser("cat", help="print a file from the image")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_cat)

    p = sub.add_parser("rm", help="remove a file")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_rm)

    p = sub.add_parser("mkdir", help="create a directory")
    p.add_argument("image")
    p.add_argument("path")
    p.set_defaults(func=cmd_mkdir)

    p = sub.add_parser("inspect", help="dump on-disk structures")
    p.add_argument("image")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("fsck", help="check/repair an FFS image")
    p.add_argument("image")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("verify", help="offline consistency check (LFS)")
    p.add_argument("image")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("fig", help="run a paper experiment (reduced scale)")
    p.add_argument(
        "which", choices=("1", "3", "4", "5", "scaling", "recovery")
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        help="record metrics and spans; write them as JSONL here",
    )
    p.set_defaults(func=cmd_fig)

    p = sub.add_parser(
        "stats",
        help="mount an image with telemetry on and report, or merge "
        "exported telemetry .jsonl streams and report",
    )
    p.add_argument(
        "inputs",
        nargs="+",
        metavar="IMAGE | JSONL...",
        help="one device image, or one or more exported telemetry "
        ".jsonl streams to merge",
    )
    p.add_argument(
        "--exercise",
        choices=("seq-read", "random-read"),
        help="read every file in this pattern (readahead armed) before "
        "reporting, so cache.readahead_* series show real traffic",
    )
    p.add_argument(
        "--readahead",
        type=int,
        default=16,
        metavar="BLOCKS",
        help="readahead window used with --exercise (default 16)",
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        help="also write the raw metrics/spans as JSONL here",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "crashtest",
        help="run a seeded crash+corruption campaign and report survival",
    )
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--size", type=_parse_size, default=24 * MIB)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trials (report is byte-identical "
        "for any value)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="print a line per trial"
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        help="record campaign metrics/spans; write them as JSONL here",
    )
    p.set_defaults(func=cmd_crashtest)

    p = sub.add_parser(
        "chaos",
        help="crash a loaded service rig at adversarial instants and "
        "check the durability contract after every remount",
    )
    p.add_argument("--trials", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests-per-client", type=int, default=80)
    p.add_argument("--size", type=_parse_size, default=32 * MIB)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trials (report is byte-identical "
        "for any value)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="print a line per trial"
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        help="record campaign metrics/spans; write them as JSONL here",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve-sim",
        help="run the multi-client service simulation and report",
    )
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests-per-client", type=int, default=100)
    p.add_argument(
        "--commit-window",
        type=float,
        default=0.01,
        help="group-commit window in simulated seconds",
    )
    p.add_argument(
        "--fill",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="pre-fill the log to this fraction of serviceable capacity",
    )
    p.add_argument("--size", type=_parse_size, default=64 * MIB)
    p.add_argument(
        "--image",
        metavar="OUT.IMG",
        help="save the post-run device image here",
    )
    p.add_argument(
        "--record",
        metavar="OUT.JSONL",
        help="capture the client request stream (id, op, path, size, "
        "issue time) as JSONL here",
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        help="record service metrics/spans; write them as JSONL here",
    )
    p.set_defaults(func=cmd_serve_sim)

    p = sub.add_parser(
        "cluster-sim",
        help="run the sharded scale-out simulation: a router over N "
        "LFS volumes, optional live shard migration",
    )
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--clients", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests-per-client", type=int, default=40)
    p.add_argument(
        "--placement",
        choices=("hash", "prefix"),
        default="hash",
        help="client->shard placement policy (default hash ring)",
    )
    p.add_argument(
        "--migrate",
        type=_parse_migration,
        action="append",
        metavar="SRC:DST@T",
        help="migrate shard SRC's clients onto shard DST starting T "
        "simulated seconds into the run (repeatable)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the shard groups (output is "
        "byte-identical for any value)",
    )
    p.add_argument("--size", type=_parse_size, default=64 * MIB)
    p.add_argument(
        "--stats",
        action="store_true",
        help="also print the merged cluster telemetry report",
    )
    p.add_argument(
        "--telemetry",
        metavar="OUT.JSONL",
        help="write the merged cluster metrics as JSONL here",
    )
    p.set_defaults(func=cmd_cluster_sim)

    p = sub.add_parser(
        "trace",
        help="run a traced service simulation and write the latency "
        "attribution report (BENCH_trace.json)",
    )
    p.add_argument("--clients", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests-per-client", type=int, default=100)
    p.add_argument(
        "--commit-window",
        type=float,
        default=0.01,
        help="group-commit window in simulated seconds",
    )
    p.add_argument(
        "--fill",
        type=float,
        default=0.85,
        metavar="FRACTION",
        help="pre-fill the log to this fraction of serviceable capacity "
        "(the default engages the cleaner, so throttle attribution and "
        "cleaner-copied bytes are exercised)",
    )
    p.add_argument("--size", type=_parse_size, default=64 * MIB)
    p.add_argument(
        "--output",
        default="BENCH_trace.json",
        metavar="OUT.JSON",
        help="where to write the attribution report",
    )
    p.add_argument(
        "--export",
        metavar="OUT.JSONL",
        help="also write the raw trace tree (metrics + spans) as JSONL",
    )
    p.add_argument(
        "--trace-io",
        action="store_true",
        help="record a span per disk request (finer tree, bigger export)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench-diff",
        help="compare two perf reports (hotpaths: workload by "
        "workload; service/cluster: point by point)",
    )
    p.add_argument(
        "old", help="baseline BENCH_hotpaths.json / BENCH_service.json"
    )
    p.add_argument(
        "new", help="candidate BENCH_hotpaths.json / BENCH_service.json"
    )
    p.add_argument(
        "--max-regression",
        type=float,
        default=3.0,
        metavar="PCT",
        help="fail (exit 1) if any workload is more than PCT%% slower "
        "(default 3)",
    )
    p.set_defaults(func=cmd_bench_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
