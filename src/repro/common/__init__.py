"""On-disk structures shared by LFS and the FFS baseline.

The paper stresses (§4.2) that LFS keeps the *same* inode, indirect-block
and directory formats as the UNIX file system — only their placement
differs.  We enforce that by making both file systems use the codecs in
this package.
"""

from repro.common.inode import (
    BlockKey,
    BlockKind,
    FileType,
    Inode,
    INODE_SIZE,
    NIL,
    pointers_per_block,
)
from repro.common.directory import DirectoryBlock, MAX_NAME_LEN
from repro.common.serialization import checksum

__all__ = [
    "BlockKey",
    "BlockKind",
    "FileType",
    "Inode",
    "INODE_SIZE",
    "NIL",
    "pointers_per_block",
    "DirectoryBlock",
    "MAX_NAME_LEN",
    "checksum",
]
