"""Binary packing helpers for on-disk structures.

Everything a file system in this library persists goes through these
helpers, so that a mounted file system can be reconstructed from device
bytes alone (the crash-recovery tests depend on this).

The field primitives are precompiled :class:`struct.Struct` instances
(module-level ``U8`` … ``F64``): hot paths with fixed record layouts —
segment-usage entries, inode-map entries, summary headers — compose
these (or their own precompiled record Structs) instead of re-parsing a
format string per field.  :class:`Packer`/:class:`Unpacker` stay the
convenient field-at-a-time interface for everything else.

Batch engine
------------

The vectorized hot paths sit next to the scalar primitives:

* :class:`BatchPacker` serializes a whole record stream into one
  **preallocated** buffer with ``pack_into`` — no per-field ``bytes``
  objects, no final ``b"".join`` — and can backfill a CRC slot after
  the body is known (the summary/checkpoint layout);
* :func:`checksum_chain` / :func:`segment_checksum` compute CRCs with
  chained ``zlib.crc32`` calls over whole-segment memoryviews instead
  of per-block slices (one C call per span, zero copies);
* :func:`pack_u64_array` / :func:`unpack_u64_array` convert address
  arrays in a single ``struct`` (or numpy) operation.

The numpy fast path is opt-in via :func:`set_numpy_batch` (wired to
``LfsConfig.numpy_batch``); it produces byte-identical output — both
paths emit the same little-endian layout — so the pure-python fallback
stays the seeded default and images remain byte-identical either way.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.errors import CorruptionError

# Precompiled little-endian field primitives shared by every record.
U8 = struct.Struct("<B")
U16 = struct.Struct("<H")
U32 = struct.Struct("<I")
U64 = struct.Struct("<Q")
F64 = struct.Struct("<d")

Buffer = Union[bytes, bytearray, memoryview]

# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------


def checksum(data: Buffer) -> int:
    """32-bit checksum used by summary blocks and checkpoint regions."""
    return zlib.crc32(data) & 0xFFFFFFFF


def checksum_chain(chunks: Iterable[Buffer], value: int = 0) -> int:
    """CRC32 chained across ``chunks`` without concatenating them.

    Equivalent to ``checksum(b"".join(chunks))`` but allocation-free:
    each chunk (bytes or memoryview) feeds one ``zlib.crc32`` call with
    the running value.  Hot callers hand this the header and body views
    of a structure that was never materialized contiguously.
    """
    for chunk in chunks:
        value = zlib.crc32(chunk, value)
    return value & 0xFFFFFFFF


def segment_checksum(data: Buffer, value: int = 0) -> int:
    """CRC over a whole segment (or device image) span in one call.

    The batch replacement for the per-block pattern
    ``for b in blocks: crc = checksum(bytes(seg[b*bs:(b+1)*bs]))`` —
    one chained ``zlib.crc32`` over the whole memoryview, no per-block
    slicing, no copies.  Accepts an initial ``value`` so multi-segment
    scans can chain segment CRCs into an image fingerprint.
    """
    return zlib.crc32(data, value) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Block padding
# ----------------------------------------------------------------------


def pad_block(data: bytes, block_size: int) -> bytes:
    """Zero-pad ``data`` up to ``block_size`` bytes.

    Already-aligned input is returned unchanged (no copy): callers on
    the write path routinely pass exactly block-sized payloads, and the
    old unconditional ``data + b""`` duplicated every one of them.
    """
    if len(data) > block_size:
        raise ValueError(
            f"data of {len(data)} bytes does not fit a {block_size}-byte block"
        )
    if len(data) == block_size:
        return data
    return data + b"\x00" * (block_size - len(data))


# ----------------------------------------------------------------------
# Scalar field-at-a-time interfaces
# ----------------------------------------------------------------------


class Packer:
    """Appends fixed-width fields and length-prefixed strings."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Packer":
        self._parts.append(U8.pack(value))
        return self

    def u16(self, value: int) -> "Packer":
        self._parts.append(U16.pack(value))
        return self

    def u32(self, value: int) -> "Packer":
        self._parts.append(U32.pack(value))
        return self

    def u64(self, value: int) -> "Packer":
        self._parts.append(U64.pack(value))
        return self

    def f64(self, value: float) -> "Packer":
        self._parts.append(F64.pack(value))
        return self

    def raw(self, data: bytes) -> "Packer":
        self._parts.append(data)
        return self

    def string(self, text: str) -> "Packer":
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"string too long to serialize: {len(encoded)} bytes")
        self.u16(len(encoded))
        self._parts.append(encoded)
        return self

    def bytes(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class Unpacker:
    """Reads fields written by :class:`Packer`, validating bounds."""

    def __init__(self, data: Buffer, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    def _take(self, size: int) -> Buffer:
        if self._offset + size > len(self._data):
            raise CorruptionError(
                f"truncated structure: wanted {size} bytes at offset "
                f"{self._offset}, have {len(self._data)}"
            )
        chunk = self._data[self._offset : self._offset + size]
        self._offset += size
        return chunk

    def u8(self) -> int:
        return U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return F64.unpack(self._take(8))[0]

    def raw(self, size: int) -> Buffer:
        return self._take(size)

    def string(self) -> str:
        length = self.u16()
        # str(buf, "utf-8") accepts any buffer; .decode() would reject
        # the memoryviews the zero-copy read path hands us.
        return str(self._take(length), "utf-8")

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        return len(self._data) - self._offset


# ----------------------------------------------------------------------
# Batch interfaces
# ----------------------------------------------------------------------


class BatchPacker:
    """Packs fields straight into a preallocated buffer.

    Where :class:`Packer` builds a list of tiny ``bytes`` objects and
    joins them, this writes every field in place with ``pack_into`` —
    the serialization path allocates nothing beyond the one buffer the
    caller (typically the segment writer's pooled segment buffer, or a
    checkpoint-region-sized bytearray) already owns.

    ``skip`` reserves a slot to be backfilled later — the CRC field of
    summary and checkpoint layouts is written *after* the body it
    covers via :meth:`patch_u32`.
    """

    __slots__ = ("_buffer", "_base", "_offset", "_limit")

    def __init__(
        self,
        buffer: Union[bytearray, memoryview],
        offset: int = 0,
        limit: Optional[int] = None,
    ) -> None:
        self._buffer = buffer
        self._base = offset
        self._offset = offset
        self._limit = len(buffer) if limit is None else limit

    def _reserve(self, size: int) -> int:
        offset = self._offset
        if offset + size > self._limit:
            raise ValueError(
                f"batch buffer overflow: wanted {size} bytes at offset "
                f"{offset}, limit {self._limit}"
            )
        self._offset = offset + size
        return offset

    def u8(self, value: int) -> "BatchPacker":
        U8.pack_into(self._buffer, self._reserve(1), value)
        return self

    def u16(self, value: int) -> "BatchPacker":
        U16.pack_into(self._buffer, self._reserve(2), value)
        return self

    def u32(self, value: int) -> "BatchPacker":
        U32.pack_into(self._buffer, self._reserve(4), value)
        return self

    def u64(self, value: int) -> "BatchPacker":
        U64.pack_into(self._buffer, self._reserve(8), value)
        return self

    def f64(self, value: float) -> "BatchPacker":
        F64.pack_into(self._buffer, self._reserve(8), value)
        return self

    def raw(self, data: Buffer) -> "BatchPacker":
        offset = self._reserve(len(data))
        self._buffer[offset : offset + len(data)] = data
        return self

    def string(self, text: str) -> "BatchPacker":
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"string too long to serialize: {len(encoded)} bytes")
        self.u16(len(encoded))
        return self.raw(encoded)

    def u64_array(self, values: Sequence[int]) -> "BatchPacker":
        """Pack a whole address array in one operation."""
        if not values:
            return self
        offset = self._reserve(8 * len(values))
        self._buffer[offset : offset + 8 * len(values)] = pack_u64_array(values)
        return self

    def u32_array(self, values: Sequence[int]) -> "BatchPacker":
        """Pack a whole u32 array (summary inum lists) in one operation."""
        if not values:
            return self
        offset = self._reserve(4 * len(values))
        struct.pack_into(f"<{len(values)}I", self._buffer, offset, *values)
        return self

    def pack_with(self, record: struct.Struct, *values) -> "BatchPacker":
        """Pack one precompiled record layout in a single call."""
        record.pack_into(self._buffer, self._reserve(record.size), *values)
        return self

    def skip(self, size: int) -> int:
        """Reserve ``size`` bytes; returns their offset for backfill."""
        return self._reserve(size)

    def patch_u32(self, offset: int, value: int) -> "BatchPacker":
        """Backfill a u32 slot reserved earlier with :meth:`skip`."""
        U32.pack_into(self._buffer, offset, value)
        return self

    def zero_to(self, end: int) -> "BatchPacker":
        """Zero-fill from the current position up to offset ``end``."""
        if end < self._offset or end > self._limit:
            raise ValueError(
                f"cannot zero to {end}: position {self._offset}, "
                f"limit {self._limit}"
            )
        self._buffer[self._offset : end] = bytes(end - self._offset)
        self._offset = end
        return self

    @property
    def offset(self) -> int:
        return self._offset

    def written(self) -> int:
        return self._offset - self._base

    def view(self, start: int, end: int) -> memoryview:
        """Zero-copy window onto the packed bytes (absolute offsets)."""
        view = self._buffer
        if not isinstance(view, memoryview):
            view = memoryview(view)
        return view[start:end]


# ----------------------------------------------------------------------
# u64 array batch paths (with the optional numpy engine)
# ----------------------------------------------------------------------

_numpy = None
_NUMPY_BATCH = False


def set_numpy_batch(enabled: bool) -> bool:
    """Toggle the numpy fast path for u64 array (un)packing.

    Returns the effective state: enabling is gated on numpy actually
    importing, so environments without it silently keep the pure-python
    engine (the output bytes are identical either way).  Wired to
    ``LfsConfig.numpy_batch``; the seeded default is off.
    """
    global _numpy, _NUMPY_BATCH
    if not enabled:
        _NUMPY_BATCH = False
        return False
    if _numpy is None:
        try:
            import numpy
        except ImportError:
            _NUMPY_BATCH = False
            return False
        _numpy = numpy
    _NUMPY_BATCH = True
    return True


def numpy_batch_enabled() -> bool:
    return _NUMPY_BATCH


def iter_u64(data: Buffer) -> Iterator[int]:
    """Iterate a packed array of little-endian u64 values."""
    if len(data) % 8:
        raise CorruptionError(f"u64 array length {len(data)} not a multiple of 8")
    for (value,) in struct.iter_unpack("<Q", data):
        yield value


def pack_u64_array(values: Sequence[int]) -> bytes:
    """Pack ``values`` as a little-endian u64 array (one call)."""
    if _NUMPY_BATCH and len(values) >= 16:
        array = _numpy.asarray(values, dtype="<u8")
        if array.ndim != 1 or len(array) != len(values):
            raise ValueError("u64 array must be a flat sequence of ints")
        return array.tobytes()
    return struct.pack(f"<{len(values)}Q", *values)


def unpack_u64_array(data: Buffer) -> Tuple[int, ...]:
    """Unpack a whole little-endian u64 array in one operation."""
    if len(data) % 8:
        raise CorruptionError(f"u64 array length {len(data)} not a multiple of 8")
    count = len(data) // 8
    if _NUMPY_BATCH and count >= 16:
        return tuple(int(v) for v in _numpy.frombuffer(data, dtype="<u8"))
    return struct.unpack(f"<{count}Q", data)
