"""Binary packing helpers for on-disk structures.

Everything a file system in this library persists goes through these
helpers, so that a mounted file system can be reconstructed from device
bytes alone (the crash-recovery tests depend on this).

The field primitives are precompiled :class:`struct.Struct` instances
(module-level ``U8`` … ``F64``): hot paths with fixed record layouts —
segment-usage entries, inode-map entries, summary headers — compose
these (or their own precompiled record Structs) instead of re-parsing a
format string per field.  :class:`Packer`/:class:`Unpacker` stay the
convenient field-at-a-time interface for everything else.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator

from repro.errors import CorruptionError

# Precompiled little-endian field primitives shared by every record.
U8 = struct.Struct("<B")
U16 = struct.Struct("<H")
U32 = struct.Struct("<I")
U64 = struct.Struct("<Q")
F64 = struct.Struct("<d")


def checksum(data: bytes) -> int:
    """32-bit checksum used by summary blocks and checkpoint regions."""
    return zlib.crc32(data) & 0xFFFFFFFF


def pad_block(data: bytes, block_size: int) -> bytes:
    """Zero-pad ``data`` up to ``block_size`` bytes."""
    if len(data) > block_size:
        raise ValueError(
            f"data of {len(data)} bytes does not fit a {block_size}-byte block"
        )
    return data + b"\x00" * (block_size - len(data))


class Packer:
    """Appends fixed-width fields and length-prefixed strings."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Packer":
        self._parts.append(U8.pack(value))
        return self

    def u16(self, value: int) -> "Packer":
        self._parts.append(U16.pack(value))
        return self

    def u32(self, value: int) -> "Packer":
        self._parts.append(U32.pack(value))
        return self

    def u64(self, value: int) -> "Packer":
        self._parts.append(U64.pack(value))
        return self

    def f64(self, value: float) -> "Packer":
        self._parts.append(F64.pack(value))
        return self

    def raw(self, data: bytes) -> "Packer":
        self._parts.append(data)
        return self

    def string(self, text: str) -> "Packer":
        encoded = text.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ValueError(f"string too long to serialize: {len(encoded)} bytes")
        self.u16(len(encoded))
        self._parts.append(encoded)
        return self

    def bytes(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class Unpacker:
    """Reads fields written by :class:`Packer`, validating bounds."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    def _take(self, size: int) -> bytes:
        if self._offset + size > len(self._data):
            raise CorruptionError(
                f"truncated structure: wanted {size} bytes at offset "
                f"{self._offset}, have {len(self._data)}"
            )
        chunk = self._data[self._offset : self._offset + size]
        self._offset += size
        return chunk

    def u8(self) -> int:
        return U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return F64.unpack(self._take(8))[0]

    def raw(self, size: int) -> bytes:
        return self._take(size)

    def string(self) -> str:
        length = self.u16()
        # str(buf, "utf-8") accepts any buffer; .decode() would reject
        # the memoryviews the zero-copy read path hands us.
        return str(self._take(length), "utf-8")

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        return len(self._data) - self._offset


def iter_u64(data: bytes) -> Iterator[int]:
    """Iterate a packed array of little-endian u64 values."""
    if len(data) % 8:
        raise CorruptionError(f"u64 array length {len(data)} not a multiple of 8")
    for (value,) in struct.iter_unpack("<Q", data):
        yield value


def pack_u64_array(values: list[int]) -> bytes:
    """Pack ``values`` as a little-endian u64 array."""
    return struct.pack(f"<{len(values)}Q", *values)
