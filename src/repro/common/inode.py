"""Inodes, block pointers and the logical-to-physical block map.

The inode format follows the classic UNIX layout the paper keeps
unchanged (§4.2): twelve direct block pointers, one single-indirect and
one double-indirect pointer.  Disk addresses are file-system block
numbers; the value :data:`NIL` (zero) means "no block" — block zero of
every file system holds the superblock and is never file data, so zero is
unambiguous and sparse files fall out naturally.

:class:`BlockMap` implements the pointer traversal generically.  The two
file systems differ only in how they *store* indirect blocks (LFS appends
them to the log, FFS updates them in place), so the traversal takes
callbacks for loading and dirtying pointer blocks, keyed by
:class:`BlockKey`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Tuple, Union

from repro.errors import CorruptionError, InvalidArgumentError

NIL = 0
"""Null disk address (block 0 is always the superblock)."""

N_DIRECT = 12
"""Direct block pointers per inode, as in the BSD fast file system."""

INODE_SIZE = 160
"""Serialized inode size in bytes (power-of-two-friendly packing)."""

# The whole inode record as one precompiled layout: inum, ftype, nlink,
# size, mtime/ctime/atime, 12 direct + indirect + dindirect addresses.
# "<" packs without alignment padding, so this is byte-for-byte the old
# field-at-a-time Packer output; an inode (un)packs in a single call.
_INODE_RECORD = struct.Struct("<IBHQ3d14Q")
assert _INODE_RECORD.size <= INODE_SIZE
_INODE_PAD = b"\x00" * (INODE_SIZE - _INODE_RECORD.size)


def pointers_per_block(block_size: int) -> int:
    """Number of u64 disk addresses an indirect block holds."""
    return block_size // 8


class FileType(enum.IntEnum):
    FREE = 0
    REGULAR = 1
    DIRECTORY = 2


class BlockKind(enum.IntEnum):
    """What a cached/logged block is, from the owning file's viewpoint."""

    DATA = 0
    INDIRECT = 1  # single-indirect pointer block (leaf of the map tree)
    DINDIRECT = 2  # the double-indirect root pointer block
    INODE = 3  # a block of packed inodes (LFS log / FFS inode table)
    IMAP = 4  # an inode-map block (LFS only)
    SEGUSAGE = 5  # a segment-usage-array block (LFS only)


@dataclass(frozen=True)
class BlockKey:
    """Cache/log identity of a block: owner, kind and index.

    For ``DATA`` the index is the logical block number; for ``INDIRECT``
    it is the ordinal of the single-indirect block (0 = the inode's own
    indirect pointer, 1+j = the j-th leaf under the double-indirect
    root); for the remaining kinds it is the structure's block index.
    """

    inum: int
    kind: BlockKind
    index: int


@dataclass
class Inode:
    """An in-memory inode; serialize with :meth:`pack`."""

    inum: int
    ftype: FileType = FileType.FREE
    nlink: int = 0
    size: int = 0
    mtime: float = 0.0
    ctime: float = 0.0
    atime: float = 0.0
    """Access time.  Only FFS maintains it here: LFS keeps atime in the
    inode map so that reads never relocate inodes (paper footnote 2)."""
    direct: List[int] = field(default_factory=lambda: [NIL] * N_DIRECT)
    indirect: int = NIL
    dindirect: int = NIL

    def __post_init__(self) -> None:
        if len(self.direct) != N_DIRECT:
            raise InvalidArgumentError(
                f"inode needs exactly {N_DIRECT} direct pointers, "
                f"got {len(self.direct)}"
            )

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    @property
    def is_allocated(self) -> bool:
        return self.ftype is not FileType.FREE

    def nblocks(self, block_size: int) -> int:
        """Logical blocks spanned by the current size."""
        return (self.size + block_size - 1) // block_size

    def pack(self) -> bytes:
        out = bytearray(INODE_SIZE)
        self.pack_into(out, 0)
        return bytes(out)

    def pack_into(self, buffer: Union[bytearray, memoryview], offset: int) -> int:
        """Serialize into ``buffer`` at ``offset``; returns INODE_SIZE.

        One ``pack_into`` call for the whole record, plus an explicit
        zero of the padding tail (the segment writer's pooled buffers
        are reused, so stale bytes must be overwritten).
        """
        buffer[offset + _INODE_RECORD.size : offset + INODE_SIZE] = _INODE_PAD
        _INODE_RECORD.pack_into(
            buffer,
            offset,
            self.inum,
            int(self.ftype),
            self.nlink,
            self.size,
            self.mtime,
            self.ctime,
            self.atime,
            *self.direct,
            self.indirect,
            self.dindirect,
        )
        return INODE_SIZE

    @classmethod
    def unpack(cls, data: Union[bytes, memoryview]) -> "Inode":
        try:
            fields = _INODE_RECORD.unpack_from(data)
        except struct.error as exc:
            raise CorruptionError(f"truncated inode: {exc}") from exc
        inum, raw_type, nlink, size, mtime, ctime, atime = fields[:7]
        try:
            ftype = FileType(raw_type)
        except ValueError as exc:
            raise CorruptionError(f"bad inode file type {raw_type}") from exc
        direct = list(fields[7 : 7 + N_DIRECT])
        indirect = fields[7 + N_DIRECT]
        dindirect = fields[8 + N_DIRECT]
        return cls(
            inum=inum,
            ftype=ftype,
            nlink=nlink,
            size=size,
            mtime=mtime,
            ctime=ctime,
            atime=atime,
            direct=direct,
            indirect=indirect,
            dindirect=dindirect,
        )

    def copy(self) -> "Inode":
        return Inode(
            inum=self.inum,
            ftype=self.ftype,
            nlink=self.nlink,
            size=self.size,
            mtime=self.mtime,
            ctime=self.ctime,
            atime=self.atime,
            direct=list(self.direct),
            indirect=self.indirect,
            dindirect=self.dindirect,
        )


class BlockMap:
    """Walks and edits the direct/indirect pointer tree of one inode.

    ``load_pointers(key, addr)`` must return the live, mutable list of
    u64 addresses for the pointer block identified by ``key``.  The
    ``addr`` argument is the on-disk address recorded in the parent
    structure (:data:`NIL` if none); the callback is the authority — a
    file system whose cache already holds the block returns the cached
    list, otherwise it reads ``addr`` from disk, or creates a fresh
    zeroed block when ``addr`` is NIL (how LFS materializes pointer
    blocks that have never been written).  ``dirty(key)`` marks a pointer
    block modified.
    """

    def __init__(
        self,
        block_size: int,
        load_pointers: Callable[[BlockKey, int], List[int]],
        dirty: Callable[[BlockKey], None],
    ) -> None:
        self.block_size = block_size
        self.ppb = pointers_per_block(block_size)
        self._load = load_pointers
        self._dirty = dirty
        self._probe: Callable[[BlockKey], bool] = lambda _key: False
        self.max_lbn = N_DIRECT + self.ppb + self.ppb * self.ppb - 1

    def _check_lbn(self, lbn: int) -> None:
        if lbn < 0:
            raise InvalidArgumentError(f"negative logical block number: {lbn}")
        if lbn > self.max_lbn:
            raise InvalidArgumentError(
                f"logical block {lbn} beyond maximum file size "
                f"({self.max_lbn + 1} blocks)"
            )

    def single_indirect_ordinal(self, lbn: int) -> int:
        """Which INDIRECT block maps ``lbn`` (for lbn >= N_DIRECT)."""
        if lbn < N_DIRECT + self.ppb:
            return 0
        return 1 + (lbn - N_DIRECT - self.ppb) // self.ppb

    def _leaf_pointers(self, inode: Inode, lbn: int, touch: bool) -> List[int]:
        """Pointer list of the single-indirect block covering ``lbn``.

        With ``touch`` the double-indirect root is dirtied when traversed
        for a write (its leaf slot may be filled in later by the flush
        code once the leaf gets a disk address).
        """
        ordinal = self.single_indirect_ordinal(lbn)
        if ordinal == 0:
            key = BlockKey(inode.inum, BlockKind.INDIRECT, 0)
            return self._load(key, inode.indirect)
        root_key = BlockKey(inode.inum, BlockKind.DINDIRECT, 0)
        root = self._load(root_key, inode.dindirect)
        if touch:
            self._dirty(root_key)
        leaf_key = BlockKey(inode.inum, BlockKind.INDIRECT, ordinal)
        return self._load(leaf_key, root[ordinal - 1])

    def get(self, inode: Inode, lbn: int) -> int:
        """Disk address of logical block ``lbn`` (NIL for holes)."""
        self._check_lbn(lbn)
        if lbn < N_DIRECT:
            return inode.direct[lbn]
        # Avoid materializing pointer blocks for reads of obvious holes.
        if lbn < N_DIRECT + self.ppb:
            if inode.indirect == NIL and not self._cached(inode.inum, 0):
                return NIL
        elif inode.dindirect == NIL and not self._cached_root(inode.inum):
            return NIL
        pointers = self._leaf_pointers(inode, lbn, touch=False)
        return pointers[self._leaf_slot(lbn)]

    def set(self, inode: Inode, lbn: int, addr: int) -> int:
        """Point ``lbn`` at ``addr``; returns the previous address.

        Creates pointer blocks on demand and marks every touched pointer
        block dirty.  The *caller* is responsible for marking the inode
        itself dirty.
        """
        self._check_lbn(lbn)
        if lbn < N_DIRECT:
            old = inode.direct[lbn]
            inode.direct[lbn] = addr
            return old
        pointers = self._leaf_pointers(inode, lbn, touch=True)
        slot = self._leaf_slot(lbn)
        old = pointers[slot]
        pointers[slot] = addr
        ordinal = self.single_indirect_ordinal(lbn)
        self._dirty(BlockKey(inode.inum, BlockKind.INDIRECT, ordinal))
        return old

    def _leaf_slot(self, lbn: int) -> int:
        if lbn < N_DIRECT + self.ppb:
            return lbn - N_DIRECT
        return (lbn - N_DIRECT - self.ppb) % self.ppb

    # The hole-read fast path above must not hide pointer blocks that live
    # only in cache (dirty, no disk address yet — the normal LFS state).
    # File systems install a cache probe via ``set_cache_probe``.

    def set_cache_probe(self, probe: Callable[[BlockKey], bool]) -> None:
        self._probe = probe

    def _cached(self, inum: int, ordinal: int) -> bool:
        return self._probe(BlockKey(inum, BlockKind.INDIRECT, ordinal))

    def _cached_root(self, inum: int) -> bool:
        return self._probe(BlockKey(inum, BlockKind.DINDIRECT, 0))

    def iter_allocated(self, inode: Inode) -> Iterator[Tuple[int, int]]:
        """Yield ``(lbn, addr)`` for every non-NIL data pointer in range."""
        for lbn in range(inode.nblocks(self.block_size)):
            addr = self.get(inode, lbn)
            if addr != NIL:
                yield lbn, addr

    def indirect_block_keys(self, inode: Inode) -> List[BlockKey]:
        """Keys of every pointer block the inode's current size can use."""
        nblocks = inode.nblocks(self.block_size)
        keys: List[BlockKey] = []
        if nblocks > N_DIRECT:
            keys.append(BlockKey(inode.inum, BlockKind.INDIRECT, 0))
        beyond_single = nblocks - N_DIRECT - self.ppb
        if beyond_single > 0:
            keys.append(BlockKey(inode.inum, BlockKind.DINDIRECT, 0))
            nleaves = (beyond_single + self.ppb - 1) // self.ppb
            keys.extend(
                BlockKey(inode.inum, BlockKind.INDIRECT, 1 + j)
                for j in range(nleaves)
            )
        return keys
