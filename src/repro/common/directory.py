"""Directory block format.

A directory is an ordinary file whose data blocks hold packed entries:

    [u32 inum][u16 name_len][name bytes] ...

An entry never spans a block boundary.  ``inum`` is never zero for a live
entry (inode 0 does not exist), and a zero ``inum``/``name_len`` pair —
which is also what freshly zeroed space decodes to — terminates the
block.  The format matches what the paper assumes: directory *contents*
are regular file data, so in LFS a directory update is just another dirty
block headed for the log, while in FFS it is the block the create/delete
path forces synchronously to disk (Figure 1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CorruptionError, InvalidArgumentError

_ENTRY_HEADER = struct.Struct("<IH")

MAX_NAME_LEN = 255
"""Longest permitted file name, in UTF-8 bytes."""


def entry_size(name: str) -> int:
    """On-disk bytes consumed by an entry for ``name``."""
    return _ENTRY_HEADER.size + len(name.encode("utf-8"))


def validate_name(name: str) -> None:
    """Reject names the directory format cannot hold."""
    if not name:
        raise InvalidArgumentError("empty file name")
    if "/" in name:
        raise InvalidArgumentError(f"file name contains '/': {name!r}")
    if name in (".", ".."):
        raise InvalidArgumentError(f"reserved name: {name!r}")
    if len(name.encode("utf-8")) > MAX_NAME_LEN:
        raise InvalidArgumentError(f"file name too long: {name!r}")


@dataclass
class DirectoryBlock:
    """Decoded view of one directory data block."""

    block_size: int
    entries: List[Tuple[str, int]]

    @classmethod
    def decode(cls, data: bytes, block_size: int) -> "DirectoryBlock":
        if len(data) > block_size:
            raise CorruptionError(
                f"directory block of {len(data)} bytes exceeds block size "
                f"{block_size}"
            )
        entries: List[Tuple[str, int]] = []
        offset = 0
        while offset + _ENTRY_HEADER.size <= len(data):
            inum, name_len = _ENTRY_HEADER.unpack_from(data, offset)
            if inum == 0 and name_len == 0:
                break
            if inum == 0 or name_len == 0 or name_len > MAX_NAME_LEN:
                raise CorruptionError(
                    f"bad directory entry header at offset {offset}: "
                    f"inum={inum}, name_len={name_len}"
                )
            offset += _ENTRY_HEADER.size
            if offset + name_len > len(data):
                raise CorruptionError("directory entry name runs off block")
            name = str(data[offset : offset + name_len], "utf-8")
            offset += name_len
            entries.append((name, inum))
        return cls(block_size=block_size, entries=entries)

    def encode(self) -> bytes:
        parts: List[bytes] = []
        for name, inum in self.entries:
            encoded = name.encode("utf-8")
            parts.append(_ENTRY_HEADER.pack(inum, len(encoded)))
            parts.append(encoded)
        data = b"".join(parts)
        if len(data) > self.block_size:
            raise InvalidArgumentError(
                f"directory entries need {len(data)} bytes, block holds "
                f"{self.block_size}"
            )
        return data + b"\x00" * (self.block_size - len(data))

    def used_bytes(self) -> int:
        return sum(entry_size(name) for name, _ in self.entries)

    def free_bytes(self) -> int:
        return self.block_size - self.used_bytes()

    def has_room_for(self, name: str) -> bool:
        return self.free_bytes() >= entry_size(name)

    def lookup(self, name: str) -> Optional[int]:
        for entry_name, inum in self.entries:
            if entry_name == name:
                return inum
        return None

    def add(self, name: str, inum: int) -> None:
        validate_name(name)
        if inum <= 0:
            raise InvalidArgumentError(f"bad inode number for {name!r}: {inum}")
        if not self.has_room_for(name):
            raise InvalidArgumentError(f"no room in block for entry {name!r}")
        self.entries.append((name, inum))

    def remove(self, name: str) -> int:
        """Remove the entry for ``name``; returns its inode number."""
        for index, (entry_name, inum) in enumerate(self.entries):
            if entry_name == name:
                del self.entries[index]
                return inum
        raise InvalidArgumentError(f"no entry named {name!r} in block")

    def as_dict(self) -> Dict[str, int]:
        return dict(self.entries)
