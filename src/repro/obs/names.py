"""Registered metric names and span kinds — the observability contract.

Every metric series and span kind emitted by instrumented code is
declared here, in one table, so that downstream consumers (exporters,
the attribution analyzer, dashboards, the bench reports) can rely on a
closed vocabulary.  The OBS002 lint rule (:mod:`repro.tools.lint`)
enforces the contract: a string literal passed to ``.counter`` /
``.gauge`` / ``.histogram`` / ``.span`` inside an instrumented module
must be a member of :data:`METRIC_NAMES` or :data:`SPAN_KINDS`.  Adding
a new series is a two-line change — emit it and register it — and the
registration is what keeps ad-hoc, typo-prone name literals out of the
hot paths.

Naming scheme: ``<component>.<measure>`` with dot-separated lowercase
segments.  The ``wamp.*`` family is the write-amplification ledger the
paper's write-cost analysis is built on: user bytes in, log bytes out,
and the cleaner's copy traffic broken out separately.
"""

from __future__ import annotations

METRIC_NAMES = frozenset(
    {
        # -- allocation / buffer reuse ---------------------------------
        "alloc.segment_pool_reuse",
        # -- block cache ------------------------------------------------
        "cache.dirty_bytes",
        "cache.evictions",
        "cache.hits",
        "cache.insertions",
        "cache.misses",
        "cache.readahead_hits",
        "cache.readahead_prefetched",
        "cache.writeback_triggers",
        # -- checkpoints --------------------------------------------------
        "checkpoint.region_rejects",
        "checkpoint.writes",
        # -- segment cleaner ----------------------------------------------
        "cleaner.bytes_read",
        "cleaner.clean_reserve",
        "cleaner.dead_blocks_dropped",
        "cleaner.live_blocks_copied",
        "cleaner.live_bytes_copied",
        "cleaner.passes",
        "cleaner.segments_cleaned",
        "cleaner.segments_quarantined",
        "cleaner.victims",
        # -- simulated disk -----------------------------------------------
        "disk.busy_seconds",
        "disk.bytes_read",
        "disk.bytes_written",
        "disk.read_retries",
        "disk.reads",
        "disk.request_bytes",
        "disk.requests",
        "disk.sync_requests",
        "disk.vectored_reads",
        "disk.writes",
        # -- fault injection ------------------------------------------------
        "disk.fault.bad_sectors_grown",
        "disk.fault.bit_flips",
        "disk.fault.media_errors",
        "disk.fault.remaps",
        "disk.fault.torn_writes",
        "disk.fault.transient_errors",
        # -- file system (generic VFS layer) -------------------------------
        "fs.bytes_read",
        "fs.bytes_written",
        "fs.degraded",
        # -- cluster layer (sharded scale-out front-end) ---------------------
        "cluster.migrations",
        "cluster.migrated_bytes",
        "cluster.migrated_files",
        "cluster.redirected_requests",
        "cluster.routing_flips",
        "cluster.shards",
        # -- chaos campaign --------------------------------------------------
        "chaos.contract_checks",
        "chaos.contract_violations",
        "chaos.crashes_injected",
        "chaos.resumed_clients",
        "chaos.trials",
        # -- crash recovery -------------------------------------------------
        "recovery.blocks_recovered",
        "recovery.corrupt_entries_skipped",
        "recovery.media_errors",
        "recovery.partials_applied",
        # -- multi-client service layer -------------------------------------
        "service.admitted",
        "service.commit_batch_size",
        "service.degraded_failures",
        "service.rejected_degraded",
        "service.commits",
        "service.completed",
        "service.forced_admissions",
        "service.fsyncs_committed",
        "service.latency_seconds",
        "service.no_space_failures",
        "service.queue_depth",
        "service.rejected",
        "service.requests",
        "service.throttle_events",
        "service.throttle_seconds",
        # -- write-amplification ledger --------------------------------------
        "wamp.cleaner_bytes",
        "wamp.log_bytes",
        "wamp.user_bytes",
    }
)
"""Every registered metric series name (counters, gauges, histograms)."""

SPAN_KINDS = frozenset(
    {
        "cache.flush",
        "checkpoint.write",
        "cleaner.clean",
        "cluster.cutover",
        "cluster.migrate",
        "cluster.migration_redirect",
        "cleaner.relocate_segment",
        "disk.read",
        "disk.write",
        "fs.degrade",
        "fs.write",
        "recovery.roll_forward",
        "service.admission_retry",
        "service.commit_wait",
        "service.group_commit",
        "service.request",
        "service.run",
        "service.throttle",
    }
)
"""Every registered span kind."""

# Span-link relations (span.links entries carry one of these).
LINK_PAYS_FOR = "pays_for"
"""Cleaner-pass span link back to the throttled request that paid for it."""

LINK_COMMITS = "commits"
"""Group-commit span link to each request whose fsync rode the flush."""

LINK_RELATIONS = frozenset({LINK_PAYS_FOR, LINK_COMMITS})

GAUGE_MERGE_MAX = frozenset({"fs.degraded"})
"""Gauges that merge across parallel workers by ``max``, not by sum.

Most gauges are level samples whose per-worker values add (queue depth,
clean reserve).  Set-style flags do not: ``fs.degraded`` is 0 or 1 per
rig, and summing two degraded workers would print ``2`` — a value no
sequential run can produce.  :func:`repro.harness.parallel.
merge_metric_samples` consults this table so ``--jobs N`` output stays
byte-identical to ``--jobs 1``."""

__all__ = [
    "METRIC_NAMES",
    "SPAN_KINDS",
    "LINK_RELATIONS",
    "LINK_PAYS_FOR",
    "LINK_COMMITS",
    "GAUGE_MERGE_MAX",
]
