"""The :class:`Telemetry` facade: one object per simulated machine.

A ``Telemetry`` bundles the metrics registry and the span tracer and is
threaded through every constructor (disk, cache, file systems, cleaner,
checkpoint manager).  The default everywhere is :data:`NULL_TELEMETRY`,
a permanently disabled instance — instrumented code resolves null
instruments once at construction and the hot paths pay a boolean check
or a no-op call, nothing more.

Enabled/disabled is fixed at construction: components capture their
instruments when they are built, so flipping a live system on or off
would silently split its history.  Build a new rig to change modes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.obs.registry import (
    DEFAULT_MAX_LABEL_SETS,
    DEFAULT_BYTE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracer import DEFAULT_MAX_SPANS, SpanTracer
from repro.sim.clock import SimClock


class Telemetry:
    """Metrics registry + span tracer for one simulated machine."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[SimClock] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
        trace_io: bool = False,
    ) -> None:
        self.enabled = enabled
        # Per-I/O spans (one per disk request) are far finer-grained
        # than the component spans; they are opt-in so a plain
        # telemetry rig keeps its established overhead profile.
        self.trace_io = trace_io and enabled
        self.registry = MetricsRegistry(
            enabled=enabled, max_label_sets=max_label_sets
        )
        self.tracer = SpanTracer(
            clock=clock, enabled=enabled, max_spans=max_spans
        )

    # -- construction-time plumbing ------------------------------------

    def bind_clock(self, clock: SimClock) -> None:
        self.tracer.bind_clock(clock)

    # -- instrument resolution (delegates) -----------------------------

    def counter(self, name: str, **labels: Any):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        return self.registry.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BYTE_BUCKETS,
        **labels: Any,
    ):
        return self.registry.histogram(name, buckets=buckets, **labels)

    def span(self, kind: str, **attrs: Any):
        return self.tracer.span(kind, **attrs)

    def begin(self, kind: str, parent=None, **attrs: Any):
        return self.tracer.begin(kind, parent=parent, **attrs)

    def finish(self, span) -> None:
        self.tracer.finish(span)

    def resume(self, span) -> None:
        self.tracer.resume(span)

    def suspend(self, span) -> None:
        self.tracer.suspend(span)

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            **self.registry.to_dict(),
            **self.tracer.to_dict(),
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Telemetry({state}, {len(self.registry)} series, "
            f"{len(self.tracer.spans)} spans)"
        )


NULL_TELEMETRY = Telemetry(enabled=False)
"""The shared default: permanently disabled, safe to hand to anything."""
