"""Request-scoped trace contexts and latency attribution accounting.

A :class:`TraceContext` travels with one service request from arrival
to completion.  It owns the request's **root span** (kind
``service.request``) and an accumulator of disjoint latency components:

================== ====================================================
``queueing``        residual — time in the ready queue / event gaps
``admission_retry`` REJECT→resubmit backoff waits
``cleaner_throttle`` cleaning the request stalled on (throttle passes
                    *and* cleaning that fired inside its execution)
``commit_wait``     fsync hold time until the group flush starts
``migration_redirect`` parked while the client's shard was migrating
``disk``            synchronous disk stalls during execution
``fs``              file-system code time during execution
================== ====================================================

The contract the analyzer relies on: **components sum to total
latency** (queueing is computed as the exact residual at completion).
Execution time is split fs/disk/cleaner by *monotone counter deltas* —
:class:`StallProbe` samples ``SimDisk.sync_stall_seconds`` and the
cleaner's ``busy_seconds``/``disk_stall_seconds`` around each active
interval, so the split is exact on the simulated clock, not estimated.

While a context is *active* (its request is executing), its root span
is resumed onto the tracer's nesting stack, so spans opened by the
layers below — ``cleaner.clean``, ``service.group_commit``, per-I/O
``disk.*`` spans — parent under the request without those layers
knowing anything about requests.

Everything degrades to :data:`NULL_TRACE_CONTEXT` when tracing is
disabled: a shared singleton whose methods are no-ops, so the service
hot path pays a handful of no-op calls and nothing else.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.obs.tracer import Span, SpanTracer

COMPONENTS = (
    "queueing",
    "admission_retry",
    "cleaner_throttle",
    "commit_wait",
    "migration_redirect",
    "disk",
    "fs",
)
"""Attribution component names, in report order.

``migration_redirect`` is the cluster layer's contribution: time a
request spent parked while its client's working set was being migrated
between shards (see :mod:`repro.cluster.migrate`).  It stays zero in
single-volume service runs."""


class StallProbe:
    """Samples the monotone stall counters an execution split needs."""

    __slots__ = ("_disk", "_cleaner")

    def __init__(self, fs: Any) -> None:
        self._disk = getattr(fs, "disk", None)
        self._cleaner = getattr(fs, "cleaner", None)

    def sample(self) -> Tuple[float, float, float]:
        """(disk sync stall, cleaner busy, cleaner disk stall) so far."""
        disk_stall = (
            self._disk.sync_stall_seconds if self._disk is not None else 0.0
        )
        if self._cleaner is not None:
            stats = self._cleaner.stats
            return (disk_stall, stats.busy_seconds, stats.disk_stall_seconds)
        return (disk_stall, 0.0, 0.0)


class _NullTraceContext:
    """Shared no-op context for untraced runs (zero per-request cost)."""

    __slots__ = ()
    root = None
    root_id = None

    def activate(self) -> None:
        pass

    def deactivate(self) -> None:
        pass

    def begin_wait(self, kind: str, component: str) -> None:
        pass

    def end_wait(self) -> None:
        pass

    def charge(self, component: str, seconds: float) -> None:
        pass

    def charge_split(
        self, elapsed: float, delta: Tuple[float, float, float]
    ) -> None:
        pass

    def finish(self, total: float) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_TRACE_CONTEXT = _NullTraceContext()


class TraceContext:
    """One request's root span plus its latency-component ledger."""

    __slots__ = (
        "tracer",
        "root",
        "components",
        "_probe",
        "_active_start",
        "_active_sample",
        "_wait_span",
        "_wait_component",
        "_wait_start",
    )

    def __init__(
        self, tracer: SpanTracer, root: Span, probe: StallProbe
    ) -> None:
        self.tracer = tracer
        self.root = root
        self.components: Dict[str, float] = {
            name: 0.0 for name in COMPONENTS
        }
        self._probe = probe
        self._active_start: Optional[float] = None
        self._active_sample: Optional[Tuple[float, float, float]] = None
        self._wait_span: Optional[Span] = None
        self._wait_component = ""
        self._wait_start = 0.0

    @property
    def root_id(self) -> int:
        return self.root.span_id

    # -- active execution intervals -------------------------------------

    def activate(self) -> None:
        """Mark the request as executing: resume its root span and
        snapshot the stall counters the eventual split will diff."""
        self.tracer.resume(self.root)
        self._active_start = self.tracer._now()
        self._active_sample = self._probe.sample()

    def deactivate(self) -> None:
        """End the active interval and charge its fs/disk/cleaner split."""
        if self._active_start is None:
            return
        elapsed = self.tracer._now() - self._active_start
        sample = self._active_sample
        self._active_start = None
        self._active_sample = None
        self.tracer.suspend(self.root)
        after = self._probe.sample()
        self.charge_split(
            elapsed,
            (
                after[0] - sample[0],
                after[1] - sample[1],
                after[2] - sample[2],
            ),
        )

    def charge_split(
        self, elapsed: float, delta: Tuple[float, float, float]
    ) -> None:
        """Split ``elapsed`` execution seconds into fs/disk/cleaner.

        ``delta`` is (disk sync stall, cleaner busy, cleaner disk
        stall) over the interval.  Cleaning that fires *inside* an
        execution interval (emergency passes during a flush) is wholly
        the cleaner's — wall time including its I/O — matching how
        admission throttle stalls are charged; ``disk`` gets the
        remaining (non-cleaner) synchronous stalls and ``fs`` the rest.
        Both subtractions are non-negative by construction: the
        cleaner's disk stall is part of both the total disk stall and
        the cleaner's busy time.
        """
        disk_stall, cleaner_busy, cleaner_disk = delta
        disk_time = max(0.0, disk_stall - cleaner_disk)
        fs_time = max(0.0, elapsed - disk_time - cleaner_busy)
        self.components["disk"] += disk_time
        self.components["cleaner_throttle"] += cleaner_busy
        self.components["fs"] += fs_time

    # -- labeled waits ----------------------------------------------------

    def begin_wait(self, kind: str, component: str) -> None:
        """Open a labeled wait (backoff, commit window) under the root."""
        self._wait_span = self.tracer.begin(kind, parent=self.root)
        self._wait_component = component
        self._wait_start = self.tracer._now()

    def end_wait(self) -> None:
        if self._wait_span is None:
            return
        self.tracer.finish(self._wait_span)
        self.components[self._wait_component] += (
            self.tracer._now() - self._wait_start
        )
        self._wait_span = None

    def charge(self, component: str, seconds: float) -> None:
        self.components[component] += seconds

    # -- completion ---------------------------------------------------------

    def finish(self, total: float) -> None:
        """Close the root span with the final attribution attrs.

        ``queueing`` is the exact residual, so the exported components
        sum to ``lat.total`` by construction (within float rounding).
        """
        attributed = 0.0
        for name, seconds in self.components.items():
            if name != "queueing":
                attributed += seconds
        self.components["queueing"] = total - attributed
        for name in COMPONENTS:
            self.root.attrs[f"lat.{name}"] = self.components[name]
        self.root.attrs["lat.total"] = total
        self.tracer.finish(self.root)


class RequestTracer:
    """Per-run factory: builds a :class:`TraceContext` per request."""

    def __init__(self, telemetry: Any, fs: Any) -> None:
        self.telemetry = telemetry
        self.enabled = bool(telemetry.enabled and telemetry.tracer.enabled)
        self.probe = StallProbe(fs) if self.enabled else None

    def context(self, client_id: int, kind: str):
        if not self.enabled:
            return NULL_TRACE_CONTEXT
        tracer = self.telemetry.tracer
        root = tracer.begin(
            "service.request",
            parent=tracer.current_span(),
            client=client_id,
        )
        root.attrs["kind"] = kind
        return TraceContext(tracer, root, self.probe)


__all__ = [
    "COMPONENTS",
    "StallProbe",
    "TraceContext",
    "RequestTracer",
    "NULL_TRACE_CONTEXT",
]
