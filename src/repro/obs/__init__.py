"""``repro.obs`` — the unified observability layer.

One :class:`Telemetry` object per simulated machine carries a
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
and a :class:`SpanTracer` (nested simulated-time spans).  Every layer —
file systems, cleaner, checkpointing, recovery, cache, disk — publishes
into it; :mod:`repro.obs.export` turns the result into JSONL, dicts, or
a human-readable report.  The default :data:`NULL_TELEMETRY` is
permanently disabled and near-free on the hot paths.

See DESIGN.md's "Observability" section for the metric-name catalog and
the span taxonomy.
"""

from repro.obs.context import (
    COMPONENTS,
    NULL_TRACE_CONTEXT,
    RequestTracer,
    StallProbe,
    TraceContext,
)
from repro.obs.export import (
    export_jsonl,
    format_fields,
    iter_records,
    merge_jsonl_files,
    read_jsonl,
    render_report,
)
from repro.obs.names import METRIC_NAMES, SPAN_KINDS
from repro.obs.registry import (
    Counter,
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.tracer import Span, SpanTracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "SpanTracer",
    "Span",
    "TraceContext",
    "RequestTracer",
    "StallProbe",
    "NULL_TRACE_CONTEXT",
    "COMPONENTS",
    "METRIC_NAMES",
    "SPAN_KINDS",
    "export_jsonl",
    "merge_jsonl_files",
    "read_jsonl",
    "iter_records",
    "render_report",
    "format_fields",
]
