"""The metrics registry: named counters, gauges and histograms.

Every subsystem (file systems, cleaner, cache, disk) publishes its
counters here instead of growing another ad-hoc stats dataclass.  The
registry is deliberately tiny and dependency-free:

* **Counters** only go up (monotonic); **gauges** hold the latest value;
  **histograms** bucket observations into fixed upper bounds, so export
  size is bounded no matter how many observations arrive.
* Instruments are keyed by ``(name, labels)``.  Callers resolve an
  instrument once (usually in a constructor) and then call ``inc`` /
  ``set`` / ``observe`` on the hot path — lookup cost is paid at
  construction, not per event.
* A **disabled** registry hands out one shared null instrument whose
  methods do nothing, so instrumented code pays a single no-op method
  call when telemetry is off.
* A per-name **label-cardinality guard** caps how many distinct label
  sets one metric may grow; excess series collapse into a single
  overflow series instead of consuming unbounded memory (the classic
  failure mode of labelling by file name or inode number).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidArgumentError

LabelItems = Tuple[Tuple[str, str], ...]

OVERFLOW_LABELS: LabelItems = (("_overflow", "true"),)
"""Label set that absorbs series beyond the cardinality cap."""

DEFAULT_MAX_LABEL_SETS = 64

DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = (
    512.0,
    4096.0,
    65536.0,
    1048576.0,
    16777216.0,
)
"""Request/transfer size buckets (bytes); an implicit +inf bucket is
always appended."""

DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
)
"""Duration buckets (simulated seconds); implicit +inf appended."""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise InvalidArgumentError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Observations bucketed by fixed upper bounds.

    ``buckets`` are finite upper bounds in increasing order; a final
    +inf bucket is implicit.  ``counts[i]`` is the number of
    observations ``<= buckets[i]`` exclusive of earlier buckets (i.e.
    plain per-bucket counts, not cumulative).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelItems, buckets: Sequence[float]
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise InvalidArgumentError(f"histogram {name} needs buckets")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidArgumentError(
                f"histogram {name} buckets must increase: {bounds}"
            )
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self.total: float = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def sample(self) -> Dict[str, Any]:
        return {
            "buckets": [
                [bound, count]
                for bound, count in zip(
                    list(self.buckets) + ["+inf"], self.counts
                )
            ],
            "sum": self.total,
            "count": self.count,
        }


class NullInstrument:
    """Accepts every instrument method as a no-op (disabled telemetry)."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: LabelItems = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def sample(self) -> Dict[str, Any]:
        return {"value": 0}


NULL_INSTRUMENT = NullInstrument()


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Owns every instrument; the single source of exported metrics."""

    def __init__(
        self,
        enabled: bool = True,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        if max_label_sets < 1:
            raise InvalidArgumentError(
                f"max_label_sets must be positive: {max_label_sets}"
            )
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self.dropped_label_sets = 0
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._series_per_name: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Instrument resolution
    # ------------------------------------------------------------------

    def _resolve(self, kind: str, name: str, labels: Dict[str, Any], factory):
        if not self.enabled:
            return NULL_INSTRUMENT
        if not name:
            raise InvalidArgumentError("metric name cannot be empty")
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise InvalidArgumentError(
                f"metric {name!r} already registered as a {known}, "
                f"requested as a {kind}"
            )
        items = _label_items(labels)
        key = (name, items)
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument
        if self._series_per_name.get(name, 0) >= self.max_label_sets:
            # Cardinality guard: collapse into one overflow series.
            self.dropped_label_sets += 1
            key = (name, OVERFLOW_LABELS)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, OVERFLOW_LABELS)
                self._instruments[key] = instrument
            return instrument
        instrument = factory(name, items)
        self._instruments[key] = instrument
        self._series_per_name[name] = self._series_per_name.get(name, 0) + 1
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._resolve("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._resolve("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BYTE_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._resolve(
            "histogram",
            name,
            labels,
            lambda n, items: Histogram(n, items, buckets),
        )

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def get(
        self, name: str, **labels: Any
    ) -> Optional[Any]:
        """Look up an existing instrument without creating one."""
        return self._instruments.get((name, _label_items(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge series (0 if absent)."""
        instrument = self.get(name, **labels)
        return instrument.value if instrument is not None else 0

    def metric_names(self) -> List[str]:
        return sorted(self._kinds)

    def samples(self) -> Iterator[Dict[str, Any]]:
        """One export record per series, sorted by (name, labels)."""
        for (name, labels), instrument in sorted(self._instruments.items()):
            record: Dict[str, Any] = {
                "name": name,
                "kind": instrument.kind,
                "labels": dict(labels),
            }
            record.update(instrument.sample())
            yield record

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metrics": list(self.samples()),
            "dropped_label_sets": self.dropped_label_sets,
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self._instruments)} series, {state})"
