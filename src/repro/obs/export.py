"""Exporters and renderers for telemetry data.

Three consumers, three formats:

* :func:`export_jsonl` — one JSON object per line (``metric`` records,
  then ``span`` records, then one trailing ``summary``), the stream the
  ``repro fig --telemetry out.jsonl`` flag writes so any experiment can
  be post-processed outside the simulator;
* :func:`to_dict` / :func:`iter_records` — the same data as plain
  Python structures for in-process analysis and tests;
* :func:`render_report` — the human-readable report ``repro stats``
  prints: a metrics table and a per-kind span summary.

:func:`format_fields` is the shared one-line renderer ad-hoc summaries
(e.g. :meth:`repro.disk.stats.DiskStats.summary`) route through.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Sequence, Tuple, Union

from repro.obs.telemetry import Telemetry

EXPORT_SCHEMA = 1


def iter_records(telemetry: Telemetry) -> Iterator[Dict[str, Any]]:
    """Every export record: metrics, spans, then a trailing summary."""
    registry = telemetry.registry
    tracer = telemetry.tracer
    for sample in registry.samples():
        yield {"type": "metric", **sample}
    for span in tracer.spans:
        yield {"type": "span", **span.to_dict()}
    yield {
        "type": "summary",
        "schema": EXPORT_SCHEMA,
        "metric_names": registry.metric_names(),
        "span_kinds": tracer.span_kinds(),
        "span_kind_counts": dict(tracer.kind_counts),
        "span_kind_seconds": dict(tracer.kind_seconds),
        "dropped_spans": tracer.dropped_spans,
        "dropped_label_sets": registry.dropped_label_sets,
    }


def to_dict(telemetry: Telemetry) -> Dict[str, Any]:
    """The full telemetry state as one plain dict."""
    return telemetry.to_dict()


def export_jsonl(telemetry: Telemetry, out: Union[str, IO[str]]) -> int:
    """Write the JSONL stream to a path or text file; returns line count."""
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as handle:
            return export_jsonl(telemetry, handle)
    lines = 0
    for record in iter_records(telemetry):
        json.dump(record, out, sort_keys=True)
        out.write("\n")
        lines += 1
    return lines


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a stream written by :func:`export_jsonl`."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def merge_jsonl_files(paths: Sequence[str]) -> Telemetry:
    """Fold one or more exported JSONL streams into a fresh Telemetry.

    This is how ``repro stats a.jsonl b.jsonl ...`` renders a cluster
    run: each shard rig exports its own stream, and the merged registry
    state is rebuilt here via :func:`repro.harness.parallel.
    merge_metric_samples` — the same fold the parallel runner uses, so
    the rendered report matches what a single-process run of the same
    rigs would have recorded.  Span *event records* are per-rig detail
    and are not merged; their per-kind count/seconds totals are (from
    the trailing summary record, falling back to summing the span
    records for streams written before the summary carried seconds).
    """
    from repro.harness.parallel import merge_metric_samples

    merged = Telemetry()
    for path in paths:
        records = read_jsonl(path)
        metrics = [
            {key: value for key, value in record.items() if key != "type"}
            for record in records
            if record.get("type") == "metric"
        ]
        summary = next(
            (r for r in records if r.get("type") == "summary"), {}
        )
        kind_seconds = summary.get("span_kind_seconds")
        if kind_seconds is None:
            kind_seconds = {}
            for record in records:
                if record.get("type") != "span":
                    continue
                end = record.get("end")
                duration = (end or record["start"]) - record["start"]
                kind = record["kind"]
                kind_seconds[kind] = kind_seconds.get(kind, 0.0) + duration
        merge_metric_samples(
            merged,
            {
                "metrics": metrics,
                "kind_counts": summary.get("span_kind_counts", {}),
                "kind_seconds": kind_seconds,
                "dropped_spans": summary.get("dropped_spans", 0),
                "dropped_label_sets": summary.get("dropped_label_sets", 0),
            },
        )
    return merged


def format_fields(fields: Sequence[Tuple[str, Any]]) -> str:
    """Render ``(label, value)`` pairs as one comma-separated line."""
    return ", ".join(
        f"{label} {value}" if label else str(value)
        for label, value in fields
    )


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value):,}"


def render_report(telemetry: Telemetry, title: str = "telemetry") -> str:
    """Human-readable report: metric table + span-kind summary."""
    registry = telemetry.registry
    tracer = telemetry.tracer
    lines = [f"== {title} =="]
    if not telemetry.enabled:
        lines.append("telemetry disabled (nothing recorded)")
        return "\n".join(lines)

    metric_rows: List[Tuple[str, str, str]] = []
    for sample in registry.samples():
        labels = ",".join(f"{k}={v}" for k, v in sorted(sample["labels"].items()))
        name = sample["name"] + (f"{{{labels}}}" if labels else "")
        if sample["kind"] == "histogram":
            mean = sample["sum"] / sample["count"] if sample["count"] else 0.0
            value = f"count={sample['count']} mean={mean:.6g}"
        else:
            value = _format_value(sample["value"])
        metric_rows.append((name, sample["kind"], value))
    if metric_rows:
        width = max(len(row[0]) for row in metric_rows)
        lines.append(f"-- metrics ({len(metric_rows)} series) --")
        for name, kind, value in metric_rows:
            lines.append(f"  {name:<{width}}  {kind:<9} {value}")
        if registry.dropped_label_sets:
            lines.append(
                f"  ({registry.dropped_label_sets} label sets collapsed "
                f"into overflow series)"
            )
    else:
        lines.append("-- no metrics recorded --")

    if tracer.kind_counts:
        lines.append(f"-- spans ({sum(tracer.kind_counts.values())} total) --")
        width = max(len(kind) for kind in tracer.kind_counts)
        for kind in tracer.span_kinds():
            count = tracer.kind_counts[kind]
            total = tracer.kind_seconds.get(kind, 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {kind:<{width}}  n={count:<8} "
                f"total={total:.6f}s mean={mean:.6f}s"
            )
        if tracer.dropped_spans:
            lines.append(f"  ({tracer.dropped_spans} span events dropped)")
    else:
        lines.append("-- no spans recorded --")
    return "\n".join(lines)
