"""Latency attribution: from a trace tree to a per-component report.

The tracing pipeline (:mod:`repro.obs.context`) leaves one finished
``service.request`` root span per request, carrying ``lat.<component>``
attributes whose values sum to ``lat.total``.  This module aggregates
those roots into the report the paper-style analysis needs: per-kind
and overall p50/p99/mean per component, the share of total latency
each component explains, span-link counts (cleaner passes tied to the
writes that paid for them), and the ``wamp.*`` write-amplification
ledger — emitted as ``BENCH_trace.json`` by ``repro trace``.

Everything here is deterministic: nearest-rank percentiles, sorted
keys, and inputs measured on the simulated clock, so the same seed
produces a byte-identical report.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.context import COMPONENTS
from repro.obs.tracer import Span

SCHEMA_VERSION = 1

ROOT_KIND = "service.request"

_ROUND = 9  # digits; matches the service layer's latency reporting


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def request_roots(spans: List[Span]) -> List[Span]:
    """Finished request root spans carrying attribution attrs."""
    return [
        span
        for span in spans
        if span.kind == ROOT_KIND and "lat.total" in span.attrs
    ]


def _component_summary(values: List[float], grand_total: float) -> Dict:
    total = sum(values)
    return {
        "p50": round(percentile(values, 50.0), _ROUND),
        "p99": round(percentile(values, 99.0), _ROUND),
        "mean": round(total / len(values), _ROUND) if values else 0.0,
        "total": round(total, _ROUND),
        "share": round(total / grand_total, 6) if grand_total else 0.0,
    }


def _aggregate(roots: List[Span]) -> Dict[str, Any]:
    totals = [span.attrs["lat.total"] for span in roots]
    grand_total = sum(totals)
    components = {
        name: _component_summary(
            [span.attrs[f"lat.{name}"] for span in roots], grand_total
        )
        for name in COMPONENTS
    }
    return {
        "count": len(roots),
        "components": components,
        "total": {
            "p50": round(percentile(totals, 50.0), _ROUND),
            "p99": round(percentile(totals, 99.0), _ROUND),
            "mean": (
                round(grand_total / len(totals), _ROUND) if totals else 0.0
            ),
            "total": round(grand_total, _ROUND),
        },
    }


def max_sum_error(roots: List[Span]) -> float:
    """Largest |sum(components) − total| across requests (float fuzz)."""
    worst = 0.0
    for span in roots:
        attributed = sum(
            span.attrs[f"lat.{name}"] for name in COMPONENTS
        )
        worst = max(worst, abs(attributed - span.attrs["lat.total"]))
    return worst


def link_counts(spans: List[Span]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for span in spans:
        for link in span.links:
            relation = link["relation"]
            counts[relation] = counts.get(relation, 0) + 1
    return counts


def build_trace_report(
    telemetry: Any,
    fs: Any = None,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the full ``BENCH_trace.json`` document.

    ``telemetry`` supplies the trace tree, ``fs`` (optional) the
    ``wamp.*`` ledger, ``config`` (optional) run parameters recorded
    for reproducibility.
    """
    tracer = telemetry.tracer
    roots = request_roots(tracer.spans)
    by_kind: Dict[str, List[Span]] = {}
    for span in roots:
        by_kind.setdefault(span.attrs.get("kind", "?"), []).append(span)
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "requests": len(roots),
        "max_sum_error": max_sum_error(roots),
        "attribution": {
            "overall": _aggregate(roots),
            "by_kind": {
                kind: _aggregate(spans)
                for kind, spans in sorted(by_kind.items())
            },
        },
        "links": link_counts(tracer.spans),
        "spans": {
            "kind_counts": dict(sorted(tracer.kind_counts.items())),
            "dropped": tracer.dropped_spans,
        },
    }
    if config is not None:
        report["config"] = dict(config)
    if fs is not None and hasattr(fs, "wamp_report"):
        report["wamp"] = fs.wamp_report()
    disk = getattr(fs, "disk", None)
    if disk is not None and hasattr(disk, "retry_stall_seconds"):
        # Transient-read retry backoff is part of the disk's busy
        # timeline (it is inside ``lat.disk`` via sync_stall_seconds);
        # surfacing it separately shows how much of the disk share was
        # fault recovery rather than transfer time.
        report["disk"] = {
            "read_retries": getattr(disk, "read_retries", 0),
            "retry_stall_seconds": round(
                disk.retry_stall_seconds, _ROUND
            ),
        }
    return report


def write_trace_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_trace_report(report: Dict[str, Any]) -> str:
    """Human-readable summary (printed by ``repro trace``)."""
    lines = [
        f"requests traced           {report['requests']}",
        f"max attribution error     {report['max_sum_error']:.3e}",
    ]
    overall = report["attribution"]["overall"]
    total = overall["total"]
    lines.append(
        f"latency total             p50={total['p50']:.6f}s "
        f"p99={total['p99']:.6f}s"
    )
    for name in COMPONENTS:
        comp = overall["components"][name]
        lines.append(
            f"  {name:<22}  p50={comp['p50']:.6f}s "
            f"p99={comp['p99']:.6f}s share={comp['share'] * 100:6.2f}%"
        )
    if "wamp" in report:
        wamp = report["wamp"]
        lines.append(
            f"write amplification       "
            f"{wamp['write_amplification']:.4f} "
            f"(user={wamp['user_bytes']} log={wamp['log_bytes']} "
            f"cleaner={wamp['cleaner_bytes']})"
        )
    if "disk" in report:
        disk = report["disk"]
        lines.append(
            f"disk retry stalls         "
            f"{disk['read_retries']} retries, "
            f"{disk['retry_stall_seconds']:.6f}s backoff"
        )
    links = report.get("links", {})
    if links:
        rendered = " ".join(
            f"{relation}={count}" for relation, count in sorted(links.items())
        )
        lines.append(f"span links                {rendered}")
    return "\n".join(lines)


__all__ = [
    "SCHEMA_VERSION",
    "ROOT_KIND",
    "percentile",
    "request_roots",
    "max_sum_error",
    "link_counts",
    "build_trace_report",
    "write_trace_report",
    "render_trace_report",
]
