"""The span tracer: nested simulated-time spans with attributes.

A span covers one logical operation (``fs.write``, ``cleaner.clean``,
``checkpoint.write`` ...) measured in **simulated** seconds read from
the shared :class:`~repro.sim.clock.SimClock` — the same timeline every
paper figure is drawn on.  Spans nest naturally: a ``cleaner.clean``
span started while a ``cache.flush`` span is open records that flush as
its parent, so an exported trace reconstructs the causal tree
(write-back → cleaning → checkpoint) without any cross-referencing by
the instrumented code.

Retention is bounded: past ``max_spans`` finished spans, new spans are
still timed (per-kind counters keep counting) but their event records
are dropped and counted in ``dropped_spans`` — long cleaning workloads
cannot grow memory without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.clock import SimClock

DEFAULT_MAX_SPANS = 100_000


@dataclass
class Span:
    """One finished (or in-flight) span."""

    span_id: int
    parent_id: Optional[int]
    kind: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    links: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }
        if self.links:
            record["links"] = [dict(link) for link in self.links]
        return record


class _ActiveSpan:
    """Context manager for one span; returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set_attr(self, key: str, value: Any) -> None:
        self._span.attrs[key] = value

    def add_link(self, target_id: int, relation: str) -> None:
        self._span.links.append({"target": target_id, "relation": relation})

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self._span)


class _NullSpan:
    """Shared no-op span for disabled tracers."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_link(self, target_id: int, relation: str) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Records nested spans against a simulated clock."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        enabled: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self.kind_counts: Dict[str, int] = {}
        self.kind_seconds: Dict[str, float] = {}
        self._stack: List[Span] = []
        self._next_id = 1

    def bind_clock(self, clock: SimClock) -> None:
        """Adopt the simulation clock.

        Re-binding is allowed only while no span is open: one telemetry
        object can follow a sequence of simulated machines (each with
        its own clock), but swapping timelines mid-span would corrupt
        durations.
        """
        if self.clock is clock or self._stack:
            return
        self.clock = clock

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def span(self, kind: str, **attrs: Any):
        """Open a span; use as a context manager.

        >>> with tracer.span("fs.write", inum=7) as span:
        ...     do_work()
        ...     span.set_attr("bytes", 4096)
        """
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            kind=kind,
            start=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def begin(self, kind: str, parent: Optional[Span] = None, **attrs: Any):
        """Open a span with an *explicit* parent, outside the stack.

        This is the request-tracing entry point: a request's root span
        outlives any one call frame (it is suspended while the request
        waits in a queue or for a commit window), so it cannot live on
        the nesting stack.  The returned :class:`Span` must eventually
        be passed to :meth:`finish`.  Returns ``None`` when disabled —
        callers hold the result and pass it back, so the null case
        costs one ``is None`` check.
        """
        if not self.enabled:
            return None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            kind=kind,
            start=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        return span

    def finish(self, span: Optional[Span]) -> None:
        """Close a span opened with :meth:`begin`."""
        if span is None:
            return
        span.end = self._now()
        self._record(span)

    def resume(self, span: Optional[Span]) -> None:
        """Push a begun-but-suspended span onto the nesting stack.

        While resumed, spans opened via :meth:`span` parent under it —
        this is how a request's root span adopts the ``cleaner.clean``
        and ``service.group_commit`` work done on its behalf without
        the fs/cleaner code knowing about requests.  Balance every
        ``resume`` with :meth:`suspend`.
        """
        if span is not None:
            self._stack.append(span)

    def suspend(self, span: Optional[Span]) -> None:
        """Pop a resumed span off the nesting stack (tolerant unwind)."""
        if span is None:
            return
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def add_link(
        self, span: Optional[Span], target_id: int, relation: str
    ) -> None:
        """Attach a causal link from ``span`` to another span by id."""
        if span is not None:
            span.links.append({"target": target_id, "relation": relation})

    def current_span(self) -> Optional[Span]:
        """The innermost open span, if any (for linking, not mutation)."""
        return self._stack[-1] if self._stack else None

    def _record(self, span: Span) -> None:
        self.kind_counts[span.kind] = self.kind_counts.get(span.kind, 0) + 1
        self.kind_seconds[span.kind] = (
            self.kind_seconds.get(span.kind, 0.0) + span.duration
        )
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1

    def _finish(self, span: Span) -> None:
        span.end = self._now()
        # Exceptions can unwind several spans out of order; pop to ours.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._record(span)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def span_kinds(self) -> List[str]:
        return sorted(self.kind_counts)

    def by_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def children_of(self, span_id: int) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spans": [span.to_dict() for span in self.spans],
            "dropped_spans": self.dropped_spans,
            "kind_counts": dict(self.kind_counts),
            "kind_seconds": dict(self.kind_seconds),
        }

    def clear(self) -> None:
        self.spans.clear()
        self.dropped_spans = 0
        self.kind_counts.clear()
        self.kind_seconds.clear()
        self._stack.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"SpanTracer({len(self.spans)} spans, "
            f"{self.dropped_spans} dropped, {state})"
        )
