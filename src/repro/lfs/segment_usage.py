"""The segment usage array (§4.3.4).

One small record per segment: an *estimate* of its live bytes, the time
of its most recent modification (the age input to the cost-benefit
cleaning policy), and its state.  The array is updated when files are
overwritten or deleted and when segments are written or cleaned.  As the
paper notes, it is only a hint used to choose cleaning victims, so crash
recovery merely needs something plausible, not something exact.

The array is persisted like the inode map: packed into blocks written to
the log, with the checkpoint region recording block addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Set

from repro.common.inode import NIL
from repro.common.serialization import Packer, Unpacker
from repro.errors import CorruptionError

USAGE_ENTRY_SIZE = 24


class SegmentState(enum.IntEnum):
    CLEAN = 0
    DIRTY = 1
    ACTIVE = 2  # current or pre-selected write target


@dataclass
class SegmentInfo:
    live_bytes: int = 0
    last_write: float = 0.0
    state: SegmentState = SegmentState.CLEAN

    def pack(self) -> bytes:
        return (
            Packer()
            .u64(self.live_bytes)
            .f64(self.last_write)
            .u8(int(self.state))
            .raw(b"\x00" * 7)
            .bytes()
        )

    @classmethod
    def unpack(cls, data: bytes) -> "SegmentInfo":
        unpacker = Unpacker(data)
        live = unpacker.u64()
        last_write = unpacker.f64()
        raw_state = unpacker.u8()
        try:
            state = SegmentState(raw_state)
        except ValueError as exc:
            raise CorruptionError(f"bad segment state {raw_state}") from exc
        return cls(live_bytes=live, last_write=last_write, state=state)


class SegmentUsage:
    """In-memory usage array with per-block dirty tracking."""

    def __init__(
        self, num_segments: int, segment_size: int, block_size: int
    ) -> None:
        self.num_segments = num_segments
        self.segment_size = segment_size
        self.block_size = block_size
        self.entries_per_block = block_size // USAGE_ENTRY_SIZE
        self.num_blocks = (
            num_segments + self.entries_per_block - 1
        ) // self.entries_per_block
        self._info: List[SegmentInfo] = [
            SegmentInfo() for _ in range(num_segments)
        ]
        self._dirty_blocks: Set[int] = set()
        self.block_addrs: List[int] = [NIL] * self.num_blocks
        self.underflow_clamps = 0
        """Times a dead-byte note would have driven live bytes negative.

        The estimate is allowed to be approximate but a large count here
        means double-accounting somewhere; tests assert it stays zero."""

    def _check(self, seg: int) -> None:
        if not 0 <= seg < self.num_segments:
            raise CorruptionError(f"segment {seg} out of range")

    def info(self, seg: int) -> SegmentInfo:
        self._check(seg)
        return self._info[seg]

    def _touch(self, seg: int) -> None:
        self._dirty_blocks.add(seg // self.entries_per_block)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def note_write(self, seg: int, nbytes: int, now: float) -> None:
        """Live bytes were appended to ``seg``."""
        info = self.info(seg)
        info.live_bytes += nbytes
        if info.live_bytes > self.segment_size:
            raise CorruptionError(
                f"segment {seg} accounts {info.live_bytes} live bytes, "
                f"capacity is {self.segment_size}"
            )
        info.last_write = now
        self._touch(seg)

    def note_write_hint(self, seg: int, nbytes: int, now: float) -> None:
        """Clamped variant of :meth:`note_write` for crash recovery.

        Roll-forward may re-account bytes a replayed usage block already
        includes; the usage array is a hint (§4.3.4), so clamping beats
        failing.
        """
        info = self.info(seg)
        info.live_bytes = min(self.segment_size, info.live_bytes + nbytes)
        info.last_write = now
        self._touch(seg)

    def force_state(self, seg: int, state: SegmentState) -> None:
        """Set a segment's state without transition checks (recovery)."""
        info = self.info(seg)
        info.state = state
        self._touch(seg)

    def note_dead(self, seg: int, nbytes: int) -> None:
        """Previously live bytes in ``seg`` were overwritten or deleted."""
        info = self.info(seg)
        if nbytes > info.live_bytes:
            self.underflow_clamps += 1
            info.live_bytes = 0
        else:
            info.live_bytes -= nbytes
        self._touch(seg)

    def utilization(self, seg: int) -> float:
        return self.info(seg).live_bytes / self.segment_size

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def mark_active(self, seg: int) -> None:
        info = self.info(seg)
        if info.state is not SegmentState.CLEAN:
            raise CorruptionError(
                f"segment {seg} made active while {info.state.name}"
            )
        info.state = SegmentState.ACTIVE
        self._touch(seg)

    def mark_dirty(self, seg: int) -> None:
        info = self.info(seg)
        info.state = SegmentState.DIRTY
        self._touch(seg)

    def mark_clean(self, seg: int, now: float) -> None:
        info = self.info(seg)
        info.state = SegmentState.CLEAN
        info.live_bytes = 0
        info.last_write = now
        self._touch(seg)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def clean_segments(self) -> List[int]:
        return [
            seg
            for seg, info in enumerate(self._info)
            if info.state is SegmentState.CLEAN
        ]

    def clean_count(self) -> int:
        return sum(
            1 for info in self._info if info.state is SegmentState.CLEAN
        )

    def dirty_segments(self) -> List[int]:
        return [
            seg
            for seg, info in enumerate(self._info)
            if info.state is SegmentState.DIRTY
        ]

    def total_live_bytes(self) -> int:
        return sum(info.live_bytes for info in self._info)

    # ------------------------------------------------------------------
    # Block (de)serialization
    # ------------------------------------------------------------------

    def dirty_block_indexes(self) -> List[int]:
        return sorted(self._dirty_blocks)

    def all_block_indexes(self) -> List[int]:
        return list(range(self.num_blocks))

    def mark_block_clean(self, index: int) -> None:
        self._dirty_blocks.discard(index)

    def pack_block(self, index: int) -> bytes:
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"usage block index {index} out of range")
        first = index * self.entries_per_block
        last = min(first + self.entries_per_block, self.num_segments)
        data = b"".join(self._info[seg].pack() for seg in range(first, last))
        return data + b"\x00" * (self.block_size - len(data))

    def load_block(self, index: int, data: bytes) -> None:
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"usage block index {index} out of range")
        first = index * self.entries_per_block
        last = min(first + self.entries_per_block, self.num_segments)
        for position, seg in enumerate(range(first, last)):
            offset = position * USAGE_ENTRY_SIZE
            self._info[seg] = SegmentInfo.unpack(
                data[offset : offset + USAGE_ENTRY_SIZE]
            )
        self._dirty_blocks.discard(index)

    def load_all(
        self, addrs: List[int], read_block: Callable[[int], bytes]
    ) -> None:
        if len(addrs) != self.num_blocks:
            raise CorruptionError(
                f"checkpoint lists {len(addrs)} usage blocks, layout has "
                f"{self.num_blocks}"
            )
        self.block_addrs = list(addrs)
        for index, addr in enumerate(addrs):
            if addr != NIL:
                self.load_block(index, read_block(addr))
        self._dirty_blocks.clear()
