"""The segment usage array (§4.3.4).

One small record per segment: an *estimate* of its live bytes, the time
of its most recent modification (the age input to the cost-benefit
cleaning policy), and its state.  The array is updated when files are
overwritten or deleted and when segments are written or cleaned.  As the
paper notes, it is only a hint used to choose cleaning victims, so crash
recovery merely needs something plausible, not something exact.

The array is persisted like the inode map: packed into blocks written to
the log, with the checkpoint region recording block addresses.

Hot-path discipline: the log tail and the cleaner consult this array on
every segment advance and every cleaning-loop iteration, so the queries
they use must not scan all ``num_segments`` entries.  The array keeps
three derived indexes, maintained by every mutation:

* per-state ``set``s (clean / dirty / active), making ``clean_count()``
  and state membership O(1);
* a lazy min-heap over the clean set, making ``min_clean()`` — the
  "lowest-numbered clean segment" query behind the segment writer's
  ``_pop_clean`` — amortized O(log n) instead of an O(n) scan;
* a running ``total_live_bytes`` counter.

``heap_pushes`` / ``heap_pops`` / ``min_clean_calls`` count the index
maintenance work so the perf harness can assert the amortized-O(1)
invariant (every heap entry is pushed once and popped at most once).
"""

from __future__ import annotations

import enum
import heapq
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.common.inode import NIL
from repro.errors import CorruptionError

USAGE_ENTRY_SIZE = 24

# Fixed 24-byte on-disk layout: u64 live_bytes, f64 last_write, u8 state,
# 7 pad bytes.  Precompiled Structs keep the cleaner/checkpoint paths off
# the per-field Packer/Unpacker machinery.
_INFO_PACK = struct.Struct("<QdB7x")
_INFO_UNPACK = struct.Struct("<QdB")


class SegmentState(enum.IntEnum):
    CLEAN = 0
    DIRTY = 1
    ACTIVE = 2  # current or pre-selected write target
    QUARANTINED = 3  # unreadable media: never select, never reuse


@dataclass
class SegmentInfo:
    live_bytes: int = 0
    last_write: float = 0.0
    state: SegmentState = SegmentState.CLEAN

    def pack(self) -> bytes:
        return _INFO_PACK.pack(self.live_bytes, self.last_write, int(self.state))

    @classmethod
    def unpack(cls, data: bytes) -> "SegmentInfo":
        try:
            live, last_write, raw_state = _INFO_UNPACK.unpack_from(data)
        except struct.error as exc:
            raise CorruptionError(f"truncated segment info: {exc}") from exc
        try:
            state = SegmentState(raw_state)
        except ValueError as exc:
            raise CorruptionError(f"bad segment state {raw_state}") from exc
        return cls(live_bytes=live, last_write=last_write, state=state)


class SegmentUsage:
    """In-memory usage array with per-block dirty tracking."""

    def __init__(
        self, num_segments: int, segment_size: int, block_size: int
    ) -> None:
        self.num_segments = num_segments
        self.segment_size = segment_size
        self.block_size = block_size
        self.entries_per_block = block_size // USAGE_ENTRY_SIZE
        self.num_blocks = (
            num_segments + self.entries_per_block - 1
        ) // self.entries_per_block
        self._info: List[SegmentInfo] = [
            SegmentInfo() for _ in range(num_segments)
        ]
        self._dirty_blocks: Set[int] = set()
        self.block_addrs: List[int] = [NIL] * self.num_blocks
        self.underflow_clamps = 0
        """Times a dead-byte note would have driven live bytes negative.

        The estimate is allowed to be approximate but a large count here
        means double-accounting somewhere; tests assert it stays zero."""
        # Derived indexes (see module docstring).  A fresh array is all
        # clean, and range() is already a valid min-heap.
        self._state_sets: Dict[SegmentState, Set[int]] = {
            state: set() for state in SegmentState
        }
        self._state_sets[SegmentState.CLEAN] = set(range(num_segments))
        self._clean_heap: List[int] = list(range(num_segments))
        self._total_live = 0
        self.heap_pushes = num_segments
        self.heap_pops = 0
        self.min_clean_calls = 0

    def _check(self, seg: int) -> None:
        if not 0 <= seg < self.num_segments:
            raise CorruptionError(f"segment {seg} out of range")

    def info(self, seg: int) -> SegmentInfo:
        self._check(seg)
        return self._info[seg]

    def _touch(self, seg: int) -> None:
        self._dirty_blocks.add(seg // self.entries_per_block)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    def _set_state(self, seg: int, info: SegmentInfo, state: SegmentState) -> None:
        if info.state is state:
            return
        self._state_sets[info.state].discard(seg)
        self._state_sets[state].add(seg)
        info.state = state
        if state is SegmentState.CLEAN:
            heapq.heappush(self._clean_heap, seg)
            self.heap_pushes += 1

    def _set_live(self, info: SegmentInfo, value: int) -> None:
        self._total_live += value - info.live_bytes
        info.live_bytes = value

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def note_write(self, seg: int, nbytes: int, now: float) -> None:
        """Live bytes were appended to ``seg``."""
        info = self.info(seg)
        self._set_live(info, info.live_bytes + nbytes)
        if info.live_bytes > self.segment_size:
            raise CorruptionError(
                f"segment {seg} accounts {info.live_bytes} live bytes, "
                f"capacity is {self.segment_size}"
            )
        info.last_write = now
        self._touch(seg)

    def note_write_hint(self, seg: int, nbytes: int, now: float) -> None:
        """Clamped variant of :meth:`note_write` for crash recovery.

        Roll-forward may re-account bytes a replayed usage block already
        includes; the usage array is a hint (§4.3.4), so clamping beats
        failing.
        """
        info = self.info(seg)
        self._set_live(info, min(self.segment_size, info.live_bytes + nbytes))
        info.last_write = now
        self._touch(seg)

    def clamp_live(self, seg: int, max_bytes: int) -> None:
        """Clamp a segment's live account to ``max_bytes`` (recovery).

        Roll-forward can double-count the log tail: the replayed usage
        blocks already include the partials' bytes, and the per-partial
        re-estimate adds them again.  A segment's true live bytes can
        never exceed its physically-written prefix, so clamping there
        restores the ``live <= capacity`` invariant the writer's strict
        :meth:`note_write` depends on when it appends into the
        recovered tail segment.
        """
        info = self.info(seg)
        if info.live_bytes > max_bytes:
            self._set_live(info, max_bytes)
            self._touch(seg)

    def force_state(self, seg: int, state: SegmentState) -> None:
        """Set a segment's state without transition checks (recovery)."""
        info = self.info(seg)
        self._set_state(seg, info, state)
        self._touch(seg)

    def note_dead(self, seg: int, nbytes: int) -> None:
        """Previously live bytes in ``seg`` were overwritten or deleted."""
        info = self.info(seg)
        if nbytes > info.live_bytes:
            self.underflow_clamps += 1
            self._set_live(info, 0)
        else:
            self._set_live(info, info.live_bytes - nbytes)
        self._touch(seg)

    def utilization(self, seg: int) -> float:
        return self.info(seg).live_bytes / self.segment_size

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def mark_active(self, seg: int) -> None:
        info = self.info(seg)
        if info.state is not SegmentState.CLEAN:
            raise CorruptionError(
                f"segment {seg} made active while {info.state.name}"
            )
        self._set_state(seg, info, SegmentState.ACTIVE)
        self._touch(seg)

    def mark_dirty(self, seg: int) -> None:
        info = self.info(seg)
        self._set_state(seg, info, SegmentState.DIRTY)
        self._touch(seg)

    def mark_clean(self, seg: int, now: float) -> None:
        info = self.info(seg)
        self._set_state(seg, info, SegmentState.CLEAN)
        self._set_live(info, 0)
        info.last_write = now
        self._touch(seg)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def clean_segments(self) -> List[int]:
        return sorted(self._state_sets[SegmentState.CLEAN])

    def clean_count(self) -> int:
        return len(self._state_sets[SegmentState.CLEAN])

    def dirty_segments(self) -> List[int]:
        return sorted(self._state_sets[SegmentState.DIRTY])

    def quarantine(self, seg: int) -> None:
        """Remove ``seg`` from circulation: its media is unreadable.

        A quarantined segment is neither a cleaning victim nor a write
        target; whatever live bytes it still accounts are stranded until
        a future write to its sectors remaps them and an operator (or a
        rebuilding cleaner pass) returns it to service via
        :meth:`force_state`.
        """
        self.force_state(seg, SegmentState.QUARANTINED)

    def quarantined_segments(self) -> List[int]:
        return sorted(self._state_sets[SegmentState.QUARANTINED])

    def total_live_bytes(self) -> int:
        return self._total_live

    def min_clean(self) -> Optional[int]:
        """Lowest-numbered clean segment, or ``None`` — amortized O(1).

        Stale heap entries (segments that left the clean state since they
        were pushed, or duplicates from repeated clean episodes) are
        discarded lazily; each entry is pushed once and popped at most
        once, so the work is bounded by the number of state transitions.
        """
        self.min_clean_calls += 1
        heap = self._clean_heap
        clean = self._state_sets[SegmentState.CLEAN]
        while heap:
            seg = heap[0]
            if seg in clean:
                return seg
            heapq.heappop(heap)
            self.heap_pops += 1
        return None

    def verify_indexes(self) -> None:
        """Assert the derived indexes agree with a full scan (tests)."""
        by_state: Dict[SegmentState, Set[int]] = {
            state: set() for state in SegmentState
        }
        total = 0
        for seg, info in enumerate(self._info):
            by_state[info.state].add(seg)
            total += info.live_bytes
        if by_state != self._state_sets:
            raise CorruptionError("segment state indexes diverged from scan")
        if total != self._total_live:
            raise CorruptionError(
                f"live-byte counter {self._total_live} != scanned {total}"
            )
        clean = self._state_sets[SegmentState.CLEAN]
        if clean and not any(seg in clean for seg in self._clean_heap):
            raise CorruptionError("clean heap lost every clean segment")

    # ------------------------------------------------------------------
    # Block (de)serialization
    # ------------------------------------------------------------------

    def dirty_block_indexes(self) -> List[int]:
        return sorted(self._dirty_blocks)

    def all_block_indexes(self) -> List[int]:
        return list(range(self.num_blocks))

    def mark_block_clean(self, index: int) -> None:
        self._dirty_blocks.discard(index)

    def pack_block(self, index: int) -> bytes:
        out = bytearray(self.block_size)
        self.pack_block_into(index, out)
        return bytes(out)

    def pack_block_into(self, index: int, out) -> None:
        """Serialize block ``index`` into ``out`` (block_size bytes).

        Zero-copy twin of :meth:`pack_block` for the segment writer's
        pooled buffer; the tail is explicitly zeroed because the buffer
        is reused.
        """
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"usage block index {index} out of range")
        first = index * self.entries_per_block
        last = min(first + self.entries_per_block, self.num_segments)
        pack_into = _INFO_PACK.pack_into
        info = self._info
        for position, seg in enumerate(range(first, last)):
            entry = info[seg]
            pack_into(
                out,
                position * USAGE_ENTRY_SIZE,
                entry.live_bytes,
                entry.last_write,
                int(entry.state),
            )
        used = (last - first) * USAGE_ENTRY_SIZE
        if used < len(out):
            out[used:] = bytes(len(out) - used)  # alloc-ok: tail pad

    def load_block(self, index: int, data: bytes) -> None:
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"usage block index {index} out of range")
        first = index * self.entries_per_block
        last = min(first + self.entries_per_block, self.num_segments)
        count = last - first
        if len(data) < count * USAGE_ENTRY_SIZE:
            raise CorruptionError(
                f"usage block {index} holds {len(data)} bytes, "
                f"need {count * USAGE_ENTRY_SIZE}"
            )
        view = memoryview(data)[: count * USAGE_ENTRY_SIZE]
        for seg, (live, last_write, raw_state) in zip(
            range(first, last), _INFO_PACK.iter_unpack(view)
        ):
            try:
                state = SegmentState(raw_state)
            except ValueError as exc:
                raise CorruptionError(f"bad segment state {raw_state}") from exc
            info = self._info[seg]
            self._set_live(info, live)
            self._set_state(seg, info, state)
            info.last_write = last_write
        self._dirty_blocks.discard(index)

    def load_all(
        self, addrs: List[int], read_block: Callable[[int], bytes]
    ) -> None:
        if len(addrs) != self.num_blocks:
            raise CorruptionError(
                f"checkpoint lists {len(addrs)} usage blocks, layout has "
                f"{self.num_blocks}"
            )
        self.block_addrs = list(addrs)
        for index, addr in enumerate(addrs):
            if addr != NIL:
                self.load_block(index, read_block(addr))
        self._dirty_blocks.clear()
