"""Offline consistency checking for LFS images.

The paper's pitch is that LFS never *needs* an fsck — recovery is the
checkpoint plus roll-forward.  A verifier is still invaluable for
development and testing: it independently walks the on-disk structures
(checkpoint → inode map → inodes → indirect blocks → data) and checks
the invariants the implementation is supposed to maintain:

* every allocated inode's recorded location holds that inode;
* every block pointer lands inside the segmented log and no two files
  (or two positions in one file) claim the same disk block;
* directory entries reference allocated inodes, and every allocated
  non-root inode is referenced by exactly ``nlink`` entries (directories
  by their single entry, with child directories adding to the parent's
  count);
* file sizes are consistent with their block maps;
* the segment usage array never *under*-estimates live bytes (an
  overestimate is allowed — the paper calls the array a hint — but an
  underestimate could make the cleaner destroy live data).

The verifier is read-only and works on a crashed-and-revived device as
long as a valid checkpoint exists (run it after mount+roll-forward for
the post-recovery state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.common.directory import DirectoryBlock
from repro.common.inode import (
    Inode,
    INODE_SIZE,
    N_DIRECT,
    NIL,
    pointers_per_block,
)
from repro.common.serialization import iter_u64
from repro.disk.device import SectorDevice
from repro.errors import CorruptionError, MediaError, TransientIOError
from repro.lfs.checkpoint import CheckpointData
from repro.lfs.config import CHECKPOINT_REGION_BLOCKS, LfsConfig, LfsLayout
from repro.lfs.filesystem import SuperBlock
from repro.lfs.inode_map import IMAP_ENTRY_SIZE, ImapEntry
from repro.lfs.segment_usage import SegmentUsage
from repro.vfs.base import ROOT_INUM


@dataclass
class VerifyReport:
    """Outcome of an offline LFS verification."""

    inodes_checked: int = 0
    blocks_checked: int = 0
    directories_checked: int = 0
    live_bytes_found: int = 0
    media_errors: int = 0
    """Reads that failed hard; each also appends to ``errors``."""
    errors: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)


class _Verifier:
    def __init__(self, device: SectorDevice) -> None:
        self.device = device
        superblock = SuperBlock.unpack(device.read(0, 8))
        self.config = LfsConfig(
            block_size=superblock.block_size,
            segment_size=superblock.segment_size,
            max_inodes=superblock.max_inodes,
        )
        self.layout = LfsLayout.for_device(self.config, device.total_bytes)
        self.report = VerifyReport()
        self.block_owner: Dict[int, Tuple[int, str]] = {}
        self.live_per_segment: Dict[int, int] = {}

    def _read_block(self, addr: int) -> bytes:
        """Read one block, retrying a transient failure once.

        The verifier talks to the raw device (no timing layer, hence no
        retry loop in front of it); injected transient errors are
        guaranteed to succeed on the identical retry.  Hard
        ``MediaError`` failures propagate to the caller, which reports
        them as findings instead of crashing the walk.
        """
        spb = self.config.sectors_per_block
        try:
            return self.device.read(addr * spb, spb)
        except TransientIOError:
            return self.device.read(addr * spb, spb)

    def _media_error(self, what: str, exc: MediaError) -> None:
        self.report.media_errors += 1
        self.report.error(f"{what}: {exc}")

    def _claim(
        self, addr: int, inum: int, what: str, live_bytes: int | None = None
    ) -> bool:
        """Register a live block; reports range and sharing violations.

        ``live_bytes`` overrides the liveness contribution (inode blocks
        are accounted at INODE_SIZE granularity, mirroring the file
        system's own usage accounting).
        """
        try:
            seg = self.layout.segment_of_block(addr)
        except Exception:
            self.report.error(
                f"{what} of inode {inum}: address {addr} outside the log"
            )
            return False
        if addr in self.block_owner:
            other_inum, other_what = self.block_owner[addr]
            self.report.error(
                f"block {addr} claimed by both {what} of inode {inum} "
                f"and {other_what} of inode {other_inum}"
            )
            return False
        self.block_owner[addr] = (inum, what)
        self.live_per_segment[seg] = self.live_per_segment.get(seg, 0) + (
            self.config.block_size if live_bytes is None else live_bytes
        )
        self.report.blocks_checked += 1
        return True

    def _note_extra_live(self, addr: int, nbytes: int) -> None:
        """Additional live bytes inside an already claimed block."""
        seg = self.layout.segment_of_block(addr)
        self.live_per_segment[seg] = self.live_per_segment.get(seg, 0) + nbytes

    # -- checkpoint and inode map ------------------------------------------

    def load_checkpoint(self) -> CheckpointData:
        candidates = []
        for addr in self.layout.checkpoint_addrs:
            try:
                raw = b"".join(
                    self._read_block(addr + i)
                    for i in range(CHECKPOINT_REGION_BLOCKS)
                )
                candidates.append(CheckpointData.unpack(raw))
            except (CorruptionError, MediaError):
                continue
        if not candidates:
            raise CorruptionError("no valid checkpoint region")
        return max(candidates, key=lambda data: data.timestamp)

    def load_imap(self, checkpoint: CheckpointData) -> List[ImapEntry]:
        entries = [ImapEntry() for _ in range(self.config.max_inodes)]
        per_block = self.config.block_size // IMAP_ENTRY_SIZE
        for index, addr in enumerate(checkpoint.imap_addrs):
            if addr == NIL:
                continue
            try:
                raw = self._read_block(addr)
            except MediaError as exc:
                self._media_error(f"imap block {index}", exc)
                continue
            first = index * per_block
            for position in range(
                min(per_block, self.config.max_inodes - first)
            ):
                offset = position * IMAP_ENTRY_SIZE
                entries[first + position] = ImapEntry.unpack(
                    raw[offset : offset + IMAP_ENTRY_SIZE]
                )
        return entries

    # -- inodes and block maps ----------------------------------------

    def load_inode(self, inum: int, entry: ImapEntry) -> Inode | None:
        if entry.inode_addr == NIL:
            self.report.error(f"allocated inode {inum} has no disk address")
            return None
        try:
            raw = self._read_block(entry.inode_addr)
        except MediaError as exc:
            self._media_error(f"inode {inum}", exc)
            return None
        try:
            inode = Inode.unpack(
                raw[entry.slot * INODE_SIZE : (entry.slot + 1) * INODE_SIZE]
            )
        except CorruptionError as exc:
            self.report.error(f"inode {inum} unreadable: {exc}")
            return None
        if inode.inum != inum:
            self.report.error(
                f"imap says inode {inum} is at block {entry.inode_addr} "
                f"slot {entry.slot}, found inode {inode.inum}"
            )
            return None
        if not inode.is_allocated:
            self.report.error(f"imap-allocated inode {inum} is FREE on disk")
            return None
        return inode

    def file_blocks(self, inode: Inode) -> Dict[int, int]:
        """lbn -> addr for every mapped block, claiming metadata blocks."""
        bs = self.config.block_size
        ppb = pointers_per_block(bs)
        blocks: Dict[int, int] = {}
        nblocks = inode.nblocks(bs)
        for lbn in range(min(nblocks, N_DIRECT)):
            if inode.direct[lbn] != NIL:
                blocks[lbn] = inode.direct[lbn]
        single: List[int] = []
        if inode.indirect != NIL:
            if self._claim(inode.indirect, inode.inum, "indirect"):
                try:
                    single = list(iter_u64(self._read_block(inode.indirect)))
                except MediaError as exc:
                    self._media_error(f"indirect of inode {inode.inum}", exc)
        for position, addr in enumerate(single):
            if addr != NIL:
                blocks[N_DIRECT + position] = addr
        if inode.dindirect != NIL:
            if self._claim(inode.dindirect, inode.inum, "dindirect"):
                try:
                    roots = list(iter_u64(self._read_block(inode.dindirect)))
                except MediaError as exc:
                    self._media_error(f"dindirect of inode {inode.inum}", exc)
                    roots = []
                for leaf_index, leaf_addr in enumerate(roots):
                    if leaf_addr == NIL:
                        continue
                    if not self._claim(leaf_addr, inode.inum, "indirect leaf"):
                        continue
                    try:
                        leaves = list(iter_u64(self._read_block(leaf_addr)))
                    except MediaError as exc:
                        self._media_error(
                            f"indirect leaf of inode {inode.inum}", exc
                        )
                        continue
                    base = N_DIRECT + ppb + leaf_index * ppb
                    for position, addr in enumerate(leaves):
                        if addr != NIL:
                            blocks[base + position] = addr
        for lbn, addr in blocks.items():
            if lbn >= nblocks:
                self.report.error(
                    f"inode {inode.inum}: block {lbn} mapped beyond size "
                    f"{inode.size}"
                )
            self._claim(addr, inode.inum, f"data lbn {lbn}")
        return blocks

    # -- the walk -----------------------------------------------------

    def run(self) -> VerifyReport:
        try:
            checkpoint = self.load_checkpoint()
        except CorruptionError as exc:
            self.report.error(str(exc))
            return self.report
        imap = self.load_imap(checkpoint)
        for index, addr in enumerate(checkpoint.imap_addrs):
            if addr != NIL:
                self._claim(addr, 0, f"imap block {index}")
        for index, addr in enumerate(checkpoint.usage_addrs):
            if addr != NIL:
                self._claim(addr, 0, f"usage block {index}")

        inodes: Dict[int, Inode] = {}
        inode_blocks: Set[int] = set()
        for inum, entry in enumerate(imap):
            if not entry.allocated:
                continue
            self.report.inodes_checked += 1
            inode = self.load_inode(inum, entry)
            if inode is None:
                continue
            inodes[inum] = inode
            if entry.inode_addr not in inode_blocks:
                inode_blocks.add(entry.inode_addr)
                self._claim(
                    entry.inode_addr, inum, "inode block",
                    live_bytes=INODE_SIZE,
                )
            else:
                self._note_extra_live(entry.inode_addr, INODE_SIZE)

        if ROOT_INUM not in inodes:
            self.report.error("root inode missing or unreadable")
            return self.report

        file_maps = {
            inum: self.file_blocks(inode) for inum, inode in inodes.items()
        }

        # Directory walk: connectivity and link counts.
        links: Dict[int, int] = {ROOT_INUM: 2}
        queue = [ROOT_INUM]
        visited: Set[int] = set()
        while queue:
            dir_inum = queue.pop(0)
            if dir_inum in visited:
                continue
            visited.add(dir_inum)
            self.report.directories_checked += 1
            for lbn, addr in sorted(file_maps[dir_inum].items()):
                try:
                    block = DirectoryBlock.decode(
                        self._read_block(addr), self.config.block_size
                    )
                except (CorruptionError, MediaError) as exc:
                    if isinstance(exc, MediaError):
                        self.report.media_errors += 1
                    self.report.error(
                        f"directory {dir_inum} block {lbn}: {exc}"
                    )
                    continue
                for name, child in block.entries:
                    if child not in inodes:
                        self.report.error(
                            f"directory {dir_inum} entry {name!r} points "
                            f"at unallocated inode {child}"
                        )
                        continue
                    links[child] = links.get(child, 0) + 1
                    if inodes[child].is_dir:
                        links[child] = links.get(child, 0) + 1
                        links[dir_inum] = links.get(dir_inum, 0) + 1
                        queue.append(child)

        for inum, inode in inodes.items():
            expected = links.get(inum)
            if expected is None:
                self.report.error(f"inode {inum} allocated but unreachable")
            elif inode.nlink != expected:
                self.report.error(
                    f"inode {inum}: nlink {inode.nlink}, directory tree "
                    f"says {expected}"
                )

        # Usage-array safety: recorded live bytes must never be LESS
        # than what the walk found (under-estimation could let the
        # cleaner reclaim a segment that still holds live data).
        usage = SegmentUsage(
            self.layout.num_segments,
            self.config.segment_size,
            self.config.block_size,
        )
        try:
            usage.load_all(
                checkpoint.usage_addrs, lambda addr: self._read_block(addr)
            )
        except (CorruptionError, MediaError) as exc:
            self.report.error(f"usage array unreadable: {exc}")
            return self.report
        for seg, found in self.live_per_segment.items():
            recorded = usage.info(seg).live_bytes
            # Both sides account inodes at INODE_SIZE granularity now;
            # leave one block of slack for rounding at segment edges.
            slack = self.config.block_size
            if recorded + slack < found:
                self.report.error(
                    f"segment {seg}: usage records {recorded} live bytes, "
                    f"walk found {found}"
                )
        self.report.live_bytes_found = sum(self.live_per_segment.values())
        return self.report


def verify_lfs(device: SectorDevice) -> VerifyReport:
    """Check every LFS on-disk invariant; read-only.

    Never raises on damaged media or a damaged image: unreadable or
    invalid structures become findings in the returned report (the
    crash+corruption campaign depends on this).
    """
    try:
        try:
            verifier = _Verifier(device)
        except TransientIOError:
            verifier = _Verifier(device)
    except (CorruptionError, MediaError) as exc:
        report = VerifyReport()
        if isinstance(exc, MediaError):
            report.media_errors += 1
        report.error(f"superblock: {exc}")
        return report
    return verifier.run()
