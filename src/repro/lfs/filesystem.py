"""The log-structured storage manager.

:class:`LogStructuredFS` combines the shared VFS machinery with the LFS
pieces: every write-back gathers the dirty state of the whole file
system — data and directory blocks, indirect blocks, inodes, inode-map
blocks, and (at checkpoints) segment-usage blocks — into one plan that
the segment writer pushes to the log in large sequential asynchronous
transfers (§4.1).  Creates and deletes touch only memory; the only
synchronous write in the system is the periodic checkpoint region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.cache.writeback import WritebackReason
from repro.common.directory import DirectoryBlock
from repro.common.inode import (
    BlockKey,
    BlockKind,
    FileType,
    Inode,
    INODE_SIZE,
    N_DIRECT,
    NIL,
)
from repro.common import serialization
from repro.common.serialization import Packer, Unpacker, checksum
from repro.disk.sim_disk import SimDisk
from repro.errors import (
    CorruptionError,
    NoSpaceError,
    ReadOnlyFSError,
    StaleHandleError,
)
from repro.lfs.checkpoint import CheckpointData, CheckpointManager
from repro.lfs.cleaner import CleanerPolicy, SegmentCleaner
from repro.lfs.config import LFS_MAGIC, LfsConfig, LfsLayout
from repro.lfs.inode_map import InodeMap
from repro.lfs.recovery import RollForwardReport, roll_forward
from repro.lfs.segments import LogPosition, PlannedBlock, SegmentManager
from repro.lfs.segment_usage import SegmentState, SegmentUsage
from repro.lfs.summary import SummaryEntry
from repro.obs import Telemetry
from repro.sim.cpu import CpuModel
from repro.vfs.base import BaseFileSystem, ROOT_INUM


@dataclass(frozen=True)
class SuperBlock:
    """Static file system parameters at block 0."""

    block_size: int
    segment_size: int
    max_inodes: int
    total_blocks: int

    def pack(self) -> bytes:
        body = (
            Packer()
            .u32(self.block_size)
            .u32(self.segment_size)
            .u32(self.max_inodes)
            .u64(self.total_blocks)
            .bytes()
        )
        header = Packer().u32(LFS_MAGIC).u32(checksum(body))
        data = header.bytes() + body
        return data + b"\x00" * (self.block_size - len(data))

    @classmethod
    def unpack(cls, data: bytes) -> "SuperBlock":
        unpacker = Unpacker(data)
        magic = unpacker.u32()
        if magic != LFS_MAGIC:
            raise CorruptionError(f"not an LFS superblock (magic 0x{magic:08x})")
        crc = unpacker.u32()
        block_size = unpacker.u32()
        segment_size = unpacker.u32()
        max_inodes = unpacker.u32()
        total_blocks = unpacker.u64()
        body = (
            Packer()
            .u32(block_size)
            .u32(segment_size)
            .u32(max_inodes)
            .u64(total_blocks)
            .bytes()
        )
        if checksum(body) != crc:
            raise CorruptionError("superblock checksum mismatch")
        return cls(
            block_size=block_size,
            segment_size=segment_size,
            max_inodes=max_inodes,
            total_blocks=total_blocks,
        )


class LogStructuredFS(BaseFileSystem):
    """The paper's LFS storage manager."""

    def __init__(
        self,
        disk: SimDisk,
        cpu: CpuModel,
        config: LfsConfig,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._config = config
        if config.numpy_batch:
            serialization.set_numpy_batch(True)
        self.layout = LfsLayout.for_device(config, disk.device.total_bytes)
        super().__init__(
            disk,
            cpu,
            config.cache_bytes,
            config.writeback,
            telemetry=telemetry,
            readahead_blocks=config.readahead_blocks,
        )
        self.imap = InodeMap(config.max_inodes, config.block_size)
        self.usage = SegmentUsage(
            self.layout.num_segments, config.segment_size, config.block_size
        )
        # The reserve must cover the worst single write-back the cleaner
        # can be asked to perform: the user dirty backlog that triggered
        # cleaning (the cache's dirty threshold), plus one batch of
        # relocated victims, plus metadata.  An undersized reserve can
        # deadlock the cleaner's own flush on a busy, nearly full disk.
        dirty_limit_segments = -(
            -int(config.cache_bytes * config.writeback.dirty_high_fraction)
            // config.segment_size
        )
        reserve = max(
            config.cleaner_reserve_segments,
            dirty_limit_segments + 4 + 2,
        )
        reserve = min(reserve, max(2, self.layout.num_segments // 3))
        self.segments = SegmentManager(
            self.layout,
            self.usage,
            disk,
            self.clock,
            reserve,
            telemetry=self.telemetry,
        )
        self.checkpoints = CheckpointManager(
            self.layout, disk, self.clock, telemetry=self.telemetry
        )
        self.cleaner = SegmentCleaner(
            self,
            policy=CleanerPolicy(config.cleaner_policy),
            telemetry=self.telemetry,
        )
        self.last_recovery: Optional[RollForwardReport] = None
        self._flushing = False
        # Degraded read-only state machine: media-damage strikes
        # (quarantined segments, unreadable recovery sectors) accumulate
        # until the quarantine budget is exhausted, then the fs stops
        # accepting writes while continuing to serve reads.
        self._degraded = False
        self._media_strikes = 0
        self._g_degraded = self.telemetry.gauge("fs.degraded")
        disk.retry = config.retry

    # ------------------------------------------------------------------
    # Construction: mkfs and mount
    # ------------------------------------------------------------------

    @classmethod
    def mkfs(
        cls,
        disk: SimDisk,
        cpu: CpuModel,
        config: Optional[LfsConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "LogStructuredFS":
        """Format the device and return a mounted, empty file system."""
        config = config or LfsConfig()
        fs = cls(disk, cpu, config, telemetry=telemetry)
        superblock = SuperBlock(
            block_size=config.block_size,
            segment_size=config.segment_size,
            max_inodes=config.max_inodes,
            total_blocks=fs.layout.total_blocks,
        )
        disk.write(0, superblock.pack(), sync=True, label="superblock")
        fs.segments.start_fresh()
        fs.imap.force_allocate(ROOT_INUM, fs.clock.now())
        root = Inode(
            inum=ROOT_INUM,
            ftype=FileType.DIRECTORY,
            nlink=2,
            mtime=fs.clock.now(),
            ctime=fs.clock.now(),
        )
        fs._install_inode(root)
        fs._write_dir_block(root, 0, DirectoryBlock(config.block_size, []))
        fs.flush_log(checkpoint=True)
        return fs

    @classmethod
    def mount(
        cls,
        disk: SimDisk,
        cpu: CpuModel,
        config: Optional[LfsConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "LogStructuredFS":
        """Attach an existing LFS, recovering from a crash if necessary.

        ``config`` may override policy knobs (cache size, cleaner policy,
        roll-forward); the on-disk geometry always comes from the
        superblock.
        """
        raw = disk.read(0, 8, label="superblock")
        superblock = SuperBlock.unpack(raw)
        base = config or LfsConfig()
        merged = LfsConfig(
            block_size=superblock.block_size,
            segment_size=superblock.segment_size,
            max_inodes=superblock.max_inodes,
            cache_bytes=base.cache_bytes,
            checkpoint_interval=base.checkpoint_interval,
            clean_low_water=base.clean_low_water,
            clean_high_water=base.clean_high_water,
            cleaner_reserve_segments=base.cleaner_reserve_segments,
            max_live_fraction_to_clean=base.max_live_fraction_to_clean,
            cleaner_policy=base.cleaner_policy,
            roll_forward=base.roll_forward,
            writeback=base.writeback,
            readahead_blocks=base.readahead_blocks,
            retry=base.retry,
            quarantine_budget=base.quarantine_budget,
        )
        fs = cls(disk, cpu, merged, telemetry=telemetry)
        checkpoint, _region = fs.checkpoints.load_latest()
        # Inode-map blocks load on demand (§4.2.1); only the small
        # segment-usage array is read eagerly, with coalesced requests.
        fs.imap.attach(checkpoint.imap_addrs, fs._read_meta_block)
        preloaded = fs._read_meta_blocks(checkpoint.usage_addrs)
        fs.usage.load_all(checkpoint.usage_addrs, preloaded.__getitem__)
        fs.segments.restore(checkpoint.position)
        fs.usage.force_state(
            checkpoint.position.active_segment, SegmentState.ACTIVE
        )
        fs.usage.force_state(
            checkpoint.position.next_segment, SegmentState.ACTIVE
        )
        if merged.roll_forward:
            fs.last_recovery = roll_forward(fs, checkpoint)
            if fs.last_recovery.media_errors:
                fs.note_media_damage(
                    fs.last_recovery.media_errors, reason="recovery"
                )
            if fs.last_recovery.partials_applied:
                # Make the recovered state durable immediately (a no-op
                # if recovery damage just degraded the volume: the
                # recovered state stays readable in memory, and writing
                # to failing media would risk making things worse).
                fs.flush_log(checkpoint=True)
        else:
            fs.last_recovery = RollForwardReport()
        return fs

    def _read_meta_block(self, addr: int) -> bytes:
        return self._read_block_from_disk(addr, label="mount metadata")

    def _read_meta_blocks(self, addrs: List[int]) -> Dict[int, bytes]:
        """Read many metadata blocks, coalescing disk-contiguous runs."""
        bs = self.block_size
        spb = self.sectors_per_block
        wanted = sorted({addr for addr in addrs if addr != NIL})
        result: Dict[int, bytes] = {}
        index = 0
        while index < len(wanted):
            run_start = wanted[index]
            run_len = 1
            while (
                index + run_len < len(wanted)
                and wanted[index + run_len] == run_start + run_len
                and run_len < 64
            ):
                run_len += 1
            raw = self.disk.read(
                run_start * spb, run_len * spb, label="mount metadata"
            )
            for offset in range(run_len):
                result[run_start + offset] = raw[
                    offset * bs : (offset + 1) * bs
                ]
            index += run_len
        return result

    # ------------------------------------------------------------------
    # Required placement hooks
    # ------------------------------------------------------------------

    @property
    def config(self) -> LfsConfig:
        return self._config

    @property
    def block_size(self) -> int:
        return self._config.block_size

    @property
    def sectors_per_block(self) -> int:
        return self._config.sectors_per_block

    def _read_inode_block(self, addr: int) -> bytes:
        """Read (and cache) a packed inode block, keyed by disk address.

        Inode blocks hold many inodes; without this cache, opening the
        files of one directory would re-read the same block once per
        inode.  The key is the address, which is unique until the
        segment writer reuses it — the writer discards the stale entry
        when that happens.
        """
        key = BlockKey(0, BlockKind.INODE, addr)
        block = self.cache.get(key)
        if block is None:
            raw = bytearray(
                self._read_block_from_disk(addr, label=f"inode block {addr}")
            )
            block = self.cache.insert(key, raw, dirty=False, now=self.clock.now())
        return block.as_bytes(self.block_size)

    def _load_inode_from_disk(self, inum: int) -> Inode:
        entry = self.imap.get(inum)
        if not entry.allocated:
            raise StaleHandleError(f"inode {inum} is not allocated")
        if entry.inode_addr == NIL:
            raise CorruptionError(
                f"inode {inum} allocated but never written and not cached"
            )
        raw = self._read_inode_block(entry.inode_addr)
        inode = Inode.unpack(
            raw[entry.slot * INODE_SIZE : (entry.slot + 1) * INODE_SIZE]
        )
        if inode.inum != inum:
            raise CorruptionError(
                f"inode block at {entry.inode_addr} slot {entry.slot} "
                f"holds inode {inode.inum}, wanted {inum}"
            )
        return inode

    def _alloc_inum(self, ftype: FileType, parent_inum: int) -> int:
        return self.imap.allocate(self.clock.now())

    def _on_inode_freed(self, inode: Inode) -> None:
        old_addr = self.imap.free(inode.inum)
        if old_addr != NIL:
            self.usage.note_dead(
                self.layout.segment_of_block(old_addr), INODE_SIZE
            )

    def _release_block_addr(self, addr: int) -> None:
        self.usage.note_dead(
            self.layout.segment_of_block(addr), self.block_size
        )

    def _note_data_block_dirtied(self, inode: Inode, lbn: int) -> None:
        pass  # addresses are assigned when the segment is written

    def _after_create(self, parent: Inode, inode: Inode, dir_block_index: int) -> None:
        pass  # no synchronous writes: this is the point of LFS

    def _after_remove(self, parent: Inode, inode: Inode, dir_block_index: int) -> None:
        pass

    def _update_atime(self, inode: Inode) -> None:
        # Footnote 2: atime lives in the inode map so reads do not move
        # inodes.
        self.imap.set_atime(inode.inum, self.clock.now())

    def _get_atime(self, inode: Inode) -> float:
        return self.imap.get(inode.inum).atime

    def _on_truncate_to_zero(self, inode: Inode) -> None:
        self.imap.bump_version(inode.inum)

    # ------------------------------------------------------------------
    # Write-back: building the segment plan
    # ------------------------------------------------------------------

    def _writeback(self, reason: WritebackReason) -> None:
        checkpoint_due = (
            self.checkpoints.last_checkpoint_time is None
            or self.clock.now() - self.checkpoints.last_checkpoint_time
            >= self._config.checkpoint_interval
        )
        self.flush_log(checkpoint=checkpoint_due)

    def flush_log(self, checkpoint: bool = False, cleaner: bool = False) -> None:
        """Write all dirty state to the log (§4.3.5's segment write).

        With ``checkpoint`` the flush ends by writing a checkpoint
        region; with ``cleaner`` the write may dip into the reserved
        clean segments (it is the cleaning pass's own write-back).

        A degraded (read-only) file system never flushes: the log must
        not grow onto failing media, so dirty state stays in memory and
        the call is a no-op.
        """
        if self._degraded:
            return
        if self._flushing and not cleaner:
            return
        self._flushing = True
        try:
            if not cleaner:
                self._ensure_clean_segments()
            plan = self._build_plan(checkpoint)
            if plan:
                self.segments.cleaner_mode = cleaner
                try:
                    self.segments.write_plan(plan)
                except NoSpaceError:
                    if cleaner:
                        raise
                    self.segments.cleaner_mode = False
                    self.cleaner.clean()
                    remainder = self._build_plan(checkpoint)
                    if remainder:
                        self.segments.write_plan(remainder)
                finally:
                    self.segments.cleaner_mode = False
                self._dirty_inodes.clear()
            if checkpoint:
                self._write_checkpoint()
        finally:
            self._flushing = False

    def _ensure_clean_segments(self) -> None:
        config = self._config
        needed = (
            self.cache.dirty_bytes // config.segment_size
            + self.segments.reserve_segments
            + 2
        )
        if self.usage.clean_count() < max(config.clean_low_water, needed):
            self.cleaner.clean(max(config.clean_high_water, needed))

    def _build_plan(self, checkpoint: bool) -> List[PlannedBlock]:
        """Assemble the dirty state into log order.

        Order matters: data blocks first, then single-indirect blocks,
        then double-indirect roots, then inode blocks, then inode-map
        blocks, then (at checkpoints) segment-usage blocks — each layer's
        address assignment feeds the next layer's contents.
        """
        plan: List[PlannedBlock] = []
        bs = self.block_size
        seg_of = self.layout.segment_of_block
        usage = self.usage
        cache = self.cache
        clock = self.clock

        data_blocks = sorted(
            (
                block
                for block in cache.dirty_blocks()
                if block.key.kind is BlockKind.DATA
            ),
            key=lambda block: (block.key.inum, block.key.index),
        )
        leaf_keys: Set[BlockKey] = set()
        root_keys: Set[BlockKey] = set()
        for block in cache.dirty_blocks():
            if block.key.kind is BlockKind.INDIRECT:
                leaf_keys.add(block.key)
            elif block.key.kind is BlockKind.DINDIRECT:
                root_keys.add(block.key)
        for block in data_blocks:
            lbn = block.key.index
            if lbn >= N_DIRECT:
                ordinal = self.block_map.single_indirect_ordinal(lbn)
                leaf_keys.add(
                    BlockKey(block.key.inum, BlockKind.INDIRECT, ordinal)
                )
        for key in leaf_keys:
            if key.index >= 1:
                root_keys.add(BlockKey(key.inum, BlockKind.DINDIRECT, 0))

        def plan_data(block) -> None:
            key = block.key
            inode = self._get_inode(key.inum)
            version = self.imap.get(key.inum).version

            def finalize(addr: int) -> None:
                old = self.block_map.set(inode, key.index, addr)
                if old != NIL:
                    usage.note_dead(seg_of(old), bs)
                usage.note_write(seg_of(addr), bs, clock.now())
                cache.mark_clean(key)
                self._mark_inode_dirty(inode)

            plan.append(
                PlannedBlock(
                    entry=SummaryEntry(
                        kind=BlockKind.DATA,
                        inum=key.inum,
                        index=key.index,
                        version=version,
                    ),
                    payload=lambda block=block: block.as_bytes(bs),
                    finalize=finalize,
                    write_into=lambda out, block=block: block.write_into(
                        out, bs
                    ),
                )
            )

        for block in data_blocks:
            plan_data(block)

        def plan_leaf(key: BlockKey) -> None:
            inode = self._get_inode(key.inum)
            version = self.imap.get(key.inum).version

            def finalize(addr: int) -> None:
                if key.index == 0:
                    old = inode.indirect
                    inode.indirect = addr
                else:
                    root_key = BlockKey(key.inum, BlockKind.DINDIRECT, 0)
                    root = self._load_pointers(root_key, inode.dindirect)
                    old = root[key.index - 1]
                    root[key.index - 1] = addr
                    cache.mark_dirty(root_key, clock.now())
                if old != NIL:
                    usage.note_dead(seg_of(old), bs)
                usage.note_write(seg_of(addr), bs, clock.now())
                cache.mark_clean(key)
                self._mark_inode_dirty(inode)

            def payload(key=key, inode=inode) -> bytes:
                current = cache.peek(key)
                if current is None:
                    raise CorruptionError(f"planned pointer block {key} vanished")
                return current.as_bytes(bs)

            def write_into(out, key=key) -> None:
                current = cache.peek(key)
                if current is None:
                    raise CorruptionError(f"planned pointer block {key} vanished")
                current.write_into(out, bs)

            plan.append(
                PlannedBlock(
                    entry=SummaryEntry(
                        kind=key.kind,
                        inum=key.inum,
                        index=key.index,
                        version=version,
                    ),
                    payload=payload,
                    finalize=finalize,
                    write_into=write_into,
                )
            )

        for key in sorted(leaf_keys, key=lambda k: (k.inum, k.index)):
            plan_leaf(key)

        def plan_root(key: BlockKey) -> None:
            inode = self._get_inode(key.inum)
            version = self.imap.get(key.inum).version

            def finalize(addr: int) -> None:
                old = inode.dindirect
                inode.dindirect = addr
                if old != NIL:
                    usage.note_dead(seg_of(old), bs)
                usage.note_write(seg_of(addr), bs, clock.now())
                cache.mark_clean(key)
                self._mark_inode_dirty(inode)

            def payload(key=key) -> bytes:
                current = cache.peek(key)
                if current is None:
                    raise CorruptionError(f"planned pointer block {key} vanished")
                return current.as_bytes(bs)

            def write_into(out, key=key) -> None:
                current = cache.peek(key)
                if current is None:
                    raise CorruptionError(f"planned pointer block {key} vanished")
                current.write_into(out, bs)

            plan.append(
                PlannedBlock(
                    entry=SummaryEntry(
                        kind=BlockKind.DINDIRECT,
                        inum=key.inum,
                        index=0,
                        version=version,
                    ),
                    payload=payload,
                    finalize=finalize,
                    write_into=write_into,
                )
            )

        for key in sorted(root_keys, key=lambda k: k.inum):
            plan_root(key)

        # Inodes, packed several to a block.
        dirty_inums = self.dirty_inode_numbers()
        inodes_per_block = bs // INODE_SIZE
        imap_indexes: Set[int] = set(self.imap.dirty_block_indexes())
        for group_start in range(0, len(dirty_inums), inodes_per_block):
            group = tuple(
                dirty_inums[group_start : group_start + inodes_per_block]
            )

            def finalize(addr: int, group=group) -> None:
                # The address may have belonged to an older inode block
                # whose segment was cleaned; drop any stale cached copy.
                cache.discard(BlockKey(0, BlockKind.INODE, addr))
                for slot, inum in enumerate(group):
                    old = self.imap.set_location(inum, addr, slot)
                    if old != NIL:
                        usage.note_dead(seg_of(old), INODE_SIZE)
                        cache.discard(BlockKey(0, BlockKind.INODE, old))
                    usage.note_write(seg_of(addr), INODE_SIZE, clock.now())

            def payload(group=group) -> bytes:
                data = b"".join(self._inodes[inum].pack() for inum in group)
                return data + b"\x00" * (bs - len(data))

            def write_into(out, group=group) -> None:
                offset = 0
                for inum in group:
                    offset += self._inodes[inum].pack_into(out, offset)
                out[offset:] = bytes(len(out) - offset)  # alloc-ok: tail pad

            plan.append(
                PlannedBlock(
                    entry=SummaryEntry(
                        kind=BlockKind.INODE,
                        inum=group[0],
                        index=0,
                        inums=group,
                    ),
                    payload=payload,
                    finalize=finalize,
                    write_into=write_into,
                )
            )
            imap_indexes.update(self.imap.block_of(inum) for inum in group)

        for index in sorted(imap_indexes):

            def finalize(addr: int, index=index) -> None:
                old = self.imap.block_addrs[index]
                self.imap.block_addrs[index] = addr
                if old != NIL:
                    usage.note_dead(seg_of(old), bs)
                usage.note_write(seg_of(addr), bs, clock.now())
                self.imap.mark_block_clean(index)

            plan.append(
                PlannedBlock(
                    entry=SummaryEntry(
                        kind=BlockKind.IMAP, inum=0, index=index
                    ),
                    payload=lambda index=index: self.imap.pack_block(index),
                    finalize=finalize,
                    write_into=lambda out, index=index: self.imap.pack_block_into(
                        index, out
                    ),
                )
            )

        if checkpoint:
            for index in self.usage.all_block_indexes():

                def finalize(addr: int, index=index) -> None:
                    old = self.usage.block_addrs[index]
                    self.usage.block_addrs[index] = addr
                    if old != NIL:
                        usage.note_dead(seg_of(old), bs)
                    usage.note_write(seg_of(addr), bs, clock.now())
                    self.usage.mark_block_clean(index)

                plan.append(
                    PlannedBlock(
                        entry=SummaryEntry(
                            kind=BlockKind.SEGUSAGE, inum=0, index=index
                        ),
                        payload=lambda index=index: self.usage.pack_block(index),
                        finalize=finalize,
                        write_into=lambda out, index=index: (
                            self.usage.pack_block_into(index, out)
                        ),
                    )
                )

        return plan

    def _write_checkpoint(self) -> None:
        """Commit point: everything logged so far becomes recoverable."""
        self.disk.drain()
        self.cpu.checkpoint()
        position = self.segments.position
        data = CheckpointData(
            timestamp=self.clock.now(),
            position=LogPosition(
                active_segment=position.active_segment,
                active_offset=position.active_offset,
                next_segment=position.next_segment,
                sequence=position.sequence,
            ),
            imap_addrs=list(self.imap.block_addrs),
            usage_addrs=list(self.usage.block_addrs),
        )
        self.checkpoints.write(data)

    # ------------------------------------------------------------------
    # Public LFS-specific operations
    # ------------------------------------------------------------------

    def fsync(self, handle) -> None:
        """§4.3.5's sync-request trigger: the caller blocks until the
        pending partial segment (which contains this file's dirty
        blocks, among everything else) is on disk."""
        self.fsync_many([handle])

    def fsync_many(self, handles) -> None:
        """Group commit: one partial-segment flush covers every handle.

        Because a segment write already carries *all* dirty state, N
        concurrent ``fsync`` requests need exactly one flush — this is
        the hook the service layer's :class:`~repro.service.committer.
        GroupCommitter` uses to amortize the paper's small-write problem
        across clients.  Each caller still pays its own syscall cost;
        the flush and the drain are paid once.
        """
        if not handles:
            return
        for handle in handles:
            self._handle_inode(handle)  # validates handle and mount state
            self.cpu.syscall()
        # A degraded fs cannot make anything durable; acking an fsync
        # here would promise persistence the volume can no longer give.
        self._check_writable()
        self.monitor.note_explicit(WritebackReason.SYNC)
        self.flush_log()
        self.disk.drain()

    def checkpoint(self) -> None:
        """Explicitly flush and checkpoint now."""
        self._check_mounted()
        self.flush_log(checkpoint=True)

    def clean_now(self, target_clean: Optional[int] = None) -> int:
        """User-initiated cleaning (§4.3.4's user-level process hook)."""
        self._check_mounted()
        if self._degraded:
            return 0
        return self.cleaner.clean(target_clean)

    def unmount(self) -> None:
        if self._unmounted:
            return
        if not self._degraded:
            self.flush_log(checkpoint=True)
            self.disk.drain()
        self._unmounted = True

    def crash(self) -> None:
        """Simulate an OS crash: in-flight disk writes are lost."""
        self.disk.crash()
        self._unmounted = True

    # ------------------------------------------------------------------
    # Degraded read-only mode
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the volume has dropped to read-only after media loss."""
        return self._degraded

    @property
    def media_strikes(self) -> int:
        """Accumulated media-damage strikes (vs. ``quarantine_budget``)."""
        return self._media_strikes

    def note_media_damage(self, strikes: int = 1, reason: str = "") -> None:
        """Record unrecoverable media damage; degrade past the budget.

        Called by the cleaner when it quarantines a victim segment and
        by mount when roll-forward survived unreadable sectors.  Once
        ``media_strikes`` exceeds ``config.quarantine_budget`` the file
        system transitions (exactly once) to degraded read-only mode:
        every mutating VFS entry point raises
        :class:`~repro.errors.ReadOnlyFSError`, flushes become no-ops,
        and reads of surviving data continue to be served.
        """
        if strikes <= 0:
            return
        self._media_strikes += strikes
        if (
            not self._degraded
            and self._media_strikes > self._config.quarantine_budget
        ):
            self._enter_degraded(reason)

    def _enter_degraded(self, reason: str) -> None:
        self._degraded = True
        self._g_degraded.set(1)
        with self.telemetry.span(
            "fs.degrade", strikes=self._media_strikes, reason=reason
        ):
            pass  # event span: marks the transition instant in traces

    def _check_writable(self) -> None:
        if self._degraded:
            raise ReadOnlyFSError(
                f"volume is degraded read-only: {self._media_strikes} "
                f"media-damage strikes exceed quarantine budget "
                f"{self._config.quarantine_budget}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statvfs(self):
        """Capacity report.  "Used" is live log data; clean segments and
        the dead fraction of dirty segments are reclaimable, hence free."""
        from repro.vfs.interface import VfsInfo

        total = self.layout.data_capacity_bytes
        used = self.usage.total_live_bytes() + self.cache.dirty_bytes
        used = min(used, total)
        return VfsInfo(
            total_bytes=total,
            used_bytes=used,
            free_bytes=total - used,
            total_files=self._config.max_inodes - 1,
            used_files=self.imap.allocated_count(),
        )

    def write_cost(self) -> float:
        """Total log bytes written per byte of user data written."""
        user = max(1, self._stats.bytes_written)
        return self.segments.log_bytes_written / user

    def wamp_report(self) -> Dict[str, Any]:
        """The write-amplification ledger (the ``wamp.*`` family).

        Reads the always-on counters, so it works with telemetry
        disabled: user bytes in, log bytes shipped, the cleaner's
        copy-out traffic broken out, and the amplification ratio
        (log bytes per user byte — the paper's write cost, §5.1).
        """
        user = self._stats.bytes_written
        log = self.segments.log_bytes_written
        cleaner = self.segments.cleaner_bytes_written
        return {
            "user_bytes": user,
            "log_bytes": log,
            "cleaner_bytes": cleaner,
            "cleaner_fraction": (cleaner / log) if log else 0.0,
            "write_amplification": (log / user) if user else 0.0,
        }

    def live_data_bytes(self) -> int:
        return self.usage.total_live_bytes()

    def segment_utilization_histogram(self, buckets: int = 10) -> List[int]:
        """Count of dirty segments per utilization decile (for analysis)."""
        histogram = [0] * buckets
        for seg in self.usage.dirty_segments():
            u = self.usage.utilization(seg)
            histogram[min(buckets - 1, int(u * buckets))] += 1
        return histogram


def make_lfs(
    total_bytes: Optional[int] = None,
    config: Optional[LfsConfig] = None,
    speed_factor: float = 1.0,
    geometry=None,
    trace=None,
    telemetry: Optional[Telemetry] = None,
) -> LogStructuredFS:
    """Convenience constructor: simulated WREN IV disk + fresh LFS.

    Returns a mounted file system; its simulation handles are reachable
    as ``fs.disk``, ``fs.clock`` and ``fs.cpu``.
    """
    from repro.disk.geometry import wren_iv
    from repro.sim.clock import SimClock

    if geometry is None:
        geometry = wren_iv(total_bytes) if total_bytes else wren_iv()
    clock = SimClock()
    cpu = CpuModel(clock, speed_factor=speed_factor)
    disk = SimDisk(geometry, clock, trace=trace, telemetry=telemetry)
    return LogStructuredFS.mkfs(disk, cpu, config, telemetry=telemetry)
