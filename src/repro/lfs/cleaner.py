"""The segment cleaner (§4.3.2–§4.3.4).

Cleaning turns fragmented segments back into clean ones: read the
victims into memory, decide which blocks are still live, re-dirty the
live blocks in the file cache, and let the ordinary segment writer copy
them to the log tail ("LFS implements cleaning by reading the live
blocks of a segment into the file cache and then using the cache
write-back code to combine and copy the blocks into a new segment").

Liveness (§4.3.3) is decided exactly as the paper describes:

1. the summary entry's version number is compared with the file's
   current version in the inode map — a mismatch means the file was
   deleted or truncated, so the block is dead;
2. otherwise the inode (and any indirect blocks) are consulted: the
   block is live iff the file's pointer for that logical block still
   names this disk address.

Victim selection (§4.3.4) supports the paper's policy (greedy: most free
space first) plus two for the ablation benchmarks: cost-benefit
(the refinement Rosenblum's follow-up work develops, scoring segments by
``(1 - u) * age / (1 + u)``) and random.

Every cleaning pass ends with a checkpoint: cleaned segments are only
reusable once the relocated metadata that references them is itself
durable.

A victim whose media cannot be read (:class:`~repro.errors.MediaError`,
see :mod:`repro.faults`) is *quarantined* rather than aborting the
pass: it leaves the dirty set permanently, so the cleaner never
re-selects it and the writer never reuses it, and cleaning continues
with the remaining victims.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.common.inode import BlockKey, BlockKind, Inode, INODE_SIZE
from repro.errors import CorruptionError, MediaError
from repro.lfs.segment_usage import SegmentState
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.obs import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lfs.filesystem import LogStructuredFS


class CleanerPolicy(str, enum.Enum):
    GREEDY = "greedy"
    COST_BENEFIT = "cost-benefit"
    RANDOM = "random"


@dataclass
class CleanerStats:
    passes: int = 0
    segments_cleaned: int = 0
    live_blocks_copied: int = 0
    dead_blocks_dropped: int = 0
    bytes_read: int = 0
    live_bytes_copied: int = 0
    empty_segments_skipped: int = 0
    emergency_passes: int = 0
    busy_seconds: float = 0.0
    # Portion of busy_seconds spent stalled on synchronous disk I/O
    # (sampled from SimDisk.sync_stall_seconds around each pass); the
    # attribution analyzer subtracts it so cleaner CPU time and disk
    # time land in different latency components.
    disk_stall_seconds: float = 0.0
    segments_quarantined: int = 0


class SegmentCleaner:
    """Reads fragmented segments and relocates their live blocks."""

    def __init__(
        self,
        fs: "LogStructuredFS",
        policy: CleanerPolicy = CleanerPolicy.GREEDY,
        victims_per_pass: int = 4,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.fs = fs
        self.policy = policy
        self.victims_per_pass = victims_per_pass
        self.stats = CleanerStats()
        self._rng = random.Random(0x5EC5)
        self.telemetry = telemetry or NULL_TELEMETRY
        obs = self.telemetry
        self._m_passes = obs.counter("cleaner.passes")
        self._m_segments = obs.counter("cleaner.segments_cleaned")
        self._m_bytes_read = obs.counter("cleaner.bytes_read")
        self._m_live_copied = obs.counter("cleaner.live_bytes_copied")
        self._m_live_blocks = obs.counter("cleaner.live_blocks_copied")
        self._m_dead_blocks = obs.counter("cleaner.dead_blocks_dropped")
        self._m_quarantined = obs.counter("cleaner.segments_quarantined")
        self._g_reserve = obs.gauge("cleaner.clean_reserve")
        self._m_victims = {
            p: obs.counter("cleaner.victims", policy=p.value)
            for p in CleanerPolicy
        }

    # ------------------------------------------------------------------
    # Clean-segment reserve (backpressure input)
    # ------------------------------------------------------------------

    def clean_reserve(self) -> int:
        """Clean segments available beyond the writer's hard reserve.

        This is the number the service layer's admission controller
        watches: when it approaches zero, the next flush is at risk of
        having to clean synchronously (or, past the hard reserve, of
        raising ``NoSpaceError``), so writers should be throttled while
        the cleaner catches up.  May be negative transiently while the
        cleaner itself is consuming reserve segments.
        """
        reserve = (
            self.fs.usage.clean_count() - self.fs.segments.reserve_segments
        )
        self._g_reserve.set(reserve)
        return reserve

    # ------------------------------------------------------------------
    # Victim selection (§4.3.4)
    # ------------------------------------------------------------------

    def select_victims(
        self,
        count: int,
        written_before: float | None = None,
        max_utilization: float | None = None,
    ) -> List[int]:
        usage = self.fs.usage
        config = self.fs.config
        if max_utilization is None:
            max_utilization = config.max_live_fraction_to_clean
        candidates = [
            seg
            for seg in usage.dirty_segments()
            if usage.utilization(seg) <= max_utilization
            and (
                written_before is None
                or usage.info(seg).last_write < written_before
            )
        ]
        if not candidates:
            return []
        if self.policy is CleanerPolicy.GREEDY:
            candidates.sort(key=lambda seg: (usage.info(seg).live_bytes, seg))
        elif self.policy is CleanerPolicy.COST_BENEFIT:
            now = self.fs.clock.now()

            def benefit(seg: int) -> float:
                u = usage.utilization(seg)
                age = max(0.0, now - usage.info(seg).last_write)
                return (1.0 - u) * age / (1.0 + u)

            candidates.sort(key=lambda seg: (-benefit(seg), seg))
        else:
            self._rng.shuffle(candidates)
        return candidates[:count]

    # ------------------------------------------------------------------
    # The cleaning loop
    # ------------------------------------------------------------------

    def clean(
        self,
        target_clean: int | None = None,
        pays_for: int | None = None,
    ) -> int:
        """Clean until ``target_clean`` segments are clean (or stuck).

        Returns the number of segments cleaned.  Per §4.3.4, segments
        are cleaned "until all segments are either clean or contain at
        least a file-system-settable fraction of live blocks".

        ``pays_for`` names the span id of a throttled request that is
        stalled waiting on this pass; the pass's span links back to it
        so exported traces tie reclamation work to the foreground write
        that paid for it.
        """
        if self.fs.degraded:
            return 0  # read-only volumes neither clean nor flush
        target = (
            self.fs.config.clean_high_water
            if target_clean is None
            else target_clean
        )
        with self.telemetry.span("cleaner.clean", target=target) as span:
            if pays_for is not None:
                span.add_link(pays_for, "pays_for")
            cleaned = self._run_clean(target)
            span.set_attr("cleaned", cleaned)
        self._m_segments.inc(cleaned)
        return cleaned

    def _run_clean(self, target: int) -> int:
        cleaned = 0
        usage = self.fs.usage
        start = self.fs.clock.now()
        stall_before = getattr(self.fs.disk, "sync_stall_seconds", 0.0)
        stagnant_passes = 0
        while usage.clean_count() < target:
            clean_before = usage.clean_count()
            # Only segments that existed when this invocation began are
            # victims: cleaning output (fresh, nearly full segments plus
            # the checkpoint metadata that rides along) must not be
            # re-cleaned in the same breath, or a nearly full disk makes
            # the cleaner chase its own tail.
            victims = self.select_victims(
                self.victims_per_pass, written_before=start
            )
            if not victims and (
                usage.clean_count()
                <= self.fs.segments.reserve_segments + 2
            ):
                # Emergency: space is trapped in segments fuller than
                # the policy threshold.  §4.3.4 notes cleaning full
                # segments "will not harm the system" — it is merely
                # expensive, and far better than wedging.
                victims = self.select_victims(
                    self.victims_per_pass,
                    written_before=start,
                    max_utilization=0.999,
                )
                self.stats.emergency_passes += 1 if victims else 0
            if not victims:
                break
            self.stats.passes += 1
            self._m_passes.inc()
            self._m_victims[self.policy].inc(len(victims))
            occupied = []
            for seg in victims:
                # §5.3: "Segments with no live blocks have no cost."  The
                # in-session usage estimate is exact and recovery only ever
                # over-estimates liveness, so zero genuinely means empty —
                # reclaim such segments immediately, *before* the flush,
                # so the flush itself has room to run even when the clean
                # pool has bottomed out.
                if usage.info(seg).live_bytes == 0:
                    self.stats.empty_segments_skipped += 1
                    usage.mark_clean(seg, self.fs.clock.now())
                    cleaned += 1
                    self.stats.segments_cleaned += 1
                    continue
                try:
                    self._relocate_live_blocks(seg)
                except MediaError:
                    # The victim's media is gone.  Quarantine it — it
                    # leaves the dirty set, so it is never selected
                    # again and never becomes a write target — and keep
                    # cleaning the remaining victims.  Any live blocks
                    # already re-dirtied into the cache before the error
                    # are relocated by the flush below; the rest are
                    # stranded and will surface as read errors, which is
                    # detection, not silent loss.
                    usage.quarantine(seg)
                    self.stats.segments_quarantined += 1
                    self._m_quarantined.inc()
                    self.fs.note_media_damage(reason="cleaner")
                    continue
                occupied.append(seg)
            if self.fs.degraded:
                # The quarantine above exhausted the budget.  The
                # relocation flush below is now forbidden (the fs is
                # read-only), so end the pass without marking the
                # occupied victims clean: their live blocks sit dirty in
                # the cache and the on-disk copies remain referenced —
                # unreclaimed but safe.
                break
            if occupied:
                # The write-back both copies the live data and
                # checkpoints, so nothing durable references the victims
                # any more.
                self.fs.flush_log(checkpoint=True, cleaner=True)
                now = self.fs.clock.now()
                for seg in occupied:
                    usage.mark_clean(seg, now)
                    cleaned += 1
                    self.stats.segments_cleaned += 1
            # Safety valve: a pass that costs as many segments as it
            # frees means the disk is effectively full at this
            # threshold; stop rather than spin.
            if usage.clean_count() <= clean_before:
                stagnant_passes += 1
                if stagnant_passes >= 2:
                    break
            else:
                stagnant_passes = 0
        self.stats.busy_seconds += self.fs.clock.now() - start
        self.stats.disk_stall_seconds += (
            getattr(self.fs.disk, "sync_stall_seconds", 0.0) - stall_before
        )
        self.clean_reserve()  # refresh the cleaner.clean_reserve gauge
        return cleaned

    # ------------------------------------------------------------------
    # Per-segment relocation
    # ------------------------------------------------------------------

    def _relocate_live_blocks(self, seg: int) -> None:
        fs = self.fs
        layout = fs.layout
        bps = fs.config.blocks_per_segment
        if fs.usage.info(seg).state is not SegmentState.DIRTY:
            raise CorruptionError(f"cleaning non-dirty segment {seg}")
        first_block = layout.segment_first_block(seg)
        with self.telemetry.span(
            "cleaner.relocate_segment", segment=seg
        ) as span:
            # Stage the whole-segment read in a pooled buffer: the
            # device hands back a zero-copy view of live storage, and
            # relocation must keep parsing it across cache traffic, so
            # one memcpy into the segment writer's reusable buffer (no
            # per-victim allocation) decouples us from later writes.
            pool = fs.segments.pool
            buffer = pool.acquire()
            try:
                image = fs.disk.read(
                    first_block * fs.config.sectors_per_block,
                    bps * fs.config.sectors_per_block,
                    label=f"cleaner segment {seg}",
                    vectored=True,
                )
                nbytes = len(image)
                staging = memoryview(buffer)
                staging[:nbytes] = image
                raw = staging[:nbytes].toreadonly()
                self._scan_segment(seg, first_block, raw, span)
            finally:
                pool.release(buffer)

    def _scan_segment(self, seg: int, first_block: int, raw, span) -> None:
        """Walk a staged segment image, relocating its live entries."""
        fs = self.fs
        bs = fs.config.block_size
        bps = fs.config.blocks_per_segment
        self.stats.bytes_read += len(raw)
        self._m_bytes_read.inc(len(raw))
        live = dead = 0
        offset = 0
        while offset < bps:
            try:
                nsummary = SegmentSummary.peek_summary_blocks(
                    raw[offset * bs : (offset + 1) * bs], bs
                )
                summary = SegmentSummary.unpack(raw[offset * bs :], bs)
            except CorruptionError:
                break  # end of the written log within this segment
            fs.cpu.cleaner_blocks(len(summary.entries))
            for position, entry in enumerate(summary.entries):
                addr = first_block + offset + nsummary + position
                payload = raw[
                    (offset + nsummary + position)
                    * bs : (offset + nsummary + position + 1)
                    * bs
                ]
                if self._relocate_entry(entry, addr, payload):
                    live += 1
                else:
                    dead += 1
            offset += nsummary + summary.nblocks
        self.stats.live_blocks_copied += live
        self.stats.live_bytes_copied += live * bs
        self.stats.dead_blocks_dropped += dead
        self._m_live_blocks.inc(live)
        self._m_live_copied.inc(live * bs)
        self._m_dead_blocks.inc(dead)
        span.set_attr("live_blocks", live)
        span.set_attr("dead_blocks", dead)

    def _relocate_entry(
        self, entry: SummaryEntry, addr: int, payload: bytes
    ) -> bool:
        """Re-dirty ``entry``'s block in cache if it is live."""
        handler = {
            BlockKind.DATA: self._relocate_data,
            BlockKind.INDIRECT: self._relocate_pointer,
            BlockKind.DINDIRECT: self._relocate_pointer,
            BlockKind.INODE: self._relocate_inodes,
            BlockKind.IMAP: self._relocate_imap,
            BlockKind.SEGUSAGE: self._relocate_usage,
        }[entry.kind]
        return handler(entry, addr, payload)

    def _file_is_current(self, entry: SummaryEntry) -> bool:
        """Step 1 of §4.3.3: the summary-entry version check."""
        imap_entry = self.fs.imap.get(entry.inum)
        return imap_entry.allocated and imap_entry.version == entry.version

    def _relocate_data(
        self, entry: SummaryEntry, addr: int, payload: bytes
    ) -> bool:
        fs = self.fs
        if not self._file_is_current(entry):
            return False
        inode = fs._get_inode(entry.inum)
        if fs.block_map.get(inode, entry.index) != addr:
            return False  # step 2: the file no longer points here
        key = BlockKey(entry.inum, BlockKind.DATA, entry.index)
        fs.cpu.cleaner_blocks(1)
        cached = fs.cache.peek(key)
        if cached is None:
            fs.cache.insert(
                key, bytearray(payload), dirty=True, now=fs.clock.now()
            )
        elif not cached.dirty:
            fs.cache.mark_dirty(key, fs.clock.now())
        fs._mark_inode_dirty(inode)
        return True

    def _relocate_pointer(
        self, entry: SummaryEntry, addr: int, payload: bytes
    ) -> bool:
        fs = self.fs
        if not self._file_is_current(entry):
            return False
        inode = fs._get_inode(entry.inum)
        key = BlockKey(entry.inum, entry.kind, entry.index)
        if fs._pointer_block_addr(inode, key) != addr:
            return False
        fs.cpu.cleaner_blocks(1)
        # Materialize through the normal path (reuses the disk image we
        # just read only if uncached; the cached copy is always current).
        fs._load_pointers(key, addr)
        fs.cache.mark_dirty(key, fs.clock.now())
        fs._mark_inode_dirty(inode)
        return True

    def _relocate_inodes(
        self, entry: SummaryEntry, addr: int, payload: bytes
    ) -> bool:
        fs = self.fs
        any_live = False
        for slot, inum in enumerate(entry.inums):
            imap_entry = fs.imap.get(inum)
            if not imap_entry.allocated or imap_entry.inode_addr != addr:
                continue
            any_live = True
            fs.cpu.cleaner_blocks(1)
            if inum not in fs._inodes:
                inode = Inode.unpack(
                    payload[slot * INODE_SIZE : (slot + 1) * INODE_SIZE]
                )
                if inode.inum != inum:
                    raise CorruptionError(
                        f"inode block at {addr} slot {slot} holds inode "
                        f"{inode.inum}, expected {inum}"
                    )
                fs._inodes[inum] = inode
            fs._mark_inode_dirty(fs._inodes[inum])
        return any_live

    def _relocate_imap(
        self, entry: SummaryEntry, addr: int, payload: bytes
    ) -> bool:
        fs = self.fs
        index = entry.index
        if (
            index >= fs.imap.num_blocks
            or fs.imap.block_addrs[index] != addr
        ):
            return False
        fs.imap.mark_block_dirty(index)
        return True

    def _relocate_usage(
        self, entry: SummaryEntry, addr: int, payload: bytes
    ) -> bool:
        fs = self.fs
        index = entry.index
        if (
            index >= fs.usage.num_blocks
            or fs.usage.block_addrs[index] != addr
        ):
            return False
        # Usage blocks are rewritten by the checkpoint that ends this
        # cleaning pass; nothing to re-dirty, the block just moves.
        return True
