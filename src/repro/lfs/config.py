"""LFS configuration and on-disk layout arithmetic.

The defaults are the paper's evaluation parameters (§5): a four-kilobyte
block size and a one-megabyte segment size on a ~300 MB file system.

Disk layout (in file-system blocks)::

    block 0                superblock
    blocks 1 .. 1+CR       checkpoint region 0
    blocks 1+CR .. 1+2CR   checkpoint region 1
    seg_start ...          segments (seg_start is segment-aligned)

Everything after ``seg_start`` belongs to the segmented log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.writeback import WritebackConfig
from repro.disk.retry import RetryPolicy
from repro.errors import InvalidArgumentError
from repro.units import KIB, MIB, SECTOR_SIZE

LFS_MAGIC = 0x4C46_5331  # "LFS1"
CHECKPOINT_MAGIC = 0x4C46_5343  # "LFSC"
SUMMARY_MAGIC = 0x4C46_5353  # "LFSS"

CHECKPOINT_REGION_BLOCKS = 8
"""Blocks reserved for each of the two checkpoint regions."""


@dataclass(frozen=True)
class LfsConfig:
    """Tunable parameters of an LFS instance."""

    block_size: int = 4 * KIB
    segment_size: int = 1 * MIB
    cache_bytes: int = 15 * MIB
    """File cache size; §5 reports ~15 MB was used as a file cache."""

    max_inodes: int = 32768

    checkpoint_interval: float = 30.0
    """Seconds between automatic checkpoints (§4.4.1 uses 30 s)."""

    clean_low_water: int = 8
    """Start cleaning when clean segments drop below this (§4.3.4)."""

    clean_high_water: int = 16
    """Clean until at least this many segments are clean."""

    cleaner_reserve_segments: int = 4
    """Clean segments only the cleaner's own writes may consume."""

    max_live_fraction_to_clean: float = 0.95
    """Segments fuller than this are never chosen for cleaning."""

    cleaner_policy: str = "greedy"
    """Victim selection: 'greedy', 'cost-benefit' or 'random'."""

    roll_forward: bool = True
    """Recover log writes after the last checkpoint at mount time.

    ``False`` reproduces the paper's "current implementation" (§4.4):
    recovery is instantaneous but everything after the last checkpoint
    is lost.
    """

    writeback: WritebackConfig = field(default_factory=WritebackConfig)

    readahead_blocks: int = 0
    """Sequential-readahead window in blocks (0 disables readahead).

    Prefetch reads are real simulated I/O and advance the simulated
    clock, so experiments that pin device images byte-for-byte must
    leave this at 0; benchmarks opt in explicitly.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    """Transient-read retry backoff pushed onto the disk timing layer.

    The defaults reproduce the historical hard-coded schedule exactly
    (2 ms base, doubling, three attempts), so existing seeded images
    are unaffected unless a policy is supplied explicitly.
    """

    quarantine_budget: int = 4
    """Media-damage strikes tolerated before degrading to read-only.

    Each segment the cleaner quarantines and each unreadable sector
    roll-forward survives counts one strike; exceeding the budget
    transitions the file system to ``DEGRADED_READONLY`` (writes raise
    :class:`~repro.errors.ReadOnlyFSError`, reads still served) instead
    of letting a failing volume absorb damage silently forever.
    """

    numpy_batch: bool = False
    """Use the numpy engine for u64 array (un)packing when available.

    Both engines emit identical little-endian bytes, so device images
    are the same either way; the pure-python path stays the default so
    seeded runs do not depend on numpy being installed.  Silently falls
    back when numpy is missing (see
    :func:`repro.common.serialization.set_numpy_batch`).
    """

    def __post_init__(self) -> None:
        if self.block_size % SECTOR_SIZE:
            raise InvalidArgumentError(
                f"block size {self.block_size} not a multiple of "
                f"{SECTOR_SIZE}-byte sectors"
            )
        if self.segment_size % self.block_size:
            raise InvalidArgumentError(
                f"segment size {self.segment_size} not a multiple of "
                f"block size {self.block_size}"
            )
        if self.segment_size // self.block_size < 4:
            raise InvalidArgumentError("segments must hold at least 4 blocks")
        if self.max_inodes < 16:
            raise InvalidArgumentError("max_inodes too small to be useful")
        if self.cleaner_policy not in ("greedy", "cost-benefit", "random"):
            raise InvalidArgumentError(
                f"unknown cleaner policy: {self.cleaner_policy!r}"
            )
        if not 0.0 < self.max_live_fraction_to_clean <= 1.0:
            raise InvalidArgumentError("max_live_fraction_to_clean out of range")
        if self.clean_high_water < self.clean_low_water:
            raise InvalidArgumentError(
                "clean_high_water below clean_low_water"
            )
        if self.readahead_blocks < 0:
            raise InvalidArgumentError(
                f"readahead_blocks must be >= 0: {self.readahead_blocks}"
            )
        if self.quarantine_budget < 0:
            raise InvalidArgumentError(
                f"quarantine_budget must be >= 0: {self.quarantine_budget}"
            )

    @property
    def blocks_per_segment(self) -> int:
        return self.segment_size // self.block_size

    @property
    def sectors_per_block(self) -> int:
        return self.block_size // SECTOR_SIZE


@dataclass(frozen=True)
class LfsLayout:
    """Where everything lives on the device, in file-system blocks."""

    config: LfsConfig
    total_blocks: int

    def __post_init__(self) -> None:
        if self.num_segments < 4:
            raise InvalidArgumentError(
                f"device too small: only {self.num_segments} segments"
            )

    @classmethod
    def for_device(cls, config: LfsConfig, device_bytes: int) -> "LfsLayout":
        return cls(config=config, total_blocks=device_bytes // config.block_size)

    @property
    def superblock_addr(self) -> int:
        return 0

    @property
    def checkpoint_addrs(self) -> tuple:
        return (1, 1 + CHECKPOINT_REGION_BLOCKS)

    @property
    def seg_start_block(self) -> int:
        first_free = 1 + 2 * CHECKPOINT_REGION_BLOCKS
        bps = self.config.blocks_per_segment
        return ((first_free + bps - 1) // bps) * bps

    @property
    def num_segments(self) -> int:
        return (self.total_blocks - self.seg_start_block) // (
            self.config.blocks_per_segment
        )

    def segment_first_block(self, seg: int) -> int:
        self._check_segment(seg)
        return self.seg_start_block + seg * self.config.blocks_per_segment

    def segment_of_block(self, addr: int) -> int:
        if addr < self.seg_start_block:
            raise InvalidArgumentError(
                f"block {addr} lies before the segmented log"
            )
        seg = (addr - self.seg_start_block) // self.config.blocks_per_segment
        self._check_segment(seg)
        return seg

    def _check_segment(self, seg: int) -> None:
        if not 0 <= seg < self.num_segments:
            raise InvalidArgumentError(
                f"segment {seg} out of range [0, {self.num_segments})"
            )

    @property
    def data_capacity_bytes(self) -> int:
        """Bytes the log can hold (all segments, excluding boot blocks)."""
        return self.num_segments * self.config.segment_size
