"""Crash recovery: checkpoint mount and log roll-forward (§4.4).

Mounting from a checkpoint alone is the paper's "simpler algorithm with
zero recovery time": adopt the checkpointed inode map, usage array and
log position, losing anything written after the checkpoint.

Roll-forward is the mechanism the paper says LFS will "ultimately" use,
implemented here: starting at the checkpointed log tail, scan forward
through partial segments, validating each summary (magic, CRC, and an
exactly-continuing sequence number) and replaying the inode-map and
segment-usage blocks it contains.  Because every flush appends the inode
map blocks covering every inode it moved, replaying the logged imap
blocks in order reconstructs the complete inode-location and allocation
state as of the last flush that reached the disk; file data and indirect
blocks need no replay at all — the recovered inodes already point at
them.

Navigation mirrors the writer: the next partial segment normally starts
where the previous one ended; when the writer skipped to a fresh segment
(not enough room left), the previous summary's next-segment link says
where to look instead.

Roll-forward is the part of the system that reads bytes nothing
vouches for — the log tail past the checkpoint is exactly where torn
writes and crash-coincident corruption land (see :mod:`repro.faults`).
Every failure it can observe is therefore typed and non-fatal: a
summary that fails its magic/CRC/sequence guards (``ChecksumMismatch``,
``TornWriteError``) ends the scan at the last good partial; an
unreadable sector (``MediaError``) stops the scan and is counted; a
replayed metadata block whose payload does not decode is skipped and
counted.  Recovery never raises past the mount — the worst case is
losing un-checkpointed tail writes, which is the paper's baseline
guarantee anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.common.inode import BlockKind
from repro.errors import CorruptionError, InvalidArgumentError, MediaError
from repro.lfs.checkpoint import CheckpointData
from repro.lfs.segments import LogPosition
from repro.lfs.segment_usage import SegmentState
from repro.lfs.summary import SegmentSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lfs.filesystem import LogStructuredFS


@dataclass
class RollForwardReport:
    """What a roll-forward pass found and applied."""

    partials_applied: int = 0
    blocks_recovered: int = 0
    imap_blocks_applied: int = 0
    usage_blocks_applied: int = 0
    segments_visited: List[int] = field(default_factory=list)
    stop_reason: str = "checkpoint-only"
    recovery_seconds: float = 0.0
    media_errors: int = 0
    """Unreadable-sector errors that ended or limited the scan."""
    corrupt_entries_skipped: int = 0
    """Replayed metadata blocks whose payload failed to decode."""

    @property
    def degraded(self) -> bool:
        """Did recovery detect (and survive) log-tail damage?"""
        return bool(self.media_errors or self.corrupt_entries_skipped)


def roll_forward(
    fs: "LogStructuredFS", checkpoint: CheckpointData
) -> RollForwardReport:
    """Replay log writes that happened after ``checkpoint``.

    Mutates the file system's inode map, usage array and log position;
    the caller is responsible for writing a fresh checkpoint afterwards.
    """
    with fs.telemetry.span("recovery.roll_forward") as span:
        report = _roll_forward(fs, checkpoint)
        span.set_attr("partials_applied", report.partials_applied)
        span.set_attr("blocks_recovered", report.blocks_recovered)
        span.set_attr("stop_reason", report.stop_reason)
    obs = fs.telemetry
    obs.counter("recovery.partials_applied").inc(report.partials_applied)
    obs.counter("recovery.blocks_recovered").inc(report.blocks_recovered)
    obs.counter("recovery.media_errors").inc(report.media_errors)
    obs.counter("recovery.corrupt_entries_skipped").inc(
        report.corrupt_entries_skipped
    )
    return report


def _roll_forward(
    fs: "LogStructuredFS", checkpoint: CheckpointData
) -> RollForwardReport:
    report = RollForwardReport()
    start_time = fs.clock.now()
    layout = fs.layout
    bps = fs.config.blocks_per_segment

    seg = checkpoint.position.active_segment
    offset = checkpoint.position.active_offset
    fallback_seg: Optional[int] = checkpoint.position.next_segment
    expected_seq = checkpoint.position.sequence
    report.segments_visited.append(seg)

    while True:
        parsed = _try_parse(
            fs, seg, offset, expected_seq, checkpoint.timestamp, report
        )
        if parsed is None and fallback_seg is not None and offset != 0:
            # The writer may have skipped to a fresh segment mid-flush.
            candidate = _try_parse(
                fs, fallback_seg, 0, expected_seq, checkpoint.timestamp, report
            )
            if candidate is not None:
                seg, offset = fallback_seg, 0
                report.segments_visited.append(seg)
                parsed = candidate
        if parsed is None:
            report.stop_reason = (
                "log-end" if report.partials_applied else "no-writes-after-checkpoint"
            )
            if report.media_errors:
                report.stop_reason = "media-error"
            break
        summary, nsummary = parsed
        try:
            _apply_partial(fs, seg, offset, nsummary, summary, report)
        except MediaError:
            # The summary was readable but its content blocks are not.
            # Nothing past this point can be replayed consistently: stop
            # here, keeping everything already applied.
            report.media_errors += 1
            report.stop_reason = "media-error"
            break
        report.partials_applied += 1
        expected_seq = summary.seq + 1
        offset += nsummary + summary.nblocks
        if summary.next_segment_block != 0:
            try:
                fallback_seg = layout.segment_of_block(
                    summary.next_segment_block
                )
            except InvalidArgumentError:
                # A CRC-valid summary should never carry a bad link, but
                # a bit flip that misses the checksummed range can; end
                # the chain rather than chase a wild pointer.
                fallback_seg = None
        if bps - offset < 2:
            if fallback_seg is None:
                report.stop_reason = "segment-chain-end"
                break
            fs.usage.force_state(seg, SegmentState.DIRTY)
            seg, offset = fallback_seg, 0
            report.segments_visited.append(seg)

    # Leave the log positioned exactly after the last applied partial.
    # Every segment the scan visited was consumed by the post-checkpoint
    # log chain: it either holds applied partials (which live metadata
    # references) or was at least claimed by the writer.  The replayed
    # usage state can lag that by one flush (a segment's state change is
    # logged one flush after the advance that caused it), so force them
    # dirty — a stale CLEAN state here would let the writer or cleaner
    # reuse a segment whose blocks the recovered file system still
    # points at.
    for visited_seg in report.segments_visited:
        if visited_seg != seg:
            fs.usage.force_state(visited_seg, SegmentState.DIRTY)
    next_seg: Optional[int] = fallback_seg
    if next_seg == seg:
        # The chain ended with the tail segment as its own successor:
        # the writer advanced into its pre-selected segment and the
        # flush that would have recorded a new choice never became
        # durable.  A segment must never be its own successor — the
        # writer would wrap onto the data it just wrote.
        next_seg = None
    if next_seg is None:
        # The checkpointed pre-selection is no safer: the applied chain
        # may have consumed it (the checkpoint's ``next`` is usually the
        # first segment the chain visits).  Claim a replayed-clean
        # segment the scan never touched; only a full disk leaves
        # nothing better than the checkpointed choice.
        visited = set(report.segments_visited)
        visited.add(seg)
        for candidate in fs.usage.clean_segments():
            if candidate not in visited:
                next_seg = candidate
                break
        if next_seg is None:
            next_seg = checkpoint.position.next_segment
    fs.segments.restore(
        LogPosition(
            active_segment=seg,
            active_offset=offset,
            next_segment=next_seg,
            sequence=expected_seq,
        )
    )
    fs.usage.force_state(seg, SegmentState.ACTIVE)
    fs.usage.force_state(next_seg, SegmentState.ACTIVE)
    # The recovered usage accounts can be stale for the log tail in two
    # ways, and the writer's strict accounting (live <= capacity) will
    # trip on either when it appends after recovery:
    #
    # * the replayed usage blocks may already include the partials this
    #   scan re-estimated (they were logged *in* those partials), so the
    #   active segment's account can be double-counted — but live bytes
    #   never exceed the written prefix, so clamp there;
    # * the summary chain proves ``next_seg`` was freshly claimed from
    #   the clean list before the crash (its cleaning flush carries an
    #   earlier sequence number, so it was replayed), but the usage
    #   block recording the *zeroed* account lands one flush later and
    #   may be lost — the pre-clean account survives as a stale hint.
    #   Nothing has been written into the segment, so its account is 0.
    fs.usage.clamp_live(seg, offset * fs.config.block_size)
    if next_seg != seg:
        fs.usage.clamp_live(next_seg, 0)
    report.recovery_seconds = fs.clock.now() - start_time
    return report


def _try_parse(
    fs: "LogStructuredFS",
    seg: int,
    offset: int,
    expected_seq: int,
    min_timestamp: float,
    report: RollForwardReport,
) -> Optional[Tuple[SegmentSummary, int]]:
    """Parse and validate the partial segment at (seg, offset).

    Returns ``None`` (treat as end of log) for every data-dependent
    failure: bad magic, checksum mismatch, torn summary, sequence break,
    or an unreadable sector under the summary itself.
    """
    bs = fs.config.block_size
    bps = fs.config.blocks_per_segment
    if bps - offset < 2:
        return None
    first_block = fs.layout.segment_first_block(seg) + offset
    spb = fs.config.sectors_per_block
    try:
        head = fs.disk.read(first_block * spb, spb, label="roll-forward probe")
    except MediaError:
        report.media_errors += 1
        return None
    try:
        nsummary = SegmentSummary.peek_summary_blocks(head, bs)
    except CorruptionError:
        return None
    if offset + nsummary > bps:
        return None
    if nsummary > 1:
        try:
            rest = fs.disk.read(
                (first_block + 1) * spb,
                (nsummary - 1) * spb,
                label="roll-forward summary",
            )
        except MediaError:
            report.media_errors += 1
            return None
        # join() accepts the memoryviews the zero-copy read path returns;
        # ``+`` would not.
        head = b"".join((head, rest))
    try:
        summary = SegmentSummary.unpack(head, bs)
    except CorruptionError:
        return None
    if summary.seq != expected_seq:
        return None  # stale summary from the segment's previous life
    if summary.timestamp < min_timestamp:
        return None
    if offset + nsummary + summary.nblocks > bps:
        return None
    return summary, nsummary


def _apply_partial(
    fs: "LogStructuredFS",
    seg: int,
    offset: int,
    nsummary: int,
    summary: SegmentSummary,
    report: RollForwardReport,
) -> None:
    bs = fs.config.block_size
    spb = fs.config.sectors_per_block
    first_content = fs.layout.segment_first_block(seg) + offset + nsummary
    if summary.nblocks:
        raw = fs.disk.read(
            first_content * spb,
            summary.nblocks * spb,
            label=f"roll-forward seq {summary.seq}",
        )
    else:
        raw = b""
    for position, entry in enumerate(summary.entries):
        addr = first_content + position
        payload = raw[position * bs : (position + 1) * bs]
        try:
            if entry.kind is BlockKind.IMAP:
                if entry.index < fs.imap.num_blocks:
                    fs.imap.load_block(entry.index, payload)
                    fs.imap.block_addrs[entry.index] = addr
                    fs.imap.mark_block_dirty(entry.index)
                    report.imap_blocks_applied += 1
            elif entry.kind is BlockKind.SEGUSAGE:
                if entry.index < fs.usage.num_blocks:
                    fs.usage.load_block(entry.index, payload)
                    fs.usage.block_addrs[entry.index] = addr
                    report.usage_blocks_applied += 1
        except CorruptionError:
            # Silent corruption inside the payload (the summary CRC does
            # not cover content blocks).  The checkpointed copy of this
            # metadata block stays in effect; keep replaying the rest.
            report.corrupt_entries_skipped += 1
            continue
        # DATA / INDIRECT / DINDIRECT / INODE blocks need no replay: the
        # imap blocks logged in the same flush point at them already.
        report.blocks_recovered += 1
    # Re-estimate liveness for the recovered region (hint only, §4.3.4).
    fs.usage.note_write_hint(seg, summary.nblocks * bs, fs.clock.now())
