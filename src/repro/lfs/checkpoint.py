"""Checkpoint regions (§4.4.1).

A checkpoint captures the dynamic file system state — the log tail
position and the current addresses of every inode-map and segment-usage
block — at an instant when everything those addresses point at is safely
on disk.  Two fixed regions alternate so that a crash *during* a
checkpoint write leaves the previous checkpoint intact; the timestamp
picks the most recent valid region at mount time.

The checkpoint write is the only synchronous write LFS ever performs,
and it happens once per checkpoint interval (30 s), not per operation —
the contrast with the FFS baseline's per-create synchronous writes is
the point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.serialization import (
    BatchPacker,
    Unpacker,
    segment_checksum,
    unpack_u64_array,
)
from repro.disk.sim_disk import SimDisk
from repro.errors import (
    CheckpointError,
    ChecksumMismatch,
    CorruptionError,
    MediaError,
)
from repro.lfs.config import CHECKPOINT_MAGIC, CHECKPOINT_REGION_BLOCKS, LfsLayout
from repro.lfs.segments import LogPosition
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim.clock import SimClock


@dataclass
class CheckpointData:
    """Everything a checkpoint region stores."""

    timestamp: float
    position: LogPosition
    imap_addrs: List[int] = field(default_factory=list)
    usage_addrs: List[int] = field(default_factory=list)

    def pack(self, region_bytes: int) -> bytes:
        body_size = 8 + 8 + 4 * 5 + 8 * (len(self.imap_addrs) + len(self.usage_addrs))
        if body_size + 8 > region_bytes:
            raise CorruptionError(
                f"checkpoint needs {body_size + 8} bytes, region "
                f"holds {region_bytes}"
            )
        # Serialize the whole region in one preallocated buffer: header,
        # body fields, both address arrays as single-call u64 packs, and
        # the zero padding.  The CRC covers the padded body (everything
        # after the 8-byte header) and is backfilled once the body is in
        # place, checksummed as one contiguous span — the bytearray is
        # born zeroed, so zero_to only advances the cursor.
        out = bytearray(region_bytes)
        packer = BatchPacker(out)
        packer.u32(CHECKPOINT_MAGIC)
        crc_slot = packer.skip(4)
        (
            packer.f64(self.timestamp)
            .u64(self.position.sequence)
            .u32(self.position.active_segment)
            .u32(self.position.active_offset)
            .u32(self.position.next_segment)
            .u32(len(self.imap_addrs))
            .u32(len(self.usage_addrs))
            .u64_array(self.imap_addrs)
            .u64_array(self.usage_addrs)
            .zero_to(region_bytes)
        )
        packer.patch_u32(crc_slot, segment_checksum(packer.view(8, region_bytes)))
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes) -> "CheckpointData":
        unpacker = Unpacker(data)
        magic = unpacker.u32()
        if magic != CHECKPOINT_MAGIC:
            raise CorruptionError(f"bad checkpoint magic 0x{magic:08x}")
        crc = unpacker.u32()
        if segment_checksum(data[unpacker.offset :]) != crc:
            raise ChecksumMismatch("checkpoint checksum mismatch")
        timestamp = unpacker.f64()
        sequence = unpacker.u64()
        active_segment = unpacker.u32()
        active_offset = unpacker.u32()
        next_segment = unpacker.u32()
        n_imap = unpacker.u32()
        n_usage = unpacker.u32()
        imap_addrs = list(unpack_u64_array(unpacker.raw(8 * n_imap)))
        usage_addrs = list(unpack_u64_array(unpacker.raw(8 * n_usage)))
        return cls(
            timestamp=timestamp,
            position=LogPosition(
                active_segment=active_segment,
                active_offset=active_offset,
                next_segment=next_segment,
                sequence=sequence,
            ),
            imap_addrs=imap_addrs,
            usage_addrs=usage_addrs,
        )


class CheckpointManager:
    """Alternating writes to the two fixed checkpoint regions."""

    def __init__(
        self,
        layout: LfsLayout,
        disk: SimDisk,
        clock: SimClock,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.layout = layout
        self.disk = disk
        self.clock = clock
        self._next_region = 0
        self.checkpoints_written = 0
        self.last_checkpoint_time: Optional[float] = None
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_written = self.telemetry.counter("checkpoint.writes")
        self._m_rejects = self.telemetry.counter("checkpoint.region_rejects")
        self.last_load_rejects = 0
        """Regions rejected by the most recent load_latest() call.

        Non-zero after a successful load means the mount survived on the
        alternate (older) region — a detected-and-corrected fault."""

    @property
    def region_bytes(self) -> int:
        return CHECKPOINT_REGION_BLOCKS * self.layout.config.block_size

    def _region_sector(self, region: int) -> int:
        addr = self.layout.checkpoint_addrs[region]
        return addr * self.layout.config.sectors_per_block

    def write(self, data: CheckpointData) -> None:
        """Synchronously write a checkpoint to the next region."""
        packed = data.pack(self.region_bytes)
        with self.telemetry.span(
            "checkpoint.write", region=self._next_region, bytes=len(packed)
        ):
            self.disk.write(
                self._region_sector(self._next_region),
                packed,
                sync=True,
                label=f"checkpoint region {self._next_region}",
            )
        self._next_region = 1 - self._next_region
        self.checkpoints_written += 1
        self._m_written.inc()
        self.last_checkpoint_time = data.timestamp

    def load_latest(self) -> Tuple[CheckpointData, int]:
        """Read both regions; return (newest valid checkpoint, its region).

        A region that cannot be read (``MediaError``) or fails any
        validation while unpacking (bad magic, checksum mismatch,
        truncation) is rejected individually; the mount proceeds on the
        other region, falling back to the older checkpoint.  Only when
        both regions are unusable does the mount fail, with a typed
        :class:`CheckpointError`.
        """
        candidates: List[Tuple[CheckpointData, int]] = []
        rejects: List[str] = []
        sectors = CHECKPOINT_REGION_BLOCKS * self.layout.config.sectors_per_block
        for region in (0, 1):
            try:
                raw = self.disk.read(
                    self._region_sector(region),
                    sectors,
                    label=f"checkpoint region {region}",
                )
                candidates.append((CheckpointData.unpack(raw), region))
            except (CorruptionError, MediaError) as exc:
                rejects.append(f"region {region}: {exc}")
                continue
        self.last_load_rejects = len(rejects)
        self._m_rejects.inc(len(rejects))
        if not candidates:
            raise CheckpointError(
                "no valid checkpoint region found (" + "; ".join(rejects) + ")"
            )
        best, region = max(candidates, key=lambda pair: pair[0].timestamp)
        self._next_region = 1 - region
        self.last_checkpoint_time = best.timestamp
        return best, region
