"""Segment summary blocks (§4.3.1).

Every partial segment written to the log starts with a summary that
identifies, for each block that follows, the owning file and the block's
position within it — the information the cleaner needs to decide
liveness (§4.3.3) and recovery needs to roll the log forward (§4.4).
The header also carries a monotonically increasing log sequence number,
a timestamp, and the address of the *next* segment in the log (chosen
when the current segment was opened), which is how the segmented log is
"linked together" for roll-forward.

A stale summary left over from a segment's previous life is rejected by
three independent guards: the magic number, the CRC over the summary,
and the sequence number, which must exactly continue the log being
scanned.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.common.inode import BlockKind, NIL
from repro.common.serialization import U32, BatchPacker, checksum_chain
from repro.errors import ChecksumMismatch, CorruptionError, TornWriteError
from repro.lfs.config import SUMMARY_MAGIC

_HEADER_SIZE = 4 + 8 + 8 + 8 + 4 + 2 + 4  # through the checksum field
_ENTRY_BASE_SIZE = 1 + 4 + 8 + 4 + 2

# Precompiled layouts (summaries are packed on every flush and unpacked
# on every cleaning pass and roll-forward, so this is a hot path).  The
# CRC field sits between the header prefix and the entry bytes; it
# covers prefix + entries, exactly as serialized.
_HEADER_PREFIX = struct.Struct("<IQdQIH")  # magic seq ts next nentries nsummary
_ENTRY_HEAD = struct.Struct("<BIQIH")  # kind inum index version ninums
_CRC_OFFSET = _HEADER_PREFIX.size
assert _CRC_OFFSET + U32.size == _HEADER_SIZE
assert _ENTRY_HEAD.size == _ENTRY_BASE_SIZE


@dataclass(frozen=True)
class SummaryEntry:
    """Describes one content block of a partial segment."""

    kind: BlockKind
    inum: int
    index: int
    version: int = 0
    inums: Tuple[int, ...] = ()
    """For INODE blocks: the inode numbers packed into the block."""

    def packed_size(self) -> int:
        return _ENTRY_BASE_SIZE + 4 * len(self.inums)

    def pack(self) -> bytes:
        head = _ENTRY_HEAD.pack(
            int(self.kind), self.inum, self.index, self.version, len(self.inums)
        )
        if not self.inums:
            return head
        return head + struct.pack(f"<{len(self.inums)}I", *self.inums)

    def pack_into(self, packer: BatchPacker) -> None:
        """Append this entry to a batch serialization in place."""
        packer.pack_with(
            _ENTRY_HEAD,
            int(self.kind),
            self.inum,
            self.index,
            self.version,
            len(self.inums),
        )
        packer.u32_array(self.inums)

    @classmethod
    def unpack_from(cls, data: bytes, offset: int) -> "Tuple[SummaryEntry, int]":
        """Parse one entry at ``offset``; returns (entry, next offset)."""
        try:
            raw_kind, inum, index, version, count = _ENTRY_HEAD.unpack_from(
                data, offset
            )
        except struct.error as exc:
            raise CorruptionError(f"truncated summary entry: {exc}") from exc
        try:
            kind = BlockKind(raw_kind)
        except ValueError as exc:
            raise CorruptionError(f"bad summary block kind {raw_kind}") from exc
        offset += _ENTRY_HEAD.size
        if count:
            try:
                inums = struct.unpack_from(f"<{count}I", data, offset)
            except struct.error as exc:
                raise CorruptionError(f"truncated summary entry: {exc}") from exc
            offset += 4 * count
        else:
            inums = ()
        entry = cls(
            kind=kind, inum=inum, index=index, version=version, inums=inums
        )
        return entry, offset


@dataclass
class SegmentSummary:
    """Header + entries for one partial segment."""

    seq: int
    timestamp: float
    next_segment_block: int = NIL
    entries: List[SummaryEntry] = field(default_factory=list)

    @property
    def nblocks(self) -> int:
        """Content blocks that follow the summary."""
        return len(self.entries)

    @staticmethod
    def blocks_needed(entries_size: int, block_size: int) -> int:
        total = _HEADER_SIZE + entries_size
        return (total + block_size - 1) // block_size

    def summary_blocks(self, block_size: int) -> int:
        return self.blocks_needed(
            sum(entry.packed_size() for entry in self.entries), block_size
        )

    def pack(self, block_size: int) -> bytes:
        nsummary = self.summary_blocks(block_size)
        out = bytearray(nsummary * block_size)
        self.pack_into(out, 0, block_size)
        return bytes(out)

    def pack_into(
        self,
        buffer: Union[bytearray, memoryview],
        offset: int,
        block_size: int,
    ) -> int:
        """Serialize directly into ``buffer`` at ``offset``.

        The segment writer hands this a window of its pooled segment
        buffer, so the whole summary — header, CRC, entries, padding —
        is produced with ``pack_into`` calls and never exists as an
        intermediate ``bytes`` object.  Returns the padded size
        (``nsummary * block_size``).
        """
        nsummary = self.summary_blocks(block_size)
        padded_size = nsummary * block_size
        packer = BatchPacker(buffer, offset, limit=offset + padded_size)
        packer.pack_with(
            _HEADER_PREFIX,
            SUMMARY_MAGIC,
            self.seq,
            self.timestamp,
            self.next_segment_block,
            len(self.entries),
            nsummary,
        )
        crc_slot = packer.skip(U32.size)
        for entry in self.entries:
            entry.pack_into(packer)
        end = packer.offset
        # The CRC covers prefix + entries, exactly as serialized; chain
        # over the two spans around the CRC slot without copying them.
        crc = checksum_chain(
            (
                packer.view(offset, offset + _CRC_OFFSET),
                packer.view(offset + _HEADER_SIZE, end),
            )
        )
        packer.patch_u32(crc_slot, crc)
        packer.zero_to(offset + padded_size)
        return padded_size

    @classmethod
    def unpack(cls, data: bytes, block_size: int) -> "SegmentSummary":
        """Parse and validate a summary starting at ``data[0]``.

        ``data`` must include at least the first block; if the summary
        spans several blocks the caller must supply them all (the header
        says how many — use :meth:`peek_summary_blocks` first).
        """
        if len(data) < _HEADER_SIZE:
            raise CorruptionError(
                f"truncated summary header: {len(data)} bytes"
            )
        (
            magic,
            seq,
            timestamp,
            next_segment_block,
            nentries,
            nsummary,
        ) = _HEADER_PREFIX.unpack_from(data)
        if magic != SUMMARY_MAGIC:
            raise CorruptionError(f"bad summary magic 0x{magic:08x}")
        (crc,) = U32.unpack_from(data, _CRC_OFFSET)
        if nsummary * block_size > len(data):
            # A valid first block claiming more blocks than survived is
            # the signature of a tear at the end of the log.
            raise TornWriteError(
                f"summary claims {nsummary} blocks, only "
                f"{len(data) // block_size} supplied"
            )
        entries: List[SummaryEntry] = []
        offset = _HEADER_SIZE
        for _ in range(nentries):
            entry, offset = SummaryEntry.unpack_from(data, offset)
            entries.append(entry)
        # Every field decodes bijectively, so checksumming the raw bytes
        # we just parsed is equivalent to re-packing them (and much
        # cheaper — the cleaner unpacks a summary per partial segment).
        # Chained crc32 avoids concatenating the two spans, which also
        # keeps this working when ``data`` is a zero-copy memoryview.
        computed = checksum_chain(
            (data[:_CRC_OFFSET], data[_HEADER_SIZE:offset])
        )
        if computed != crc:
            raise ChecksumMismatch(f"summary checksum mismatch at seq {seq}")
        return cls(
            seq=seq,
            timestamp=timestamp,
            next_segment_block=next_segment_block,
            entries=entries,
        )

    @staticmethod
    def peek_summary_blocks(first_block: bytes, block_size: int) -> int:
        """How many blocks this summary spans, validating magic only."""
        try:
            magic, _, _, _, _, nsummary = _HEADER_PREFIX.unpack_from(first_block)
        except struct.error as exc:
            raise CorruptionError(f"truncated summary header: {exc}") from exc
        if magic != SUMMARY_MAGIC:
            raise CorruptionError(f"bad summary magic 0x{magic:08x}")
        if nsummary == 0:
            raise CorruptionError("summary claims zero blocks")
        return nsummary
