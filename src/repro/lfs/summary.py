"""Segment summary blocks (§4.3.1).

Every partial segment written to the log starts with a summary that
identifies, for each block that follows, the owning file and the block's
position within it — the information the cleaner needs to decide
liveness (§4.3.3) and recovery needs to roll the log forward (§4.4).
The header also carries a monotonically increasing log sequence number,
a timestamp, and the address of the *next* segment in the log (chosen
when the current segment was opened), which is how the segmented log is
"linked together" for roll-forward.

A stale summary left over from a segment's previous life is rejected by
three independent guards: the magic number, the CRC over the summary,
and the sequence number, which must exactly continue the log being
scanned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.inode import BlockKind, NIL
from repro.common.serialization import Packer, Unpacker, checksum
from repro.errors import CorruptionError
from repro.lfs.config import SUMMARY_MAGIC

_HEADER_SIZE = 4 + 8 + 8 + 8 + 4 + 2 + 4  # through the checksum field
_ENTRY_BASE_SIZE = 1 + 4 + 8 + 4 + 2


@dataclass(frozen=True)
class SummaryEntry:
    """Describes one content block of a partial segment."""

    kind: BlockKind
    inum: int
    index: int
    version: int = 0
    inums: Tuple[int, ...] = ()
    """For INODE blocks: the inode numbers packed into the block."""

    def packed_size(self) -> int:
        return _ENTRY_BASE_SIZE + 4 * len(self.inums)

    def pack_into(self, packer: Packer) -> None:
        packer.u8(int(self.kind))
        packer.u32(self.inum)
        packer.u64(self.index)
        packer.u32(self.version)
        packer.u16(len(self.inums))
        for inum in self.inums:
            packer.u32(inum)

    @classmethod
    def unpack_from(cls, unpacker: Unpacker) -> "SummaryEntry":
        raw_kind = unpacker.u8()
        try:
            kind = BlockKind(raw_kind)
        except ValueError as exc:
            raise CorruptionError(f"bad summary block kind {raw_kind}") from exc
        inum = unpacker.u32()
        index = unpacker.u64()
        version = unpacker.u32()
        count = unpacker.u16()
        inums = tuple(unpacker.u32() for _ in range(count))
        return cls(
            kind=kind, inum=inum, index=index, version=version, inums=inums
        )


@dataclass
class SegmentSummary:
    """Header + entries for one partial segment."""

    seq: int
    timestamp: float
    next_segment_block: int = NIL
    entries: List[SummaryEntry] = field(default_factory=list)

    @property
    def nblocks(self) -> int:
        """Content blocks that follow the summary."""
        return len(self.entries)

    @staticmethod
    def blocks_needed(entries_size: int, block_size: int) -> int:
        total = _HEADER_SIZE + entries_size
        return (total + block_size - 1) // block_size

    def summary_blocks(self, block_size: int) -> int:
        return self.blocks_needed(
            sum(entry.packed_size() for entry in self.entries), block_size
        )

    def pack(self, block_size: int) -> bytes:
        nsummary = self.summary_blocks(block_size)
        body = Packer()
        for entry in self.entries:
            entry.pack_into(body)
        body_bytes = body.bytes()
        header = (
            Packer()
            .u32(SUMMARY_MAGIC)
            .u64(self.seq)
            .f64(self.timestamp)
            .u64(self.next_segment_block)
            .u32(len(self.entries))
            .u16(nsummary)
        )
        crc = checksum(header.bytes() + body_bytes)
        header.u32(crc)
        data = header.bytes() + body_bytes
        padded_size = nsummary * block_size
        if len(data) > padded_size:
            raise AssertionError(
                f"summary packs to {len(data)} bytes > {padded_size}"
            )
        return data + b"\x00" * (padded_size - len(data))

    @classmethod
    def unpack(cls, data: bytes, block_size: int) -> "SegmentSummary":
        """Parse and validate a summary starting at ``data[0]``.

        ``data`` must include at least the first block; if the summary
        spans several blocks the caller must supply them all (the header
        says how many — use :meth:`peek_summary_blocks` first).
        """
        unpacker = Unpacker(data)
        magic = unpacker.u32()
        if magic != SUMMARY_MAGIC:
            raise CorruptionError(f"bad summary magic 0x{magic:08x}")
        seq = unpacker.u64()
        timestamp = unpacker.f64()
        next_segment_block = unpacker.u64()
        nentries = unpacker.u32()
        nsummary = unpacker.u16()
        crc = unpacker.u32()
        if nsummary * block_size > len(data):
            raise CorruptionError(
                f"summary claims {nsummary} blocks, only "
                f"{len(data) // block_size} supplied"
            )
        entries = [SummaryEntry.unpack_from(unpacker) for _ in range(nentries)]
        verify = (
            Packer()
            .u32(magic)
            .u64(seq)
            .f64(timestamp)
            .u64(next_segment_block)
            .u32(nentries)
            .u16(nsummary)
        )
        body = Packer()
        for entry in entries:
            entry.pack_into(body)
        if checksum(verify.bytes() + body.bytes()) != crc:
            raise CorruptionError(f"summary checksum mismatch at seq {seq}")
        return cls(
            seq=seq,
            timestamp=timestamp,
            next_segment_block=next_segment_block,
            entries=entries,
        )

    @staticmethod
    def peek_summary_blocks(first_block: bytes, block_size: int) -> int:
        """How many blocks this summary spans, validating magic only."""
        unpacker = Unpacker(first_block)
        magic = unpacker.u32()
        if magic != SUMMARY_MAGIC:
            raise CorruptionError(f"bad summary magic 0x{magic:08x}")
        unpacker.u64()  # seq
        unpacker.f64()  # timestamp
        unpacker.u64()  # next segment
        unpacker.u32()  # entry count
        nsummary = unpacker.u16()
        if nsummary == 0:
            raise CorruptionError("summary claims zero blocks")
        return nsummary
