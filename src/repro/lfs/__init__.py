"""LFS — the log-structured storage manager (the paper's contribution).

The public entry points are :func:`repro.lfs.filesystem.make_lfs` (format
a fresh file system) and :meth:`repro.lfs.filesystem.LogStructuredFS.mount`
(attach an existing one, recovering from a crash if needed).
"""

from repro.lfs.config import LfsConfig, LfsLayout
from repro.lfs.cleaner import CleanerPolicy, CleanerStats, SegmentCleaner
from repro.lfs.filesystem import LogStructuredFS, make_lfs
from repro.lfs.inode_map import ImapEntry, InodeMap
from repro.lfs.segment_usage import SegmentState, SegmentUsage
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.lfs.verify import VerifyReport, verify_lfs

__all__ = [
    "LfsConfig",
    "LfsLayout",
    "LogStructuredFS",
    "make_lfs",
    "InodeMap",
    "ImapEntry",
    "SegmentUsage",
    "SegmentState",
    "SegmentCleaner",
    "CleanerPolicy",
    "CleanerStats",
    "SegmentSummary",
    "SummaryEntry",
    "verify_lfs",
    "VerifyReport",
]
