"""The inode map (§4.2.1).

LFS inodes float: every flush writes modified inodes to a new place in
the log, so the file system needs a level of indirection from inode
number to the inode's current disk location.  That is the inode map.  An
entry also carries:

* the **version number**, incremented whenever the file is truncated to
  length zero or deleted — the cleaner's fast liveness check (§4.3.3);
* the file's **access time**, kept here rather than in the inode so that
  reading a file does not force its inode to move (paper footnote 2);
* the slot of the inode within its packed inode block.

The map is partitioned into blocks that are themselves written to the
log; the checkpoint region records their addresses.  Per §4.2.1 the
blocks mapping active files are expected to stay memory resident, so
this implementation keeps the whole map in memory (for the paper-scale
32 K inodes that is under a megabyte) and tracks per-block dirtiness for
the segment writer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Set

from repro.common.inode import NIL
from repro.errors import CorruptionError, NoInodesError
from repro.vfs.base import ROOT_INUM

IMAP_ENTRY_SIZE = 24
"""Packed bytes per inode-map entry."""

# Fixed layout: u64 inode_addr, u8 slot, u8 allocated, u32 version,
# f64 atime, 2 pad bytes.  Precompiled: imap blocks are packed on every
# flush and unpacked on every demand load / roll-forward replay.
_ENTRY_PACK = struct.Struct("<QBBId2x")
_ENTRY_UNPACK = struct.Struct("<QBBId")


@dataclass
class ImapEntry:
    """Where one inode lives, plus version/atime bookkeeping."""

    inode_addr: int = NIL
    """Disk block holding the inode (NIL: free, or dirty-in-memory only)."""
    slot: int = 0
    """Index of the inode within its packed inode block."""
    version: int = 0
    atime: float = 0.0
    allocated: bool = False

    def pack(self) -> bytes:
        return _ENTRY_PACK.pack(
            self.inode_addr,
            self.slot,
            1 if self.allocated else 0,
            self.version,
            self.atime,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ImapEntry":
        try:
            inode_addr, slot, allocated, version, atime = _ENTRY_UNPACK.unpack_from(
                data
            )
        except struct.error as exc:
            raise CorruptionError(f"truncated imap entry: {exc}") from exc
        return cls(
            inode_addr=inode_addr,
            slot=slot,
            version=version,
            atime=atime,
            allocated=allocated != 0,
        )


class InodeMap:
    """In-memory inode map with per-block dirty tracking."""

    def __init__(self, max_inodes: int, block_size: int) -> None:
        self.max_inodes = max_inodes
        self.block_size = block_size
        self.entries_per_block = block_size // IMAP_ENTRY_SIZE
        self.num_blocks = (
            max_inodes + self.entries_per_block - 1
        ) // self.entries_per_block
        self._entries: List[ImapEntry] = [ImapEntry() for _ in range(max_inodes)]
        self._dirty_blocks: Set[int] = set()
        self.block_addrs: List[int] = [NIL] * self.num_blocks
        """Current log address of each imap block (NIL: never written)."""
        self._alloc_hint = ROOT_INUM
        # Demand loading (§4.2.1: imap blocks are "cached like regular
        # files"): after attach(), a block is only read from the log
        # when an entry in it is first touched.  A freshly built map is
        # fully "loaded" (everything free).
        self._loaded: List[bool] = [True] * self.num_blocks
        self._fetch: Optional[Callable[[int], bytes]] = None
        self.demand_loads = 0

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------

    def _check_inum(self, inum: int) -> None:
        # Inode 0 is reserved so that inum 0 never appears in directories.
        if not 0 < inum < self.max_inodes:
            raise CorruptionError(f"inode number {inum} out of range")

    def block_of(self, inum: int) -> int:
        self._check_inum(inum)
        return inum // self.entries_per_block

    def _load_entries(self, index: int, data: bytes) -> None:
        """Replace the entries of block ``index`` from packed bytes."""
        first = index * self.entries_per_block
        last = min(first + self.entries_per_block, self.max_inodes)
        count = last - first
        if len(data) < count * IMAP_ENTRY_SIZE:
            raise CorruptionError(
                f"imap block {index} holds {len(data)} bytes, "
                f"need {count * IMAP_ENTRY_SIZE}"
            )
        view = memoryview(data)[: count * IMAP_ENTRY_SIZE]
        entries = self._entries
        for inum, (addr, slot, allocated, version, atime) in zip(
            range(first, last), _ENTRY_PACK.iter_unpack(view)
        ):
            entries[inum] = ImapEntry(
                inode_addr=addr,
                slot=slot,
                version=version,
                atime=atime,
                allocated=allocated != 0,
            )

    def _ensure_loaded(self, index: int) -> None:
        if self._loaded[index]:
            return
        addr = self.block_addrs[index]
        if addr != NIL:
            if self._fetch is None:
                raise CorruptionError(
                    f"imap block {index} not loaded and no fetch callback"
                )
            self._load_entries(index, self._fetch(addr))
            self.demand_loads += 1
        self._loaded[index] = True

    def get(self, inum: int) -> ImapEntry:
        self._check_inum(inum)
        self._ensure_loaded(inum // self.entries_per_block)
        return self._entries[inum]

    def _touch(self, inum: int) -> None:
        self._dirty_blocks.add(self.block_of(inum))

    def set_location(self, inum: int, inode_addr: int, slot: int) -> int:
        """Record a freshly written inode; returns the previous address."""
        entry = self.get(inum)
        if not entry.allocated:
            raise CorruptionError(
                f"inode {inum} written to the log but not allocated"
            )
        previous = entry.inode_addr
        entry.inode_addr = inode_addr
        entry.slot = slot
        self._touch(inum)
        return previous

    def set_atime(self, inum: int, atime: float) -> None:
        entry = self.get(inum)
        entry.atime = atime
        self._touch(inum)

    def bump_version(self, inum: int) -> None:
        """Truncation-to-zero: all previously logged blocks become dead."""
        entry = self.get(inum)
        entry.version += 1
        self._touch(inum)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, now: float) -> int:
        """Allocate a free inode number (lowest-first from a rotating hint)."""
        for candidate in self._scan_from_hint():
            entry = self.get(candidate)
            if not entry.allocated:
                entry.allocated = True
                entry.inode_addr = NIL
                entry.slot = 0
                entry.atime = now
                self._alloc_hint = candidate + 1
                self._touch(candidate)
                return candidate
        raise NoInodesError(f"all {self.max_inodes} inodes are allocated")

    def _scan_from_hint(self) -> Iterator[int]:
        start = self._alloc_hint if ROOT_INUM <= self._alloc_hint < self.max_inodes else ROOT_INUM
        yield from range(start, self.max_inodes)
        yield from range(ROOT_INUM, start)

    def force_allocate(self, inum: int, now: float) -> None:
        """Allocate a specific inode number (mkfs uses this for the root)."""
        entry = self.get(inum)
        if entry.allocated:
            raise CorruptionError(f"inode {inum} is already allocated")
        entry.allocated = True
        entry.inode_addr = NIL
        entry.slot = 0
        entry.atime = now
        self._touch(inum)

    def free(self, inum: int) -> int:
        """Free an inode; returns its previous disk address (may be NIL).

        The version bump makes every logged block of the file fail the
        cleaner's summary-entry check (§4.3.3 step 1).
        """
        entry = self.get(inum)
        if not entry.allocated:
            raise CorruptionError(f"double free of inode {inum}")
        previous = entry.inode_addr
        entry.allocated = False
        entry.inode_addr = NIL
        entry.slot = 0
        entry.version += 1
        self._alloc_hint = min(self._alloc_hint, inum)
        self._touch(inum)
        return previous

    def allocated_count(self) -> int:
        for index in range(self.num_blocks):
            self._ensure_loaded(index)
        return sum(1 for entry in self._entries if entry.allocated)

    def allocated_inums(self) -> List[int]:
        for index in range(self.num_blocks):
            self._ensure_loaded(index)
        return [
            inum for inum, entry in enumerate(self._entries) if entry.allocated
        ]

    # ------------------------------------------------------------------
    # Block (de)serialization for the segment writer / mount path
    # ------------------------------------------------------------------

    def dirty_block_indexes(self) -> List[int]:
        return sorted(self._dirty_blocks)

    def mark_block_dirty(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"imap block index {index} out of range")
        self._dirty_blocks.add(index)

    def mark_block_clean(self, index: int) -> None:
        self._dirty_blocks.discard(index)

    def has_dirty_blocks(self) -> bool:
        return bool(self._dirty_blocks)

    def pack_block(self, index: int) -> bytes:
        out = bytearray(self.block_size)
        self.pack_block_into(index, out)
        return bytes(out)

    def pack_block_into(self, index: int, out) -> None:
        """Serialize block ``index`` into ``out`` (block_size bytes).

        The zero-copy path the segment writer uses: entries land via
        ``pack_into`` and the tail is explicitly zeroed (``out`` is a
        reused pooled buffer, so stale bytes must be overwritten).
        """
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"imap block index {index} out of range")
        self._ensure_loaded(index)
        first = index * self.entries_per_block
        last = min(first + self.entries_per_block, self.max_inodes)
        pack_into = _ENTRY_PACK.pack_into
        entries = self._entries
        for position, inum in enumerate(range(first, last)):
            entry = entries[inum]
            pack_into(
                out,
                position * IMAP_ENTRY_SIZE,
                entry.inode_addr,
                entry.slot,
                1 if entry.allocated else 0,
                entry.version,
                entry.atime,
            )
        used = (last - first) * IMAP_ENTRY_SIZE
        if used < len(out):
            out[used:] = bytes(len(out) - used)  # alloc-ok: tail pad

    def load_block(self, index: int, data: bytes) -> None:
        if not 0 <= index < self.num_blocks:
            raise CorruptionError(f"imap block index {index} out of range")
        self._load_entries(index, data)
        self._dirty_blocks.discard(index)
        self._loaded[index] = True

    def attach(
        self, addrs: List[int], fetch: Callable[[int], bytes]
    ) -> None:
        """Adopt checkpointed block addresses; blocks load on demand.

        This is what makes LFS mount/recovery time independent of the
        file count: nothing in the map is read until a file is touched.
        """
        if len(addrs) != self.num_blocks:
            raise CorruptionError(
                f"checkpoint lists {len(addrs)} imap blocks, layout has "
                f"{self.num_blocks}"
            )
        self.block_addrs = list(addrs)
        self._fetch = fetch
        self._loaded = [False] * self.num_blocks
        self._entries = [ImapEntry() for _ in range(self.max_inodes)]
        self._dirty_blocks.clear()
        self._alloc_hint = ROOT_INUM

    def load_all(
        self, addrs: List[int], read_block: Callable[[int], bytes]
    ) -> None:
        """Rebuild the whole map eagerly (tests and tools)."""
        self.attach(addrs, read_block)
        for index in range(self.num_blocks):
            self._ensure_loaded(index)

    def find_alloc_hint(self) -> Optional[int]:
        return self._alloc_hint
