"""Segment allocation and the segment writer (§4.1, §4.3).

The log is a chain of fixed-size segments.  The writer packs planned
blocks into *partial segments* — a summary followed by content blocks —
and pushes each partial segment to disk as **one large sequential,
asynchronous transfer**, which is the entire performance story of the
paper's Figure 2.  Partial segments arise when a flush does not fill the
current segment (§4.3.5 notes this is the system running below capacity,
not a problem).

Segment selection pre-picks the *next* segment when the current one is
opened so that every summary can record where the log continues; that
forward link is what crash recovery follows when rolling forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.disk.sim_disk import SimDisk
from repro.errors import CleanerError, NoSpaceError
from repro.lfs.config import LfsLayout
from repro.lfs.segment_usage import SegmentUsage
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.sim.clock import SimClock


@dataclass
class PlannedBlock:
    """One block headed for the log.

    ``finalize`` is invoked with the assigned disk address before any
    payload in the same partial segment is serialized; it updates the
    referencing structure (pointer slot, inode map, ...) and the segment
    usage accounting.  ``payload`` is called afterwards, so blocks whose
    serialized form depends on later-placed blocks' addresses (inodes,
    inode-map blocks) are always written with the final values.
    """

    entry: SummaryEntry
    payload: Callable[[], bytes]
    finalize: Callable[[int], None]


@dataclass
class LogPosition:
    """Where the log tail is (persisted in the checkpoint region)."""

    active_segment: int
    active_offset: int  # blocks already used within the active segment
    next_segment: int
    sequence: int  # sequence number of the next partial segment


class SegmentManager:
    """Owns the log tail: segment selection and partial-segment writes."""

    def __init__(
        self,
        layout: LfsLayout,
        usage: SegmentUsage,
        disk: SimDisk,
        clock: SimClock,
        reserve_segments: int,
    ) -> None:
        self.layout = layout
        self.usage = usage
        self.disk = disk
        self.clock = clock
        self.reserve_segments = reserve_segments
        self.cleaner_mode = False
        self._pos: Optional[LogPosition] = None
        self.segments_written = 0
        self.partial_segments_written = 0
        self.log_bytes_written = 0
        self.cleaner_bytes_written = 0

    # ------------------------------------------------------------------
    # Log-tail state
    # ------------------------------------------------------------------

    @property
    def position(self) -> LogPosition:
        if self._pos is None:
            raise CleanerError("segment manager has no open log")
        return self._pos

    def start_fresh(self) -> None:
        """Open a brand-new log (mkfs): claim the first two clean segments."""
        active = self._pop_clean()
        nxt = self._pop_clean()
        self._pos = LogPosition(
            active_segment=active, active_offset=0, next_segment=nxt, sequence=1
        )

    def restore(self, position: LogPosition) -> None:
        """Adopt a log position read from a checkpoint."""
        self._pos = LogPosition(
            active_segment=position.active_segment,
            active_offset=position.active_offset,
            next_segment=position.next_segment,
            sequence=position.sequence,
        )

    def _pop_clean(self) -> int:
        # O(1) clean-count check plus an amortized-O(1) min-heap pop;
        # the old full clean_segments() scan made every segment advance
        # cost O(num_segments).
        nclean = self.usage.clean_count()
        if not self.cleaner_mode and nclean <= self.reserve_segments:
            raise NoSpaceError(
                f"only {nclean} clean segments left "
                f"(reserve is {self.reserve_segments}); cleaning required"
            )
        seg = self.usage.min_clean()
        if seg is None:
            raise NoSpaceError("no clean segments at all: file system full")
        self.usage.mark_active(seg)
        return seg

    def _advance_segment(self) -> None:
        pos = self.position
        self.usage.mark_dirty(pos.active_segment)
        pos.active_segment = pos.next_segment
        pos.active_offset = 0
        pos.next_segment = self._pop_clean()
        self.segments_written += 1

    def remaining_blocks(self) -> int:
        return self.layout.config.blocks_per_segment - self.position.active_offset

    def clean_segments_available(self) -> int:
        return self.usage.clean_count()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def write_plan(self, plan: List[PlannedBlock]) -> int:
        """Write every planned block to the log; returns bytes written.

        The plan is split into partial segments as dictated by the space
        remaining in the active segment.  Each partial segment goes to
        the disk as a single asynchronous request.
        """
        total_bytes = 0
        index = 0
        while index < len(plan):
            if self.remaining_blocks() < 2:
                self._advance_segment()
            chunk, nsummary = self._take_chunk(plan, index)
            if not chunk:
                # Not even one block fits next to its summary here.
                self._advance_segment()
                continue
            total_bytes += self._write_partial(chunk, nsummary)
            index += len(chunk)
        return total_bytes

    def _take_chunk(
        self, plan: List[PlannedBlock], start: int
    ) -> "tuple[List[PlannedBlock], int]":
        """Largest plan prefix from ``start`` that fits the active segment."""
        bs = self.layout.config.block_size
        remaining = self.remaining_blocks()
        chunk: List[PlannedBlock] = []
        entries_size = 0
        nsummary = 1
        for planned in plan[start:]:
            new_size = entries_size + planned.entry.packed_size()
            new_nsummary = SegmentSummary.blocks_needed(new_size, bs)
            if new_nsummary + len(chunk) + 1 > remaining:
                break
            chunk.append(planned)
            entries_size = new_size
            nsummary = new_nsummary
        return chunk, nsummary

    def _write_partial(self, chunk: List[PlannedBlock], nsummary: int) -> int:
        bs = self.layout.config.block_size
        pos = self.position
        now = self.clock.now()
        first_block = (
            self.layout.segment_first_block(pos.active_segment)
            + pos.active_offset
        )
        content_start = first_block + nsummary
        # Phase 1: hand out addresses (updates pointers, imap, usage).
        for offset, planned in enumerate(chunk):
            planned.finalize(content_start + offset)
        # Phase 2: serialize with final contents.
        summary = SegmentSummary(
            seq=pos.sequence,
            timestamp=now,
            next_segment_block=self.layout.segment_first_block(
                pos.next_segment
            ),
            entries=[planned.entry for planned in chunk],
        )
        parts = [summary.pack(bs)]
        for planned in chunk:
            payload = planned.payload()
            if len(payload) != bs:
                raise CleanerError(
                    f"planned block serialized to {len(payload)} bytes, "
                    f"expected {bs}"
                )
            parts.append(payload)
        data = b"".join(parts)
        if len(data) != (nsummary + len(chunk)) * bs:
            raise AssertionError("partial segment size mismatch")
        label = (
            f"segment:{pos.active_segment}"
            f"+{pos.active_offset} seq={pos.sequence}"
            + (" (cleaner)" if self.cleaner_mode else "")
        )
        self.disk.write(
            first_block * self.layout.config.sectors_per_block,
            data,
            sync=False,
            label=label,
        )
        pos.active_offset += nsummary + len(chunk)
        pos.sequence += 1
        self.partial_segments_written += 1
        self.log_bytes_written += len(data)
        if self.cleaner_mode:
            self.cleaner_bytes_written += len(data)
        if self.remaining_blocks() < 2:
            self._advance_segment()
        return len(data)
