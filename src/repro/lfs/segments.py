"""Segment allocation and the segment writer (§4.1, §4.3).

The log is a chain of fixed-size segments.  The writer packs planned
blocks into *partial segments* — a summary followed by content blocks —
and pushes each partial segment to disk as **one large sequential,
asynchronous transfer**, which is the entire performance story of the
paper's Figure 2.  Partial segments arise when a flush does not fill the
current segment (§4.3.5 notes this is the system running below capacity,
not a problem).

Segment selection pre-picks the *next* segment when the current one is
opened so that every summary can record where the log continues; that
forward link is what crash recovery follows when rolling forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.disk.sim_disk import SimDisk
from repro.errors import CleanerError, NoSpaceError
from repro.lfs.config import LfsLayout
from repro.lfs.segment_usage import SegmentUsage
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim.clock import SimClock


class SegmentBufferPool:
    """Reusable segment-sized ``bytearray`` buffers.

    The segment writer assembles every partial segment in one of these
    (and the cleaner stages whole-segment reads in them), so the steady
    state allocates no transfer-sized buffers at all — the same one or
    two arrays cycle forever.  Buffers come back dirty; callers always
    overwrite the prefix they use, so no zeroing happens on release.
    """

    def __init__(
        self,
        buffer_bytes: int,
        max_buffers: int = 4,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.buffer_bytes = buffer_bytes
        self.max_buffers = max_buffers
        self._free: List[bytearray] = []
        self.allocations = 0
        self.reuses = 0
        obs = telemetry or NULL_TELEMETRY
        self._obs_enabled = obs.enabled
        self._m_reuse = obs.counter("alloc.segment_pool_reuse")

    def acquire(self) -> bytearray:
        """A segment-sized buffer with arbitrary (stale) contents."""
        if self._free:
            self.reuses += 1
            if self._obs_enabled:
                self._m_reuse.inc()
            return self._free.pop()
        self.allocations += 1
        return bytearray(self.buffer_bytes)

    def release(self, buffer: bytearray) -> None:
        """Return a buffer to the pool (excess buffers are dropped)."""
        if (
            len(buffer) == self.buffer_bytes
            and len(self._free) < self.max_buffers
        ):
            self._free.append(buffer)


@dataclass
class PlannedBlock:
    """One block headed for the log.

    ``finalize`` is invoked with the assigned disk address before any
    payload in the same partial segment is serialized; it updates the
    referencing structure (pointer slot, inode map, ...) and the segment
    usage accounting.  ``payload`` is called afterwards, so blocks whose
    serialized form depends on later-placed blocks' addresses (inodes,
    inode-map blocks) are always written with the final values.

    ``write_into``, when provided, is the zero-copy alternative to
    ``payload``: it serializes the block directly into a block-sized
    slice of the segment writer's pooled buffer instead of returning a
    fresh ``bytes`` object.  ``payload`` stays as the fallback (and for
    callers, like recovery tests, that want standalone bytes).
    """

    entry: SummaryEntry
    payload: Callable[[], bytes]
    finalize: Callable[[int], None]
    write_into: Optional[Callable[[memoryview], None]] = None


@dataclass
class LogPosition:
    """Where the log tail is (persisted in the checkpoint region)."""

    active_segment: int
    active_offset: int  # blocks already used within the active segment
    next_segment: int
    sequence: int  # sequence number of the next partial segment


class SegmentManager:
    """Owns the log tail: segment selection and partial-segment writes."""

    def __init__(
        self,
        layout: LfsLayout,
        usage: SegmentUsage,
        disk: SimDisk,
        clock: SimClock,
        reserve_segments: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.layout = layout
        self.usage = usage
        self.disk = disk
        self.clock = clock
        self.reserve_segments = reserve_segments
        self.cleaner_mode = False
        self._pos: Optional[LogPosition] = None
        self.segments_written = 0
        self.partial_segments_written = 0
        self.log_bytes_written = 0
        self.cleaner_bytes_written = 0
        self.pool = SegmentBufferPool(
            layout.config.segment_size, telemetry=telemetry
        )
        # Write-amplification ledger: every byte shipped to the log,
        # with the cleaner's copy-out traffic broken out separately.
        obs = telemetry or NULL_TELEMETRY
        self._m_wamp_log = obs.counter("wamp.log_bytes")
        self._m_wamp_cleaner = obs.counter("wamp.cleaner_bytes")

    # ------------------------------------------------------------------
    # Log-tail state
    # ------------------------------------------------------------------

    @property
    def position(self) -> LogPosition:
        if self._pos is None:
            raise CleanerError("segment manager has no open log")
        return self._pos

    def start_fresh(self) -> None:
        """Open a brand-new log (mkfs): claim the first two clean segments."""
        active = self._pop_clean()
        nxt = self._pop_clean()
        self._pos = LogPosition(
            active_segment=active, active_offset=0, next_segment=nxt, sequence=1
        )

    def restore(self, position: LogPosition) -> None:
        """Adopt a log position read from a checkpoint."""
        self._pos = LogPosition(
            active_segment=position.active_segment,
            active_offset=position.active_offset,
            next_segment=position.next_segment,
            sequence=position.sequence,
        )

    def _pop_clean(self) -> int:
        # O(1) clean-count check plus an amortized-O(1) min-heap pop;
        # the old full clean_segments() scan made every segment advance
        # cost O(num_segments).
        nclean = self.usage.clean_count()
        if not self.cleaner_mode and nclean <= self.reserve_segments:
            raise NoSpaceError(
                f"only {nclean} clean segments left "
                f"(reserve is {self.reserve_segments}); cleaning required"
            )
        seg = self.usage.min_clean()
        if seg is None:
            raise NoSpaceError("no clean segments at all: file system full")
        self.usage.mark_active(seg)
        return seg

    def _advance_segment(self) -> None:
        pos = self.position
        self.usage.mark_dirty(pos.active_segment)
        pos.active_segment = pos.next_segment
        pos.active_offset = 0
        pos.next_segment = self._pop_clean()
        self.segments_written += 1

    def remaining_blocks(self) -> int:
        return self.layout.config.blocks_per_segment - self.position.active_offset

    def clean_segments_available(self) -> int:
        return self.usage.clean_count()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def write_plan(self, plan: List[PlannedBlock]) -> int:
        """Write every planned block to the log; returns bytes written.

        The plan is split into partial segments as dictated by the space
        remaining in the active segment.  Each partial segment goes to
        the disk as a single asynchronous request.
        """
        total_bytes = 0
        index = 0
        while index < len(plan):
            if self.remaining_blocks() < 2:
                self._advance_segment()
            chunk, nsummary = self._take_chunk(plan, index)
            if not chunk:
                # Not even one block fits next to its summary here.
                self._advance_segment()
                continue
            total_bytes += self._write_partial(chunk, nsummary)
            index += len(chunk)
        return total_bytes

    def _take_chunk(
        self, plan: List[PlannedBlock], start: int
    ) -> "tuple[List[PlannedBlock], int]":
        """Largest plan prefix from ``start`` that fits the active segment."""
        bs = self.layout.config.block_size
        remaining = self.remaining_blocks()
        chunk: List[PlannedBlock] = []
        entries_size = 0
        nsummary = 1
        for planned in plan[start:]:
            new_size = entries_size + planned.entry.packed_size()
            new_nsummary = SegmentSummary.blocks_needed(new_size, bs)
            if new_nsummary + len(chunk) + 1 > remaining:
                break
            chunk.append(planned)
            entries_size = new_size
            nsummary = new_nsummary
        return chunk, nsummary

    def _write_partial(self, chunk: List[PlannedBlock], nsummary: int) -> int:
        bs = self.layout.config.block_size
        pos = self.position
        now = self.clock.now()
        first_block = (
            self.layout.segment_first_block(pos.active_segment)
            + pos.active_offset
        )
        content_start = first_block + nsummary
        # Phase 1: hand out addresses (updates pointers, imap, usage).
        for offset, planned in enumerate(chunk):
            planned.finalize(content_start + offset)
        # Phase 2: serialize with final contents.
        summary = SegmentSummary(
            seq=pos.sequence,
            timestamp=now,
            next_segment_block=self.layout.segment_first_block(
                pos.next_segment
            ),
            entries=[planned.entry for planned in chunk],
        )
        # Assemble the whole partial segment in one pooled buffer: the
        # summary plus every content block lands via slice assignment /
        # pack_into, then a single asynchronous device write ships it.
        # The device copies the buffer into its image synchronously, so
        # the buffer goes straight back to the pool.
        total = (nsummary + len(chunk)) * bs
        buffer = self.pool.acquire()
        view = memoryview(buffer)
        try:
            packed = summary.pack_into(buffer, 0, bs)
            if packed != nsummary * bs:
                raise AssertionError("partial segment size mismatch")
            offset = nsummary * bs
            for planned in chunk:
                if planned.write_into is not None:
                    planned.write_into(view[offset : offset + bs])
                else:
                    payload = planned.payload()
                    if len(payload) != bs:
                        raise CleanerError(
                            f"planned block serialized to {len(payload)} "
                            f"bytes, expected {bs}"
                        )
                    view[offset : offset + bs] = payload
                offset += bs
            label = (
                f"segment:{pos.active_segment}"
                f"+{pos.active_offset} seq={pos.sequence}"
                + (" (cleaner)" if self.cleaner_mode else "")
            )
            self.disk.write(
                first_block * self.layout.config.sectors_per_block,
                view[:total],
                sync=False,
                label=label,
            )
        finally:
            view.release()
            self.pool.release(buffer)
        pos.active_offset += nsummary + len(chunk)
        pos.sequence += 1
        self.partial_segments_written += 1
        self.log_bytes_written += total
        self._m_wamp_log.inc(total)
        if self.cleaner_mode:
            self.cleaner_bytes_written += total
            self._m_wamp_cleaner.inc(total)
        if self.remaining_blocks() < 2:
            self._advance_segment()
        return total
