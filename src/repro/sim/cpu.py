"""Per-operation CPU cost model.

The paper's central scaling argument (§2, §3.1) is about the *coupling*
between CPU time and disk time: under the BSD file system a 15x faster CPU
buys almost nothing because each create/delete blocks on synchronous disk
writes, while LFS performs only CPU work on those paths and therefore
scales with the processor.

To reproduce that argument we charge simulated CPU time for each file
system operation.  The base costs below are calibrated so that, at
``speed_factor=1.0`` (a Sun-4/260-class machine, the paper's testbed), the
simulated LFS is CPU-bound on the small-file benchmark — exactly what §5.1
reports — and so that absolute files/second land in the same decade as the
paper.  The ``speed_factor`` scales all costs down linearly, modeling a
faster CPU on the same disk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.clock import SimClock
from repro.units import MICROSECOND, MILLISECOND


@dataclass(frozen=True)
class CpuCosts:
    """CPU seconds charged per operation at ``speed_factor = 1.0``."""

    syscall: float = 0.3 * MILLISECOND
    """Fixed entry/exit cost of any file system call."""

    path_component: float = 0.4 * MILLISECOND
    """Directory lookup cost per path component (namei)."""

    create: float = 2.2 * MILLISECOND
    """Inode allocation plus directory insertion for a create/mkdir."""

    remove: float = 1.4 * MILLISECOND
    """Inode free plus directory removal for an unlink/rmdir."""

    copy_per_byte: float = 0.16 * MICROSECOND
    """Cost of moving one byte between user space and the file cache."""

    block_touch: float = 0.25 * MILLISECOND
    """Per-block bookkeeping (cache lookup, pointer update) on read/write."""

    cleaner_per_block: float = 0.20 * MILLISECOND
    """Segment cleaner CPU per live block examined or copied."""

    checkpoint: float = 1.0 * MILLISECOND
    """Fixed cost of assembling a checkpoint region."""

    def scaled(self, speed_factor: float) -> "CpuCosts":
        """Return costs for a CPU ``speed_factor`` times faster."""
        if speed_factor <= 0:
            raise ValueError(f"speed factor must be positive: {speed_factor}")
        return replace(
            self,
            **{
                field: getattr(self, field) / speed_factor
                for field in (
                    "syscall",
                    "path_component",
                    "create",
                    "remove",
                    "copy_per_byte",
                    "block_touch",
                    "cleaner_per_block",
                    "checkpoint",
                )
            },
        )


class CpuModel:
    """Charges CPU time against a :class:`SimClock` and keeps totals."""

    def __init__(
        self,
        clock: SimClock,
        costs: CpuCosts | None = None,
        speed_factor: float = 1.0,
    ) -> None:
        self.clock = clock
        self.speed_factor = speed_factor
        self.costs = (costs or CpuCosts()).scaled(speed_factor)
        self.total_cpu_seconds = 0.0

    def charge(self, seconds: float) -> None:
        """Charge an arbitrary amount of CPU time."""
        if seconds < 0:
            raise ValueError(f"negative CPU charge: {seconds}")
        self.total_cpu_seconds += seconds
        self.clock.advance(seconds)

    def syscall(self) -> None:
        self.charge(self.costs.syscall)

    def path_lookup(self, n_components: int) -> None:
        self.charge(self.costs.path_component * n_components)

    def create(self) -> None:
        self.charge(self.costs.create)

    def remove(self) -> None:
        self.charge(self.costs.remove)

    def copy(self, nbytes: int) -> None:
        """Charge for copying ``nbytes`` of file data, plus block touches."""
        self.charge(self.costs.copy_per_byte * nbytes)

    def block_touch(self, nblocks: int = 1) -> None:
        self.charge(self.costs.block_touch * nblocks)

    def cleaner_blocks(self, nblocks: int) -> None:
        self.charge(self.costs.cleaner_per_block * nblocks)

    def checkpoint(self) -> None:
        self.charge(self.costs.checkpoint)

    def __repr__(self) -> str:
        return (
            f"CpuModel(speed_factor={self.speed_factor}, "
            f"total_cpu={self.total_cpu_seconds:.6f}s)"
        )
