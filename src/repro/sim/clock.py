"""The simulated clock.

Every component of the simulation (file systems, caches, disks, workloads)
shares a single :class:`SimClock`.  Time only moves when something charges
it: CPU work advances the clock directly, synchronous disk I/O advances it
to the I/O completion time, and asynchronous disk I/O does *not* advance it
(the request merely occupies the disk's busy timeline — see
:class:`repro.disk.sim_disk.SimDisk`).

This is the mechanism that lets the simulation reproduce the paper's core
claim: a file system that never waits for the disk runs at CPU speed.

Timers are a binary heap keyed by ``(expiry, insertion sequence)``.  The
sequence number makes ordering *total*: two timers with the same expiry
always fire in the order they were scheduled (FIFO).  The multi-client
service layer (:mod:`repro.service`) depends on this — its request
events are frequently scheduled for the same instant, and a run is only
reproducible if ties break deterministically.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimClock:
    """A monotonically non-decreasing virtual clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start}")
        self._now = float(start)
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance the clock backwards: {dt}")
        return self.advance_to(self._now + dt)

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (no-op if ``t`` is in the past).

        Any timers that expire at or before ``t`` fire in (expiry,
        scheduling) order while the clock sits at their expiry instant,
        so periodic activities (the 30-second checkpoint, cache age
        write-back) observe accurate times.
        """
        if t <= self._now:
            return self._now
        while self._timers and self._timers[0][0] <= t:
            expiry, _seq, callback = heapq.heappop(self._timers)
            self._now = max(self._now, expiry)
            callback()
        self._now = max(self._now, t)
        return self._now

    def call_at(self, t: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches time ``t``.

        Timers only fire while the clock is being advanced; they never
        preempt running code.  A callback scheduled in the past fires on
        the next advance.  Callbacks scheduled for the same ``t`` fire
        in FIFO order (guaranteed by the per-clock sequence number).
        """
        self._timer_seq += 1
        heapq.heappush(self._timers, (float(t), self._timer_seq, callback))

    def next_timer_at(self) -> Optional[float]:
        """Expiry of the earliest pending timer (None when idle).

        Event loops advance to this instant to fire exactly the next
        batch of timers without overshooting simulated time.
        """
        return self._timers[0][0] if self._timers else None

    def cancel_all_timers(self) -> None:
        """Drop every pending timer (used when simulating a crash)."""
        self._timers.clear()

    def pending_timers(self) -> int:
        """Number of timers waiting to fire."""
        return len(self._timers)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}, timers={len(self._timers)})"
