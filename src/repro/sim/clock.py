"""The simulated clock.

Every component of the simulation (file systems, caches, disks, workloads)
shares a single :class:`SimClock`.  Time only moves when something charges
it: CPU work advances the clock directly, synchronous disk I/O advances it
to the I/O completion time, and asynchronous disk I/O does *not* advance it
(the request merely occupies the disk's busy timeline — see
:class:`repro.disk.sim_disk.SimDisk`).

This is the mechanism that lets the simulation reproduce the paper's core
claim: a file system that never waits for the disk runs at CPU speed.

Timers are stored as one FIFO bucket (a deque) per *distinct* expiry,
with a binary heap over the unique expiries.  Two timers with the same
expiry always fire in the order they were scheduled (FIFO) — the
multi-client service layer (:mod:`repro.service`) depends on this: its
request events are frequently scheduled for the same instant, and a run
is only reproducible if ties break deterministically.

The bucket layout is also what makes dispatch *batched*: the service
scheduler routinely lands hundreds of events on one instant, and the
old ``(expiry, seq)`` heap paid an O(log n) sift per event.  Here a
whole same-timestamp batch costs a single heap pop plus O(1) deque
pops — ``timer_batches`` / ``timers_fired`` count exactly that for the
perf harness.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional


class SimClock:
    """A monotonically non-decreasing virtual clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start}")
        self._now = float(start)
        # One FIFO bucket per distinct expiry; the heap holds each
        # distinct expiry exactly once (guarded by dict membership).
        self._buckets: Dict[float, Deque[Callable[[], None]]] = {}
        self._expiry_heap: List[float] = []
        self._ntimers = 0
        self.timer_batches = 0
        """Same-timestamp batches dispatched (one heap pop each)."""
        self.timers_fired = 0
        """Individual timer callbacks fired."""

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance the clock backwards: {dt}")
        return self.advance_to(self._now + dt)

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (no-op if ``t`` is in the past).

        Any timers that expire at or before ``t`` fire in (expiry,
        scheduling) order while the clock sits at their expiry instant,
        so periodic activities (the 30-second checkpoint, cache age
        write-back) observe accurate times.  All callbacks sharing an
        expiry drain as one batch; a callback that schedules new work —
        even for the instant being drained, or earlier — is picked up
        within the same advance, exactly as with the per-timer heap.
        """
        if t <= self._now:
            return self._now
        heap = self._expiry_heap
        buckets = self._buckets
        while heap and heap[0] <= t:
            expiry = heap[0]
            bucket = buckets.get(expiry)
            if not bucket:
                # Cleared by cancel_all_timers or fully drained below.
                heapq.heappop(heap)
                if bucket is not None:
                    del buckets[expiry]
                continue
            self._now = max(self._now, expiry)
            self.timer_batches += 1
            # Drain the batch, re-checking the heap top per callback: a
            # callback may schedule an *earlier* expiry, which must
            # preempt the rest of this batch (same-instant additions
            # just append to this bucket and drain in FIFO order).
            while bucket and heap and heap[0] == expiry:
                callback = bucket.popleft()
                self._ntimers -= 1
                self.timers_fired += 1
                callback()
                if buckets.get(expiry) is not bucket:
                    # cancel_all_timers ran inside the callback; the
                    # rest of this batch is cancelled.
                    break
        self._now = max(self._now, t)
        return self._now

    def call_at(self, t: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches time ``t``.

        Timers only fire while the clock is being advanced; they never
        preempt running code.  A callback scheduled in the past fires on
        the next advance.  Callbacks scheduled for the same ``t`` fire
        in FIFO order (they share one FIFO bucket).
        """
        t = float(t)
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = deque((callback,))
            heapq.heappush(self._expiry_heap, t)
        else:
            bucket.append(callback)
        self._ntimers += 1

    def next_timer_at(self) -> Optional[float]:
        """Expiry of the earliest pending timer (None when idle).

        Event loops advance to this instant to fire exactly the next
        batch of timers without overshooting simulated time.
        """
        heap = self._expiry_heap
        buckets = self._buckets
        while heap:
            expiry = heap[0]
            if buckets.get(expiry):
                return expiry
            # Stale entry (cancel_all_timers since it was pushed).
            heapq.heappop(heap)
            buckets.pop(expiry, None)
        return None

    def cancel_all_timers(self) -> None:
        """Drop every pending timer (used when simulating a crash)."""
        self._buckets.clear()
        self._expiry_heap.clear()
        self._ntimers = 0

    def pending_timers(self) -> int:
        """Number of timers waiting to fire."""
        return self._ntimers

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}, timers={self._ntimers})"
