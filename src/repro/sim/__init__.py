"""Simulation substrate: the virtual clock and the CPU cost model."""

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuCosts, CpuModel

__all__ = ["SimClock", "CpuCosts", "CpuModel"]
