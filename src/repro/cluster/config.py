"""Cluster-layer configuration: shards, placement, planned migrations.

A :class:`ClusterConfig` describes one scale-out run: how many LFS
volumes (shards), how many global clients, which placement policy maps
client directories to shards, and any :class:`MigrationSpec` rebalances
scheduled to fire mid-run.  Like :class:`~repro.service.config.
ServiceConfig`, everything is simulated time and the whole run is a
pure function of ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import InvalidArgumentError
from repro.service.config import ServiceConfig
from repro.cluster.ring import DEFAULT_REPLICAS

PLACEMENTS = ("hash", "prefix")


@dataclass(frozen=True)
class MigrationSpec:
    """One planned rebalance: move every client of ``source`` onto
    ``target``, starting ``at`` simulated seconds after serving
    begins (setup — mkfs, prefill — consumes clock time first)."""

    source: int
    target: int
    at: float
    drain: float = 0.02
    """Seconds the frozen clients are left to park their next request
    after the in-flight drain, before the copy starts.  This window is
    what makes the ``migration_redirect`` latency component observable
    in short runs; 0 is legal (cutover as soon as quiesced)."""

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise InvalidArgumentError(
                f"migration source == target: {self.source}"
            )
        if self.at < 0 or self.drain < 0:
            raise InvalidArgumentError(
                f"migration times must be >= 0: at={self.at} "
                f"drain={self.drain}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Tunable parameters of one sharded cluster run."""

    shards: int = 4
    """Independent LFS volumes behind the router."""

    clients: int = 64
    """Global client streams, partitioned across shards by placement."""

    seed: int = 0
    """Master seed; client ``i`` derives its stream from (seed, i)
    exactly as in a single-volume run, so a client's request sequence
    does not depend on which shard serves it."""

    requests_per_client: int = 40

    placement: str = "hash"
    """``hash`` (consistent-hash ring) or ``prefix`` (round-robin
    directory-prefix table)."""

    replicas: int = DEFAULT_REPLICAS
    """Virtual ring points per shard (hash placement only)."""

    migrations: Tuple[MigrationSpec, ...] = ()

    service: ServiceConfig = field(
        default_factory=lambda: ServiceConfig()
    )
    """Per-shard service template; ``seed``, ``num_clients`` and
    ``requests_per_client`` are overridden per shard."""

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise InvalidArgumentError(
                f"need at least one shard: {self.shards}"
            )
        if self.clients < 1:
            raise InvalidArgumentError(
                f"need at least one client: {self.clients}"
            )
        if self.placement not in PLACEMENTS:
            raise InvalidArgumentError(
                f"unknown placement {self.placement!r} "
                f"(want one of {PLACEMENTS})"
            )
        seen: Dict[int, float] = {}
        for spec in self.migrations:
            for shard_id in (spec.source, spec.target):
                if not 0 <= shard_id < self.shards:
                    raise InvalidArgumentError(
                        f"migration references shard {shard_id}, but the "
                        f"cluster has shards 0..{self.shards - 1}"
                    )
                if shard_id in seen:
                    raise InvalidArgumentError(
                        f"shard {shard_id} appears in more than one "
                        f"migration; one rebalance per shard per run"
                    )
                seen[shard_id] = spec.at

    def shard_service_config(self, num_clients: int) -> ServiceConfig:
        """The per-shard service config for a shard serving
        ``num_clients`` of the global streams."""
        return replace(
            self.service,
            seed=self.seed,
            num_clients=max(1, num_clients),
            requests_per_client=self.requests_per_client,
        )


__all__ = ["ClusterConfig", "MigrationSpec", "PLACEMENTS"]
