"""The cluster simulation driver: shard groups, workers, merged results.

**Determinism rules** (DESIGN.md §10 is the contract; this module is
the implementation):

1. Shards are partitioned into **groups**: the source and target of a
   migration share one group (and therefore one :class:`~repro.sim.
   clock.SimClock`, one :class:`~repro.obs.Telemetry` and one shared
   ready queue, so the cutover barrier is a plain event ordering); every
   other shard is a singleton group with its own private clock.  Groups
   never share state, which is what makes them embarrassingly parallel.
2. Client ``i``'s request stream is derived from ``(seed, i)`` alone —
   never from its shard — so placement and migration cannot change
   *what* a client asks for, only *where* it is served.
3. Groups always run through :func:`repro.harness.parallel.run_tasks`
   and their telemetry totals are always folded with
   :func:`~repro.harness.parallel.merge_metric_samples`, in group
   order, whatever ``--jobs`` is.  ``--jobs N`` output is therefore
   byte-identical to ``--jobs 1`` — the same merge arithmetic runs on
   the same per-group results either way.

Each shard is a full LFS rig (own simulated disk, cache, cleaner).
After its group's event loop drains, the shard is checkpointed,
unmounted, hashed (SHA-256 of the device image) and verified with
:func:`repro.lfs.verify.verify_lfs`, so every cluster run ends with a
per-shard consistency proof.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.migrate import ShardMigrator
from repro.cluster.router import ShardRouter
from repro.obs import Telemetry
from repro.service.scheduler import ClientStream, RequestScheduler
from repro.service.stats import percentile
from repro.units import MIB

DEFAULT_SHARD_BYTES = 64 * MIB


def _make_shard_fs(
    total_bytes: int, clock, telemetry: Telemetry
):
    """A fresh LFS volume on ``clock`` (mirrors ``make_lfs``, which
    always builds a private clock — a migration group needs both its
    volumes on the shared one)."""
    from repro.disk.geometry import wren_iv
    from repro.disk.sim_disk import SimDisk
    from repro.lfs.config import LfsConfig
    from repro.lfs.filesystem import LogStructuredFS
    from repro.sim.cpu import CpuModel
    from repro.units import KIB

    lfs_config = LfsConfig(
        segment_size=256 * KIB,
        cache_bytes=2 * MIB,
        max_inodes=4096,
    )
    geometry = wren_iv(total_bytes)
    cpu = CpuModel(clock)
    disk = SimDisk(geometry, clock, telemetry=telemetry)
    return LogStructuredFS.mkfs(disk, cpu, lfs_config, telemetry=telemetry)


def build_groups(config: ClusterConfig) -> List[Tuple[int, ...]]:
    """Partition shard ids into deterministic groups: migration pairs
    merge, everything else stays singleton."""
    parent = list(range(config.shards))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for spec in config.migrations:
        ra, rb = find(spec.source), find(spec.target)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    groups: Dict[int, List[int]] = {}
    for shard_id in range(config.shards):
        groups.setdefault(find(shard_id), []).append(shard_id)
    return [tuple(groups[root]) for root in sorted(groups)]


def run_group(
    config: ClusterConfig,
    shard_ids: Tuple[int, ...],
    assignment: Tuple[Tuple[int, Tuple[int, ...]], ...],
    total_bytes: int = DEFAULT_SHARD_BYTES,
) -> Dict[str, Any]:
    """Run one shard group to completion (worker-process entry point).

    ``assignment`` is ``((shard_id, (client ids...)), ...)`` for the
    group's shards.  Returns a picklable result: per-shard stats, image
    hash and verify findings, the group's merged telemetry totals, and
    summaries of any migrations that ran.
    """
    from collections import deque

    from repro.harness.parallel import export_telemetry_totals
    from repro.lfs.verify import verify_lfs
    from repro.sim.clock import SimClock

    clock = SimClock()
    telemetry = Telemetry(clock=clock)
    ready: deque = deque()
    assigned = dict(assignment)
    schedulers: Dict[int, RequestScheduler] = {}
    for shard_id in shard_ids:
        client_ids = assigned[shard_id]
        service_config = config.shard_service_config(len(client_ids))
        clients = [
            ClientStream(cid, service_config) for cid in client_ids
        ]
        fs = _make_shard_fs(total_bytes, clock, telemetry)
        schedulers[shard_id] = RequestScheduler(
            fs,
            service_config,
            telemetry=telemetry,
            clients=clients,
            ready=ready,
        )
    migrators = [
        ShardMigrator(
            spec,
            schedulers[spec.source],
            schedulers[spec.target],
            telemetry=telemetry,
        )
        for spec in config.migrations
        if spec.source in schedulers
    ]
    for migrator in migrators:
        migrator.arm()
    solo = len(shard_ids) == 1
    for shard_id in shard_ids:
        schedulers[shard_id].start(open_run_span=solo)
    while ready or clock.pending_timers():
        if ready:
            ready.popleft()()
            continue
        next_at = clock.next_timer_at()
        assert next_at is not None
        clock.advance_to(next_at)
    shards: List[Dict[str, Any]] = []
    for shard_id in shard_ids:
        scheduler = schedulers[shard_id]
        stats = scheduler.finish()
        fs = scheduler.fs
        fs.checkpoint()
        fs.disk.drain()
        fs.unmount()
        image = fs.disk.device.snapshot()
        report = verify_lfs(fs.disk.device)
        shards.append(
            {
                "shard": shard_id,
                "clients": len(scheduler.clients),
                "stats": stats,
                "image_sha": hashlib.sha256(image).hexdigest(),
                "verify_errors": list(report.errors),
            }
        )
    return {
        "shards": shards,
        "telemetry": export_telemetry_totals(telemetry),
        "migrations": [migrator.summary for migrator in migrators],
    }


@dataclass
class ClusterResult:
    """Merged outcome of one cluster run."""

    config: ClusterConfig
    shards: List[Dict[str, Any]] = field(default_factory=list)
    migrations: List[Dict[str, Any]] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None

    @property
    def completed(self) -> int:
        return sum(row["stats"].completed for row in self.shards)

    @property
    def elapsed(self) -> float:
        """Cluster wall time: the slowest shard (shards run in
        parallel in real deployments; each group has its own clock)."""
        return max(
            (row["stats"].elapsed for row in self.shards), default=0.0
        )

    @property
    def throughput(self) -> float:
        return self.completed / self.elapsed if self.elapsed else 0.0

    def all_latencies(self) -> List[float]:
        merged: List[float] = []
        for row in self.shards:
            merged.extend(row["stats"].all_latencies())
        return merged

    def p99(self) -> float:
        return percentile(self.all_latencies(), 0.99)

    def p50(self) -> float:
        return percentile(self.all_latencies(), 0.50)

    @property
    def consistent(self) -> bool:
        return all(not row["verify_errors"] for row in self.shards)

    def render(self) -> str:
        """Deterministic human-readable summary (the determinism test
        pins this text byte-for-byte across ``--jobs`` values)."""
        config = self.config
        lines = [
            f"== cluster-sim: {config.shards} shards, "
            f"{config.clients} clients, seed {config.seed}, "
            f"placement {config.placement} =="
        ]
        for row in self.shards:
            stats = row["stats"]
            verdict = (
                "ok" if not row["verify_errors"]
                else f"{len(row['verify_errors'])} errors"
            )
            lines.append(
                f"  shard {row['shard']}: clients={row['clients']} "
                f"completed={stats.completed} "
                f"throughput={stats.throughput:.1f} req/s "
                f"p99={stats.p99() * 1000:.3f}ms verify={verdict}"
            )
        for summary in self.migrations:
            lines.append(
                f"  migration {summary['source']}->{summary['target']} "
                f"at t={summary['at']:.3f}: {summary['clients']} clients, "
                f"{summary['files']} files, {summary['bytes']} bytes, "
                f"{summary['redirected']} redirected, "
                f"cutover t={summary['cutover']:.6f}"
            )
        lines.append(
            f"  cluster: completed={self.completed} "
            f"elapsed={self.elapsed:.6f}s "
            f"throughput={self.throughput:.1f} req/s "
            f"p50={self.p50() * 1000:.3f}ms "
            f"p99={self.p99() * 1000:.3f}ms"
        )
        for row in self.shards:
            lines.append(
                f"  image shard{row['shard']}: {row['image_sha']}"
            )
        return "\n".join(lines)


def run_cluster(
    config: ClusterConfig,
    jobs: int = 1,
    total_bytes: int = DEFAULT_SHARD_BYTES,
) -> ClusterResult:
    """Route, run every shard group, and merge — identically for any
    ``jobs`` value."""
    from repro.harness.parallel import merge_metric_samples, run_tasks

    router = ShardRouter(config)
    assignments = router.assignments()
    groups = build_groups(config)
    tasks = [
        (
            config,
            group,
            tuple(
                (shard_id, tuple(assignments[shard_id]))
                for shard_id in group
            ),
            total_bytes,
        )
        for group in groups
    ]
    results = run_tasks(run_group, tasks, jobs=jobs)
    merged = Telemetry()
    merged.gauge("cluster.shards").set(config.shards)
    result = ClusterResult(config=config, telemetry=merged)
    for group_result in results:
        merge_metric_samples(merged, group_result["telemetry"])
        result.shards.extend(group_result["shards"])
        result.migrations.extend(group_result["migrations"])
    result.shards.sort(key=lambda row: row["shard"])
    result.migrations.sort(key=lambda summary: summary["at"])
    # Reflect completed migrations in the authoritative routing table
    # (the in-group cutover already moved the clients; this keeps the
    # router's view consistent for callers inspecting it post-run).
    for summary in result.migrations:
        moved = [
            cid
            for cid in range(config.clients)
            if router.shard_of(cid) == summary["source"]
        ]
        router.flip(moved, summary["target"])
    return result


__all__ = [
    "ClusterResult",
    "DEFAULT_SHARD_BYTES",
    "build_groups",
    "run_cluster",
    "run_group",
]
