"""``repro.cluster`` — the sharded scale-out layer.

A front-end :class:`~repro.cluster.router.ShardRouter` partitions the
namespace (one service client directory per key) across N independent
LFS volumes via a pluggable placement policy — a consistent-hash
:class:`~repro.cluster.ring.HashRing` or an explicit
:class:`~repro.cluster.ring.PrefixPlacement` table.  Each shard is a
complete single-volume rig (scheduler, admission control, group
commit, cleaner); :mod:`repro.cluster.sim` runs them as deterministic
shard groups, optionally in parallel worker processes, and
:mod:`repro.cluster.migrate` rebalances a live shard onto another
mid-run with an atomic routing cutover.

See DESIGN.md §10 for the architecture and the determinism rules.
"""

from repro.cluster.config import ClusterConfig, MigrationSpec
from repro.cluster.migrate import ShardMigrator
from repro.cluster.ring import HashRing, PrefixPlacement, stable_hash
from repro.cluster.router import ShardRouter, client_key
from repro.cluster.sim import (
    ClusterResult,
    build_groups,
    run_cluster,
    run_group,
)

__all__ = [
    "ClusterConfig",
    "ClusterResult",
    "HashRing",
    "MigrationSpec",
    "PrefixPlacement",
    "ShardMigrator",
    "ShardRouter",
    "build_groups",
    "client_key",
    "run_cluster",
    "run_group",
    "stable_hash",
]
