#!/usr/bin/env python
"""Cluster scaling sweep: shards × clients vs throughput and latency.

Extends ``BENCH_service.json`` with a ``cluster`` section: the service
scaling sweep (``repro.service.bench``) pins the single-volume curve,
and this sweep shows what sharding the namespace buys at client counts
a single volume cannot absorb (it saturates near 16 clients).  The
single-shard 64-client point is the scale-out baseline: the same
offered load on one volume.

All numbers are simulated time; each point is a pure function of the
seed, so the extended report stays diffable across commits
(``repro bench-diff``).

Usage::

    python -m repro.cluster.bench                  # full sweep -> repo root
    python -m repro.cluster.bench --smoke          # tiny sweep -> /tmp
    python -m repro.cluster.bench --points 1x64,4x64 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.sim import run_cluster

DEFAULT_POINTS: Tuple[Tuple[int, int], ...] = (
    (1, 64),
    (4, 64),
    (8, 128),
    (16, 256),
)
DEFAULT_REQUESTS = 25
SCALE_FLOOR = 3.0
"""Gate: 4 shards at the baseline's offered load must deliver at least
this multiple of the single-volume throughput."""

_REPO_ROOT = os.path.dirname(
    os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
)


def sweep_point(
    shards: int,
    clients: int,
    seed: int = 0,
    requests_per_client: int = DEFAULT_REQUESTS,
    jobs: int = 1,
) -> Dict[str, object]:
    """One sweep point: a full cluster run, flattened for the report."""
    config = ClusterConfig(
        shards=shards,
        clients=clients,
        seed=seed,
        requests_per_client=requests_per_client,
    )
    result = run_cluster(config, jobs=jobs)
    return {
        "shards": shards,
        "clients": clients,
        "completed": result.completed,
        "elapsed_seconds": round(result.elapsed, 9),
        "throughput_per_second": round(result.throughput, 6),
        "latency_p50_seconds": round(result.p50(), 9),
        "latency_p99_seconds": round(result.p99(), 9),
        "consistent": result.consistent,
    }


def run_sweep(
    points: Sequence[Tuple[int, int]] = DEFAULT_POINTS,
    seed: int = 0,
    requests_per_client: int = DEFAULT_REQUESTS,
    jobs: int = 1,
    log=None,
) -> List[Dict[str, object]]:
    """Sweep the (shards, clients) grid.

    Parallelism lives *inside* each point (shard groups fan out via
    ``run_tasks``), so the sweep itself runs points sequentially and
    the report is byte-identical for any ``jobs`` value.
    """
    rows = [
        sweep_point(
            shards,
            clients,
            seed=seed,
            requests_per_client=requests_per_client,
            jobs=jobs,
        )
        for shards, clients in points
    ]
    if log is not None:
        for row in rows:
            log(
                f"shards={row['shards']:>3} clients={row['clients']:>4}: "
                f"{row['throughput_per_second']:>8.1f} req/s, "
                f"p99 {row['latency_p99_seconds'] * 1000:>9.3f} ms"
            )
    return rows


def update_report(
    points: List[Dict[str, object]],
    output: str,
    seed: int,
    requests_per_client: int,
) -> None:
    """Merge the cluster section into the (existing) service report."""
    report: Dict[str, object] = {}
    if os.path.exists(output):
        with open(output) as handle:
            report = json.load(handle)
    report.setdefault("benchmark", "service_scaling")
    report["cluster"] = {
        "seed": seed,
        "requests_per_client": requests_per_client,
        "points": points,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def scale_gate(points: Sequence[Dict[str, object]]) -> List[str]:
    """The acceptance checks ``make cluster-bench`` enforces."""
    failures: List[str] = []
    by_key = {
        (row["shards"], row["clients"]): row for row in points
    }
    base = by_key.get((1, 64))
    four = by_key.get((4, 64))
    if base is not None and four is not None:
        ratio = (
            four["throughput_per_second"] / base["throughput_per_second"]
            if base["throughput_per_second"]
            else 0.0
        )
        if ratio < SCALE_FLOOR:
            failures.append(
                f"4-shard/64-client throughput is only {ratio:.2f}x the "
                f"single-volume baseline (need >= {SCALE_FLOOR}x)"
            )
        if four["latency_p99_seconds"] > base["latency_p99_seconds"]:
            failures.append(
                f"4-shard p99 ({four['latency_p99_seconds']}s) exceeds "
                f"the saturated single-volume p99 "
                f"({base['latency_p99_seconds']}s)"
            )
    for row in points:
        if not row["consistent"]:
            failures.append(
                f"shards={row['shards']} clients={row['clients']}: "
                f"a shard image failed verification"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded cluster scaling sweep"
    )
    parser.add_argument(
        "--points",
        default=",".join(f"{s}x{c}" for s, c in DEFAULT_POINTS),
        help="comma-separated SHARDSxCLIENTS points",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests-per-client", type=int, default=DEFAULT_REQUESTS
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per point (shard groups fan out; the "
        "report is byte-identical for any value)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep (1x8, 2x8 x 10 requests) writing to /tmp",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_service.json"),
        help="report path (default: BENCH_service.json at the repo root)",
    )
    args = parser.parse_args(argv)

    points = [
        (int(part.split("x")[0]), int(part.split("x")[1]))
        for part in args.points.split(",")
        if part
    ]
    requests = args.requests_per_client
    output = args.output
    if args.smoke:
        points = [(1, 8), (2, 8)]
        requests = 10
        if args.output == os.path.join(_REPO_ROOT, "BENCH_service.json"):
            output = "/tmp/BENCH_cluster_smoke.json"

    rows = run_sweep(
        points,
        seed=args.seed,
        requests_per_client=requests,
        jobs=args.jobs,
        log=print,
    )
    update_report(rows, output, args.seed, requests)
    print(f"report -> {output}")

    failures = scale_gate(rows) if not args.smoke else [
        failure
        for failure in scale_gate(rows)
        if "verification" in failure
    ]
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
