"""Placement policies: consistent-hash ring and directory prefixes.

The cluster layer partitions the namespace at the top-level directory
(each service client owns ``/cN``, so the client's directory is the
placement key).  Two interchangeable policies decide which shard serves
a key:

* :class:`HashRing` — classic consistent hashing.  Each shard
  contributes ``replicas`` virtual points on a 64-bit ring (SHA-1 of
  ``shard-<id>:<replica>``); a key lands on the first point clockwise
  from its own hash.  Adding or removing a shard only remaps the keys
  that fall between the changed points — the minimal-disruption
  property the hypothesis suite pins.
* :class:`PrefixPlacement` — an explicit longest-prefix-match table,
  for operators who want deterministic pinning (and for tests that
  need an exactly balanced assignment).

Hashes are SHA-1, **never** the builtin ``hash()`` — Python salts
string hashing per process, which would silently break cross-run and
cross-worker determinism.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """64-bit stable hash of ``key`` (first 8 bytes of SHA-1)."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer shard ids."""

    def __init__(
        self,
        shard_ids: Iterable[int] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1: {replicas}")
        self.replicas = replicas
        self._shards: set = set()
        self._points: List[Tuple[int, int]] = []  # (ring point, shard)
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    @property
    def shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._shards))

    def add_shard(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        for replica in range(self.replicas):
            point = stable_hash(f"shard-{shard_id}:{replica}")
            bisect.insort(self._points, (point, shard_id))

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} not on the ring")
        self._shards.discard(shard_id)
        self._points = [
            entry for entry in self._points if entry[1] != shard_id
        ]

    def lookup(self, key: str) -> int:
        """The shard serving ``key``: first ring point at or clockwise
        of the key's hash, wrapping at the top of the ring."""
        if not self._points:
            raise ValueError("lookup on an empty ring")
        index = bisect.bisect_left(self._points, (stable_hash(key), -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def shard_for(self, key: str) -> int:
        return self.lookup(key)


class PrefixPlacement:
    """Longest-prefix-match placement over an explicit table."""

    def __init__(
        self, table: Dict[str, int], default: int = 0
    ) -> None:
        # Longest prefix first, then lexicographic — fully deterministic
        # match order even for equal-length prefixes.
        self._table: List[Tuple[str, int]] = sorted(
            table.items(), key=lambda item: (-len(item[0]), item[0])
        )
        self.default = default

    def shard_for(self, key: str) -> int:
        for prefix, shard_id in self._table:
            if key.startswith(prefix):
                return shard_id
        return self.default

    def pin(self, prefix: str, shard_id: int) -> None:
        """Add or replace one table entry (used by the routing flip)."""
        entries = [e for e in self._table if e[0] != prefix]
        entries.append((prefix, shard_id))
        self._table = sorted(
            entries, key=lambda item: (-len(item[0]), item[0])
        )


def round_robin_table(
    keys: Sequence[str], shard_ids: Sequence[int]
) -> Dict[str, int]:
    """An exactly balanced prefix table: key ``i`` → shard ``i % N``."""
    return {
        key: shard_ids[index % len(shard_ids)]
        for index, key in enumerate(keys)
    }


__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "PrefixPlacement",
    "round_robin_table",
    "stable_hash",
]
