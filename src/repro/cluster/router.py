"""The shard router: namespace partitioning over N LFS volumes.

A :class:`ShardRouter` owns the authoritative client→shard routing
table.  The table is *seeded* by a placement policy (consistent-hash
ring or explicit prefix table — see :mod:`repro.cluster.ring`) and then
maintained imperatively: a live migration calls :meth:`flip` exactly
once, at the cutover barrier, to repoint a batch of clients at their
new shard.  Routing reads during the run go through the table, not the
policy, so a flip is atomic — there is no window where half the ring
answers differently from the other half.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.ring import (
    HashRing,
    PrefixPlacement,
    round_robin_table,
)
from repro.obs import NULL_TELEMETRY


def client_key(client_id: int) -> str:
    """The placement key for a client: its private directory."""
    return f"/c{client_id}"


class ShardRouter:
    """Authoritative client→shard routing for one cluster run."""

    def __init__(
        self, config: ClusterConfig, telemetry=None
    ) -> None:
        self.config = config
        self.telemetry = telemetry or NULL_TELEMETRY
        shard_ids = list(range(config.shards))
        if config.placement == "hash":
            self.policy = HashRing(shard_ids, replicas=config.replicas)
        else:
            self.policy = PrefixPlacement(
                round_robin_table(
                    [client_key(cid) for cid in range(config.clients)],
                    shard_ids,
                )
            )
        self._route: Dict[int, int] = {
            cid: self.policy.shard_for(client_key(cid))
            for cid in range(config.clients)
        }
        self._m_flips = self.telemetry.counter("cluster.routing_flips")
        self.telemetry.gauge("cluster.shards").set(config.shards)

    def shard_of(self, client_id: int) -> int:
        return self._route[client_id]

    def assignments(self) -> Dict[int, List[int]]:
        """Current shard → sorted client ids map (every shard present,
        including empty ones)."""
        table: Dict[int, List[int]] = {
            shard_id: [] for shard_id in range(self.config.shards)
        }
        for cid in sorted(self._route):
            table[self._route[cid]].append(cid)
        return table

    def flip(self, client_ids: Sequence[int], target: int) -> None:
        """Atomically repoint ``client_ids`` at ``target``.

        Called exactly once per migration, at the cutover barrier —
        a single simulated instant, between two events on the group's
        shared clock."""
        for cid in client_ids:
            self._route[cid] = target
        self._m_flips.inc()


__all__ = ["ShardRouter", "client_key"]
