"""Live shard migration: move a shard's clients to another volume.

A :class:`ShardMigrator` rebalances one source shard onto one target
shard *while both keep serving*, as an event-driven state machine on
the migration group's shared clock:

``PENDING → FREEZING → QUIESCING → DRAINING → COPYING → CUTOVER →
RECLAIMING → DONE``

* **Freeze** (at ``spec.at``): every moving client is frozen on the
  source scheduler — new requests park instead of executing; requests
  already admitted keep running.
* **Quiesce**: poll until the moving clients' in-flight count drains
  to zero, so the source image is stable for the copy.
* **Drain window**: wait ``spec.drain`` simulated seconds so frozen
  clients' pending ticks land in the parked state (this is what makes
  the ``migration_redirect`` latency component measurable).
* **Copy**: read each live file out of the source (the same
  read-live-blocks discipline as the cleaner's copy-out path) and
  replay it onto the target volume, then checkpoint the target so the
  moved data is durable *before* any routing changes.
* **Cutover**: one event, one simulated instant — the routing flip,
  the client handover (:meth:`~repro.service.scheduler.
  RequestScheduler.release_client` / :meth:`adopt_client`) and the
  parked-request resubmission all happen between two events on the
  shared clock, so no request can observe a half-flipped route.
* **Reclaim**: the source unlinks the moved files and runs a cleaning
  pass — reclamation rides the cleaner's normal copy-out machinery —
  then checkpoints, leaving a verifiable source image.

Copy traffic and cutover stalls are first-class telemetry: the
``cluster.*`` counters below, ``cluster.migrate``/``cluster.cutover``
spans, and the per-request ``migration_redirect`` attribution
component.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.cluster.config import MigrationSpec
from repro.obs import NULL_TELEMETRY
from repro.service.scheduler import RequestScheduler

QUIESCE_POLL = 0.002
"""Seconds between in-flight drain checks while quiescing."""


class ShardMigrator:
    """Executes one :class:`MigrationSpec` inside a migration group."""

    def __init__(
        self,
        spec: MigrationSpec,
        source: RequestScheduler,
        target: RequestScheduler,
        on_flip=None,
        telemetry=None,
    ) -> None:
        self.spec = spec
        self.source = source
        self.target = target
        self.on_flip = on_flip
        self.clock = source.clock
        self.telemetry = telemetry or NULL_TELEMETRY
        self.state = "PENDING"
        self.moving: List[int] = []
        self.summary: Dict[str, Any] = {
            "source": spec.source,
            "target": spec.target,
            "at": spec.at,
            "clients": 0,
            "files": 0,
            "bytes": 0,
            "redirected": 0,
            "started": 0.0,
            "cutover": 0.0,
        }
        obs = self.telemetry
        self._m_migrations = obs.counter("cluster.migrations")
        self._m_bytes = obs.counter("cluster.migrated_bytes")
        self._m_files = obs.counter("cluster.migrated_files")
        self._m_redirected = obs.counter("cluster.redirected_requests")
        self._m_flips = obs.counter("cluster.routing_flips")
        self._span = None

    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the freeze ``spec.at`` seconds from now.

        ``at`` is relative to serving start, not absolute: volume
        formatting has already consumed simulated time on the shared
        clock by the time the run loop starts, and a timer scheduled in
        the past would never fire (``advance_to`` only moves forward).
        """
        self.clock.call_at(
            self.clock.now() + self.spec.at,
            lambda: self.source._enqueue(self._freeze),
        )

    def _freeze(self) -> None:
        self.state = "FREEZING"
        self.summary["started"] = self.clock.now()
        self._span = self.telemetry.begin(
            "cluster.migrate",
            source=self.spec.source,
            target=self.spec.target,
        )
        self.moving = sorted(
            client.client_id for client in self.source.clients
        )
        self.summary["clients"] = len(self.moving)
        for cid in self.moving:
            self.source.freeze_client(cid)
        self.state = "QUIESCING"
        self._check_quiesce()

    def _check_quiesce(self) -> None:
        inflight = sum(
            self.source.client_inflight(cid) for cid in self.moving
        )
        if inflight > 0:
            self.clock.call_at(
                self.clock.now() + QUIESCE_POLL,
                lambda: self.source._enqueue(self._check_quiesce),
            )
            return
        self.state = "DRAINING"
        self.clock.call_at(
            self.clock.now() + self.spec.drain,
            lambda: self.source._enqueue(self._copy),
        )

    def _copy(self) -> None:
        self.state = "COPYING"
        src_fs, dst_fs = self.source.fs, self.target.fs
        for cid in self.moving:
            directory = f"/c{cid}"
            if not src_fs.exists(directory):
                continue
            if not dst_fs.exists(directory):
                dst_fs.mkdir(directory)
            for name in sorted(src_fs.listdir(directory)):
                path = f"{directory}/{name}"
                data = src_fs.read_file(path)
                dst_fs.write_file(path, data)
                self.summary["files"] += 1
                self.summary["bytes"] += len(data)
        # The moved data must be durable on the target before any
        # routing changes — a post-cutover target crash may not lose
        # files the source already reclaimed.
        dst_fs.checkpoint()
        self.target._enqueue(self._cutover)

    def _cutover(self) -> None:
        self.state = "CUTOVER"
        with self.telemetry.span(
            "cluster.cutover",
            source=self.spec.source,
            target=self.spec.target,
        ):
            if self.on_flip is not None:
                self.on_flip(self.moving, self.spec.target)
            self._m_flips.inc()
            redirected = 0
            for cid in self.moving:
                client, parked = self.source.release_client(
                    cid, self.target
                )
                self.target.adopt_client(client, parked)
                redirected += len(parked)
        self.summary["cutover"] = self.clock.now()
        self.summary["redirected"] = redirected
        self._m_migrations.inc()
        self._m_files.inc(self.summary["files"])
        self._m_bytes.inc(self.summary["bytes"])
        self._m_redirected.inc(redirected)
        self.source._enqueue(self._reclaim)

    def _reclaim(self) -> None:
        self.state = "RECLAIMING"
        src_fs = self.source.fs
        for cid in self.moving:
            directory = f"/c{cid}"
            if not src_fs.exists(directory):
                continue
            for name in sorted(src_fs.listdir(directory)):
                src_fs.unlink(f"{directory}/{name}")
            src_fs.rmdir(directory)
        # Reclamation rides the cleaner: the unlinks left dead segments
        # behind, and a normal cleaning pass compacts them out.
        src_fs.clean_now()
        src_fs.checkpoint()
        if self._span is not None:
            self._span.attrs["bytes"] = self.summary["bytes"]
            self._span.attrs["files"] = self.summary["files"]
            self.telemetry.finish(self._span)
            self._span = None
        self.state = "DONE"


__all__ = ["ShardMigrator", "QUIESCE_POLL"]
