"""Reproduction of Rosenblum & Ousterhout, *The LFS Storage Manager*
(USENIX 1990).

The package provides:

* :mod:`repro.lfs` — the log-structured storage manager (the paper's
  contribution): segmented append-only log, inode map, segment cleaner,
  dual checkpoint regions, roll-forward crash recovery;
* :mod:`repro.ffs` — the BSD fast file system baseline the paper
  compares against, including fsck;
* :mod:`repro.disk`, :mod:`repro.sim`, :mod:`repro.cache`,
  :mod:`repro.vfs` — the simulated substrate (WREN IV disk service-time
  model, CPU cost model, file cache, UNIX file semantics);
* :mod:`repro.workloads`, :mod:`repro.harness`, :mod:`repro.analysis` —
  the paper's benchmarks (Figures 1-5, §3.1) and reporting;
* :mod:`repro.faults` — deterministic media-fault injection (torn
  writes, bit rot, bad sectors, transient I/O errors) and the
  ``repro crashtest`` crash+corruption campaign;
* :mod:`repro.service` — a simulated-time multi-client front-end:
  request scheduler, group commit, and cleaner-aware admission control
  (``repro serve-sim``).

Quickstart::

    from repro import make_lfs
    fs = make_lfs()
    fs.mkdir("/dir1")
    with fs.create("/dir1/file1") as handle:
        handle.write(b"hello, log-structured world")
    print(fs.read_file("/dir1/file1"))
    fs.unmount()
"""

from repro.disk.geometry import DiskGeometry, FAST_1990S_DISK, NULL_TIMING, WREN_IV
from repro.disk.sim_disk import SimDisk
from repro.disk.trace import TraceRecorder
from repro.errors import (
    ChecksumMismatch,
    CorruptionError,
    FileExistsError_ as FsFileExistsError,
    FileNotFoundError_ as FsFileNotFoundError,
    FileSystemError,
    MediaError,
    NoSpaceError,
    ReproError,
    TornWriteError,
    TransientIOError,
)
from repro.faults import FaultConfig, FaultInjector, FaultyDevice, run_campaign
from repro.ffs.config import FfsConfig
from repro.ffs.filesystem import FastFileSystem, make_ffs
from repro.ffs.fsck import fsck
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import LogStructuredFS, make_lfs
from repro.service import ServiceConfig, ServiceStats, simulate_service
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuCosts, CpuModel
from repro.vfs.interface import FileHandle, StorageManager

__version__ = "1.0.0"

__all__ = [
    "make_lfs",
    "make_ffs",
    "LogStructuredFS",
    "FastFileSystem",
    "LfsConfig",
    "FfsConfig",
    "fsck",
    "StorageManager",
    "FileHandle",
    "SimClock",
    "CpuModel",
    "CpuCosts",
    "SimDisk",
    "DiskGeometry",
    "WREN_IV",
    "FAST_1990S_DISK",
    "NULL_TIMING",
    "TraceRecorder",
    "ReproError",
    "FileSystemError",
    "NoSpaceError",
    "FsFileNotFoundError",
    "FsFileExistsError",
    "CorruptionError",
    "ChecksumMismatch",
    "TornWriteError",
    "MediaError",
    "TransientIOError",
    "FaultConfig",
    "FaultInjector",
    "FaultyDevice",
    "run_campaign",
    "ServiceConfig",
    "ServiceStats",
    "simulate_service",
    "__version__",
]
