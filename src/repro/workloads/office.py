"""A synthetic office/engineering workload (§3's characterization).

The paper's conclusion says the real test of LFS is "its performance
over months and years of use", which the authors had not yet run.  This
workload is the closest laptop-scale stand-in: a steady-state churn of
small, short-lived files with Zipf access locality, which exercises the
cleaner under a realistic (non-uniform) segment-utilization
distribution.  The ablation benchmark runs it under each cleaner policy
and compares write cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.vfs.interface import StorageManager
from repro.workloads.generator import FileSizeSampler, ZipfPicker


@dataclass
class OfficeState:
    """Carry-over state so successive runs continue the same population
    (used by the aging study to churn one file system for many epochs)."""

    live: List[str] = field(default_factory=list)
    counter: int = 0


@dataclass
class OfficeResult:
    """Steady-state churn metrics."""

    operations: int
    files_created: int
    files_deleted: int
    bytes_written: int
    bytes_read: int
    elapsed_seconds: float
    ops_per_second: float
    final_live_files: int
    write_cost: Optional[float] = None
    segments_cleaned: Optional[int] = None


def run_office_workload(
    fs: StorageManager,
    operations: int = 5000,
    target_population: int = 500,
    read_fraction: float = 0.5,
    overwrite_fraction: float = 0.2,
    seed: int = 0,
    directory: str = "/office",
    clock=None,
    state: Optional[OfficeState] = None,
) -> OfficeResult:
    """Churn files the way an office/engineering workstation does.

    Each step is one of: create a new file (whole-file write), read a
    live file sequentially and entirely, overwrite a live file
    (truncate + rewrite, the dominant small-file update mode §4.3.3
    relies on), or delete the oldest files when the population exceeds
    its target (short lifetimes).
    """
    clock = clock or fs.clock  # type: ignore[attr-defined]
    sizes = FileSizeSampler(seed=seed)
    picker = ZipfPicker(seed=seed + 1)
    if not fs.exists(directory):
        fs.mkdir(directory)

    state = state if state is not None else OfficeState()
    live = state.live  # oldest first
    counter = state.counter
    created = deleted = 0
    bytes_written = bytes_read = 0
    start = clock.now()

    for _step in range(operations):
        if live and picker.coin(read_fraction):
            # Read a popular file sequentially and entirely.
            name = live[len(live) - 1 - picker.pick(len(live))]
            bytes_read += len(fs.read_file(name))
        elif live and picker.coin(overwrite_fraction):
            # Total overwrite of a recently created file.
            name = live[len(live) - 1 - picker.pick(len(live))]
            payload = b"o" * sizes.sample()
            with fs.open(name) as handle:
                handle.truncate(0)
                handle.write(payload)
            bytes_written += len(payload)
        else:
            name = f"{directory}/doc{counter}"
            counter += 1
            payload = b"c" * sizes.sample()
            with fs.create(name) as handle:
                handle.write(payload)
            live.append(name)
            created += 1
            bytes_written += len(payload)
        while len(live) > target_population:
            victim = live.pop(0)  # shortest remaining lifetime: oldest
            fs.unlink(victim)
            deleted += 1

    fs.sync()
    elapsed = clock.now() - start
    state.counter = counter

    result = OfficeResult(
        operations=operations,
        files_created=created,
        files_deleted=deleted,
        bytes_written=bytes_written,
        bytes_read=bytes_read,
        elapsed_seconds=elapsed,
        ops_per_second=operations / elapsed if elapsed > 0 else float("inf"),
        final_live_files=len(live),
    )
    write_cost = getattr(fs, "write_cost", None)
    if callable(write_cost):
        result.write_cost = write_cost()
        result.segments_cleaned = fs.cleaner.stats.segments_cleaned  # type: ignore[attr-defined]
    return result
