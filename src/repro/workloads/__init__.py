"""Workload generators for the paper's benchmarks.

Every workload runs against the abstract
:class:`repro.vfs.interface.StorageManager`, so the same code exercises
LFS and the FFS baseline.
"""

from repro.workloads.cleaning import CleaningPoint, run_cleaning_rate_test
from repro.workloads.generator import FileSizeSampler, ZipfPicker
from repro.workloads.largefile import LargeFileResult, run_large_file_test
from repro.workloads.office import OfficeResult, run_office_workload
from repro.workloads.smallfile import SmallFileResult, run_small_file_test

__all__ = [
    "run_small_file_test",
    "SmallFileResult",
    "run_large_file_test",
    "LargeFileResult",
    "run_cleaning_rate_test",
    "CleaningPoint",
    "run_office_workload",
    "OfficeResult",
    "FileSizeSampler",
    "ZipfPicker",
]
