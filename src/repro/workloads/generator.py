"""Synthetic workload ingredients.

§3 characterizes the office/engineering environment: "a large number of
relatively small files (less than 8 kilobytes) whose contents are
accessed sequentially and in their entirety.  The average file life time
is short, less than a day."  These samplers encode that description with
deterministic randomness so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import InvalidArgumentError
from repro.units import KIB


class FileSizeSampler:
    """Office/engineering file-size mixture.

    80% of files are small (1–8 KB, the paper's characterization), 15%
    medium (8–64 KB) and 5% large (64 KB–1 MB); sizes within a band are
    log-uniform, the classic shape of file-size distributions.
    """

    def __init__(
        self,
        seed: int = 0,
        bands: Optional[Sequence] = None,
    ) -> None:
        self._rng = random.Random(seed)
        self.bands = list(
            bands
            or [
                (0.80, 1 * KIB, 8 * KIB),
                (0.15, 8 * KIB, 64 * KIB),
                (0.05, 64 * KIB, 1024 * KIB),
            ]
        )
        total = sum(weight for weight, _lo, _hi in self.bands)
        if abs(total - 1.0) > 1e-9:
            raise InvalidArgumentError(f"band weights sum to {total}, not 1")

    def sample(self) -> int:
        roll = self._rng.random()
        acc = 0.0
        for weight, lo, hi in self.bands:
            acc += weight
            if roll <= acc:
                # Log-uniform within the band.
                import math

                return int(
                    math.exp(
                        self._rng.uniform(math.log(lo), math.log(hi))
                    )
                )
        _weight, lo, hi = self.bands[-1]
        return hi

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]


class ZipfPicker:
    """Zipf-ish popularity over a dynamic population.

    Used to pick which live file an operation touches: low ranks are
    exponentially more popular, giving the access locality real
    workloads show (and that the cost-benefit cleaner exploits via
    segment age).
    """

    def __init__(self, seed: int = 0, skew: float = 4.0) -> None:
        if skew <= 0:
            raise InvalidArgumentError(f"skew must be positive: {skew}")
        self._rng = random.Random(seed)
        self.skew = skew

    def pick(self, population: int) -> int:
        """An index in [0, population), biased toward 0.

        Sampling ``population * U^skew`` with uniform U puts
        ``q**(1/skew)`` of the probability mass on the first ``q``
        fraction of indexes — e.g. with the default skew of 4, two
        thirds of accesses hit the first fifth of the population.
        """
        if population <= 0:
            raise InvalidArgumentError("empty population")
        u = self._rng.random()
        index = int(population * (u ** self.skew))
        return min(index, population - 1)

    def coin(self, probability: float) -> bool:
        return self._rng.random() < probability
