"""Replay file system operation traces.

The paper's conclusion laments that LFS "has not been subjected to a
'real' workload" — the standard way to do that, then and now, is to
replay captured operation traces (compare the Ousterhout et al. BSD
trace study the paper cites).  This module defines a small text trace
format and a replayer that runs a trace against any
:class:`~repro.vfs.interface.StorageManager`.

Trace format: one operation per line, ``#`` comments allowed::

    mkdir /src
    create /src/main.c 2048        # create with 2048 bytes of data
    write /src/main.c 512 128      # pwrite 128 bytes at offset 512
    read /src/main.c               # read the whole file
    read /src/main.c 0 4096        # pread 4096 bytes at offset 0
    truncate /src/main.c 100
    rename /src/main.c /src/old.c
    unlink /src/old.c
    rmdir /src
    sync

Payload bytes are deterministic (derived from the path), so replays are
reproducible and reads can be verified against a parallel model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.errors import InvalidArgumentError
from repro.vfs.interface import StorageManager


@dataclass(frozen=True)
class TraceOp:
    """One parsed trace operation."""

    op: str
    path: str = ""
    path2: str = ""
    offset: int = 0
    length: int = 0


@dataclass
class ReplayResult:
    operations: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    elapsed_seconds: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)

    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds


_VALID_OPS = {
    "mkdir",
    "rmdir",
    "create",
    "unlink",
    "write",
    "read",
    "truncate",
    "rename",
    "sync",
}


def parse_trace(lines: Iterable[str]) -> List[TraceOp]:
    """Parse trace text into operations, validating as we go."""
    ops: List[TraceOp] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        op = parts[0].lower()
        if op not in _VALID_OPS:
            raise InvalidArgumentError(
                f"trace line {lineno}: unknown operation {op!r}"
            )
        try:
            if op == "sync":
                ops.append(TraceOp(op="sync"))
            elif op == "rename":
                ops.append(TraceOp(op=op, path=parts[1], path2=parts[2]))
            elif op == "create":
                length = int(parts[2]) if len(parts) > 2 else 0
                ops.append(TraceOp(op=op, path=parts[1], length=length))
            elif op == "write":
                ops.append(
                    TraceOp(
                        op=op,
                        path=parts[1],
                        offset=int(parts[2]),
                        length=int(parts[3]),
                    )
                )
            elif op == "read":
                offset = int(parts[2]) if len(parts) > 2 else 0
                length = int(parts[3]) if len(parts) > 3 else -1
                ops.append(
                    TraceOp(op=op, path=parts[1], offset=offset, length=length)
                )
            elif op == "truncate":
                ops.append(TraceOp(op=op, path=parts[1], length=int(parts[2])))
            else:  # mkdir, rmdir, unlink
                ops.append(TraceOp(op=op, path=parts[1]))
        except (IndexError, ValueError) as exc:
            raise InvalidArgumentError(
                f"trace line {lineno}: malformed {op!r}: {line!r}"
            ) from exc
    return ops


def _payload(path: str, offset: int, length: int) -> bytes:
    stamp = f"{path}@{offset}:".encode()
    reps = length // len(stamp) + 1
    return (stamp * reps)[:length]


def replay(
    fs: StorageManager, trace: Iterable[TraceOp], clock=None
) -> ReplayResult:
    """Run a parsed trace against a storage manager."""
    clock = clock or fs.clock  # type: ignore[attr-defined]
    result = ReplayResult()
    start = clock.now()
    for op in trace:
        result.operations += 1
        result.counts[op.op] = result.counts.get(op.op, 0) + 1
        if op.op == "mkdir":
            fs.mkdir(op.path)
        elif op.op == "rmdir":
            fs.rmdir(op.path)
        elif op.op == "create":
            with fs.create(op.path) as handle:
                if op.length:
                    handle.write(_payload(op.path, 0, op.length))
                    result.bytes_written += op.length
        elif op.op == "unlink":
            fs.unlink(op.path)
        elif op.op == "write":
            with fs.open(op.path) as handle:
                handle.pwrite(op.offset, _payload(op.path, op.offset, op.length))
            result.bytes_written += op.length
        elif op.op == "read":
            with fs.open(op.path) as handle:
                if op.length < 0:
                    data = handle.read()
                else:
                    data = handle.pread(op.offset, op.length)
            result.bytes_read += len(data)
        elif op.op == "truncate":
            with fs.open(op.path) as handle:
                handle.truncate(op.length)
        elif op.op == "rename":
            fs.rename(op.path, op.path2)
        elif op.op == "sync":
            fs.sync()
    result.elapsed_seconds = clock.now() - start
    return result


def replay_text(fs: StorageManager, text: str) -> ReplayResult:
    """Parse and replay a trace given as a single string."""
    return replay(fs, parse_trace(text.splitlines()))
