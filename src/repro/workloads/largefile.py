"""The large-file benchmark (Figure 4).

§5.2: five stages against a single 100 MB file on a newly created file
system, all with an 8 KB request size:

1. write the file sequentially,
2. read it sequentially,
3. write 100 MB to random (block-aligned, non-unique) offsets,
4. read 100 MB from random offsets,
5. re-read the file sequentially.

The interesting cell is stage 5: after the random writes, LFS's blocks
lie in write order in the log, so a sequential read becomes random I/O,
while the update-in-place baseline kept them sequential.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.units import KIB, MIB
from repro.vfs.interface import StorageManager

PHASES = ("seq_write", "seq_read", "rand_write", "rand_read", "seq_reread")


@dataclass(frozen=True)
class LargeFileResult:
    """KB/s for each of the five stages."""

    file_bytes: int
    request_bytes: int
    seconds: Dict[str, float]

    def kb_per_second(self, phase: str) -> float:
        return (self.file_bytes / KIB) / self.seconds[phase]

    def rates(self) -> Dict[str, float]:
        return {phase: self.kb_per_second(phase) for phase in PHASES}


def _request_payload(offset: int, size: int) -> bytes:
    stamp = f"@{offset}:".encode()
    reps = size // len(stamp) + 1
    return (stamp * reps)[:size]


def run_large_file_test(
    fs: StorageManager,
    file_bytes: int = 100 * MIB,
    request_bytes: int = 8 * KIB,
    path: str = "/big",
    seed: int = 42,
    clock=None,
) -> LargeFileResult:
    """Run the Figure 4 benchmark against ``fs``."""
    clock = clock or fs.clock  # type: ignore[attr-defined]
    rng = random.Random(seed)
    n_requests = file_bytes // request_bytes
    offsets: List[int] = [i * request_bytes for i in range(n_requests)]
    seconds: Dict[str, float] = {}

    handle = fs.create(path)

    start = clock.now()
    for offset in offsets:
        handle.pwrite(offset, _request_payload(offset, request_bytes))
    fs.sync()
    seconds["seq_write"] = clock.now() - start

    fs.flush_caches()
    start = clock.now()
    for offset in offsets:
        handle.pread(offset, request_bytes)
    seconds["seq_read"] = clock.now() - start

    # "the random file writes become sequential writes when packed into
    # segments ... the random I/Os were not unique" — sample offsets
    # with replacement, as the paper did.
    random_offsets = [rng.randrange(n_requests) * request_bytes for _ in offsets]
    fs.flush_caches()
    start = clock.now()
    for offset in random_offsets:
        handle.pwrite(offset, _request_payload(offset ^ 1, request_bytes))
    fs.sync()
    seconds["rand_write"] = clock.now() - start

    random_read_offsets = [
        rng.randrange(n_requests) * request_bytes for _ in offsets
    ]
    fs.flush_caches()
    start = clock.now()
    for offset in random_read_offsets:
        handle.pread(offset, request_bytes)
    seconds["rand_read"] = clock.now() - start

    fs.flush_caches()
    start = clock.now()
    for offset in offsets:
        handle.pread(offset, request_bytes)
    seconds["seq_reread"] = clock.now() - start

    handle.close()
    return LargeFileResult(
        file_bytes=file_bytes, request_bytes=request_bytes, seconds=seconds
    )
