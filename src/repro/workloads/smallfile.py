"""The small-file benchmark (Figure 3).

§5.1: create 10 MB of small files, flush the file cache, read every file
back in creation order, then delete them all.  The paper reports
files/second for each of the three phases, for 1 KB and 10 KB files.
All rates here are in *simulated* time: CPU cost model plus WREN IV disk
service times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CorruptionError
from repro.vfs.interface import StorageManager


@dataclass(frozen=True)
class SmallFileResult:
    """files/second for each phase of the small-file test."""

    num_files: int
    file_size: int
    create_seconds: float
    read_seconds: float
    delete_seconds: float

    @property
    def create_per_second(self) -> float:
        return self.num_files / self.create_seconds

    @property
    def read_per_second(self) -> float:
        return self.num_files / self.read_seconds

    @property
    def delete_per_second(self) -> float:
        return self.num_files / self.delete_seconds


def _file_payload(index: int, size: int) -> bytes:
    """Deterministic, file-specific contents so reads can be verified."""
    stamp = f"file-{index}:".encode()
    reps = size // len(stamp) + 1
    return (stamp * reps)[:size]


def run_small_file_test(
    fs: StorageManager,
    num_files: int = 10000,
    file_size: int = 1024,
    directory: str = "/small",
    verify: bool = True,
    clock=None,
) -> SmallFileResult:
    """Run the Figure 3 benchmark against ``fs``.

    ``clock`` defaults to ``fs.clock`` (every file system in this
    library carries its simulation clock).
    """
    clock = clock or fs.clock  # type: ignore[attr-defined]
    fs.mkdir(directory)

    start = clock.now()
    for index in range(num_files):
        with fs.create(f"{directory}/f{index}") as handle:
            handle.write(_file_payload(index, file_size))
    fs.sync()
    create_seconds = clock.now() - start

    # "the file cache was flushed and all the files were read (in the
    # same order as they were created)"
    fs.flush_caches()
    start = clock.now()
    for index in range(num_files):
        data = fs.read_file(f"{directory}/f{index}")
        if verify and data != _file_payload(index, file_size):
            raise CorruptionError(
                f"file {index} read back wrong contents "
                f"({len(data)} bytes)"
            )
    read_seconds = clock.now() - start

    start = clock.now()
    for index in range(num_files):
        fs.unlink(f"{directory}/f{index}")
    fs.sync()
    delete_seconds = clock.now() - start

    return SmallFileResult(
        num_files=num_files,
        file_size=file_size,
        create_seconds=create_seconds,
        read_seconds=read_seconds,
        delete_seconds=delete_seconds,
    )
