"""Per-run service statistics and the rendered report.

:class:`ServiceStats` is the service layer's equivalent of
``CleanerStats``/``DiskStats``: plain counters plus the raw per-request
latency samples, kept exactly so percentiles are deterministic (the
telemetry histograms bucket; the report does not).  Everything here is
simulated time — rendering the report twice for identical runs yields
byte-identical text, which the seeded-determinism test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

REQUEST_KINDS = ("write", "fsync", "read", "open", "delete")


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    return ordered[rank]


@dataclass
class ServiceStats:
    """Counters and samples collected by one scheduler run."""

    started: float = 0.0
    finished: float = 0.0
    submitted: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    dropped: int = 0
    rejections: int = 0
    rejected_degraded: int = 0
    degraded_failures: int = 0
    throttle_events: int = 0
    throttle_seconds: float = 0.0
    forced_admissions: int = 0
    background_flushes: int = 0
    commit_batches: List[int] = field(default_factory=list)
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    # -- recording -----------------------------------------------------

    def note_submitted(self, kind: str) -> None:
        self.submitted[kind] = self.submitted.get(kind, 0) + 1

    def note_completed(self, kind: str, latency: float) -> None:
        self.completed += 1
        self.latencies.setdefault(kind, []).append(latency)

    def note_batch(self, size: int) -> None:
        self.commit_batches.append(size)

    # -- derived -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return max(0.0, self.finished - self.started)

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second."""
        return self.completed / self.elapsed if self.elapsed else 0.0

    @property
    def batch_mean(self) -> float:
        if not self.commit_batches:
            return 0.0
        return sum(self.commit_batches) / len(self.commit_batches)

    def all_latencies(self) -> List[float]:
        merged: List[float] = []
        for kind in REQUEST_KINDS:
            merged.extend(self.latencies.get(kind, []))
        return merged

    def p50(self) -> float:
        return percentile(self.all_latencies(), 0.50)

    def p99(self) -> float:
        return percentile(self.all_latencies(), 0.99)

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        merged = self.all_latencies()
        return {
            "elapsed_seconds": round(self.elapsed, 9),
            "submitted": {
                kind: self.submitted.get(kind, 0)
                for kind in REQUEST_KINDS
            },
            "completed": self.completed,
            "dropped": self.dropped,
            "rejections": self.rejections,
            "rejected_degraded": self.rejected_degraded,
            "degraded_failures": self.degraded_failures,
            "throughput_per_second": round(self.throughput, 6),
            "latency_p50_seconds": round(percentile(merged, 0.50), 9),
            "latency_p99_seconds": round(percentile(merged, 0.99), 9),
            "commit_batches": len(self.commit_batches),
            "commit_batch_mean": round(self.batch_mean, 6),
            "commit_batch_max": (
                max(self.commit_batches) if self.commit_batches else 0
            ),
            "throttle_events": self.throttle_events,
            "throttle_seconds": round(self.throttle_seconds, 9),
            "forced_admissions": self.forced_admissions,
            "background_flushes": self.background_flushes,
        }

    def render(self, title: str = "service") -> str:
        d = self.to_dict()
        lines = [f"== {title} =="]
        lines.append(
            f"  requests: {self.completed} completed, "
            f"{self.dropped} dropped, {self.rejections} rejections"
        )
        mix = ", ".join(
            f"{kind}={d['submitted'][kind]}" for kind in REQUEST_KINDS
        )
        lines.append(f"  submitted: {mix}")
        lines.append(
            f"  elapsed: {d['elapsed_seconds']:.6f}s simulated, "
            f"throughput {d['throughput_per_second']:.1f} req/s"
        )
        lines.append(
            f"  latency: p50 {d['latency_p50_seconds'] * 1000:.3f}ms, "
            f"p99 {d['latency_p99_seconds'] * 1000:.3f}ms"
        )
        lines.append(
            f"  group commit: {d['commit_batches']} batches, "
            f"mean {d['commit_batch_mean']:.2f} fsyncs/flush, "
            f"max {d['commit_batch_max']}"
        )
        lines.append(
            f"  backpressure: {self.throttle_events} throttles, "
            f"{d['throttle_seconds']:.6f}s throttled, "
            f"{self.forced_admissions} forced admissions"
        )
        lines.append(
            f"  background flushes: {self.background_flushes}"
        )
        if self.rejected_degraded or self.degraded_failures:
            lines.append(
                f"  degraded: {self.rejected_degraded} writes shed, "
                f"{self.degraded_failures} in-flight failures"
            )
        return "\n".join(lines)
