"""Group commit: one partial-segment flush per commit window.

§4.3.5's sync request is the small-write problem in miniature: each
``fsync`` forces a partial-segment write, and N clients fsyncing
independently would pay N flushes for what is logically one log append.
The committer holds the first fsync of a window for ``commit_window``
simulated seconds; every fsync that arrives meanwhile joins the batch,
and the window closes with a single :meth:`~repro.lfs.filesystem.
LogStructuredFS.fsync_many` — one flush, one drain, N completions.

The committer never calls back into the scheduler directly: completions
are handed to an ``enqueue`` hook so they run as ordinary events on the
scheduler's ready queue (commit work must not preempt the request that
happened to close the window).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.errors import ReadOnlyFSError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.context import NULL_TRACE_CONTEXT, StallProbe
from repro.service.config import ServiceConfig
from repro.service.stats import ServiceStats
from repro.vfs.interface import FileHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lfs.filesystem import LogStructuredFS

BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
"""Histogram buckets for fsyncs-per-flush (implicit +inf appended)."""


class GroupCommitter:
    """Coalesces concurrent fsync requests into one flush."""

    def __init__(
        self,
        fs: "LogStructuredFS",
        config: ServiceConfig,
        stats: ServiceStats,
        enqueue: Callable[[Callable[[], None]], None],
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.fs = fs
        self.config = config
        self.stats = stats
        self._enqueue = enqueue
        self._waiters: List[
            Tuple[
                FileHandle,
                Callable[[], None],
                Optional[Callable[[], None]],
                Any,
            ]
        ] = []
        self._window_open = False
        self.commits = 0
        self.failed_commits = 0
        # Durability-barrier hook: called after every *successful*
        # fsync_many (flush + drain), i.e. at the instant everything
        # written so far became durable.  The chaos campaign's ledger
        # advances its durable floors here.
        self.on_durable: Optional[Callable[[], None]] = None
        self.telemetry = telemetry or NULL_TELEMETRY
        self._probe = StallProbe(fs)
        obs = self.telemetry
        self._m_commits = obs.counter("service.commits")
        self._m_fsyncs = obs.counter("service.fsyncs_committed")
        self._h_batch = obs.histogram(
            "service.commit_batch_size", buckets=BATCH_BUCKETS
        )

    @property
    def window_open(self) -> bool:
        return self._window_open

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def request_commit(
        self,
        handle: FileHandle,
        done: Callable[[], None],
        ctx: Any = NULL_TRACE_CONTEXT,
        fail: Optional[Callable[[], None]] = None,
    ) -> None:
        """Join the current commit window (opening one if needed).

        ``done`` runs — via the scheduler's ready queue — once the
        flush that covers ``handle`` is durable.  ``ctx`` is the
        request's trace context: its commit wait ends when the flush
        starts, and the shared flush time is attributed to it.
        ``fail`` runs instead of ``done`` when the flush is refused
        because the file system degraded to read-only (without it the
        waiter is completed via ``done`` — callers that distinguish a
        refused fsync from a durable one must supply ``fail``).
        """
        self._waiters.append((handle, done, fail, ctx))
        if not self._window_open:
            self._window_open = True
            deadline = self.fs.clock.now() + self.config.commit_window
            self.fs.clock.call_at(
                deadline, lambda: self._enqueue(self._commit)
            )

    def _commit(self) -> None:
        batch = self._waiters
        self._waiters = []
        self._window_open = False
        if not batch:
            return
        # Every waiter's commit wait ends here, and every waiter is
        # charged the *full* shared flush — each request's wall clock
        # genuinely spans it — with one counter sample split applied to
        # all of them.
        traced = [ctx for _h, _d, _f, ctx in batch if ctx]
        for ctx in traced:
            ctx.end_wait()
        before = self._probe.sample() if traced else None
        flush_start = self.fs.clock.now()
        refused = False
        with self.telemetry.span(
            "service.group_commit", batch=len(batch)
        ) as span:
            for ctx in traced:
                span.add_link(ctx.root_id, "commits")
            try:
                self.fs.fsync_many(
                    [handle for handle, _done, _fail, _ctx in batch]
                )
            except ReadOnlyFSError:
                # The volume degraded between the window opening and
                # closing: nothing became durable, so the waiters must
                # not be acked.  Fail them politely instead of letting
                # the error escape into the scheduler's run loop.
                refused = True
                span.set_attr("refused_degraded", True)
        if traced:
            elapsed = self.fs.clock.now() - flush_start
            after = self._probe.sample()
            delta = (
                after[0] - before[0],
                after[1] - before[1],
                after[2] - before[2],
            )
            for ctx in traced:
                ctx.charge_split(elapsed, delta)
        if refused:
            self.failed_commits += 1
            for _handle, done, fail, _ctx in batch:
                self._enqueue(fail if fail is not None else done)
            return
        if self.on_durable is not None:
            self.on_durable()
        self.commits += 1
        self.stats.note_batch(len(batch))
        self._m_commits.inc()
        self._m_fsyncs.inc(len(batch))
        self._h_batch.observe(len(batch))
        for _handle, done, _fail, _ctx in batch:
            self._enqueue(done)

    def flush_now(self) -> None:
        """Close the window immediately (drain at end of run)."""
        self._commit()
