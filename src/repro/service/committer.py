"""Group commit: one partial-segment flush per commit window.

§4.3.5's sync request is the small-write problem in miniature: each
``fsync`` forces a partial-segment write, and N clients fsyncing
independently would pay N flushes for what is logically one log append.
The committer holds the first fsync of a window for ``commit_window``
simulated seconds; every fsync that arrives meanwhile joins the batch,
and the window closes with a single :meth:`~repro.lfs.filesystem.
LogStructuredFS.fsync_many` — one flush, one drain, N completions.

The committer never calls back into the scheduler directly: completions
are handed to an ``enqueue`` hook so they run as ordinary events on the
scheduler's ready queue (commit work must not preempt the request that
happened to close the window).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.service.config import ServiceConfig
from repro.service.stats import ServiceStats
from repro.vfs.interface import FileHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lfs.filesystem import LogStructuredFS

BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
"""Histogram buckets for fsyncs-per-flush (implicit +inf appended)."""


class GroupCommitter:
    """Coalesces concurrent fsync requests into one flush."""

    def __init__(
        self,
        fs: "LogStructuredFS",
        config: ServiceConfig,
        stats: ServiceStats,
        enqueue: Callable[[Callable[[], None]], None],
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.fs = fs
        self.config = config
        self.stats = stats
        self._enqueue = enqueue
        self._waiters: List[Tuple[FileHandle, Callable[[], None]]] = []
        self._window_open = False
        self.commits = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        obs = self.telemetry
        self._m_commits = obs.counter("service.commits")
        self._m_fsyncs = obs.counter("service.fsyncs_committed")
        self._h_batch = obs.histogram(
            "service.commit_batch_size", buckets=BATCH_BUCKETS
        )

    @property
    def window_open(self) -> bool:
        return self._window_open

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def request_commit(
        self, handle: FileHandle, done: Callable[[], None]
    ) -> None:
        """Join the current commit window (opening one if needed).

        ``done`` runs — via the scheduler's ready queue — once the
        flush that covers ``handle`` is durable.
        """
        self._waiters.append((handle, done))
        if not self._window_open:
            self._window_open = True
            deadline = self.fs.clock.now() + self.config.commit_window
            self.fs.clock.call_at(
                deadline, lambda: self._enqueue(self._commit)
            )

    def _commit(self) -> None:
        batch = self._waiters
        self._waiters = []
        self._window_open = False
        if not batch:
            return
        with self.telemetry.span(
            "service.group_commit", batch=len(batch)
        ):
            self.fs.fsync_many([handle for handle, _done in batch])
        self.commits += 1
        self.stats.note_batch(len(batch))
        self._m_commits.inc()
        self._m_fsyncs.inc(len(batch))
        self._h_batch.observe(len(batch))
        for _handle, done in batch:
            self._enqueue(done)

    def flush_now(self) -> None:
        """Close the window immediately (drain at end of run)."""
        self._commit()
