"""Multi-client service layer over the LFS.

Simulated-time front-end that interleaves N client request streams over
one :class:`~repro.lfs.filesystem.LogStructuredFS`: a request scheduler
driving the shared clock, a group committer batching concurrent fsyncs
into single flushes, and an admission controller that throttles writers
when the cleaner's clean-segment reserve runs low.
"""

from repro.service.admission import AdmissionController, Decision
from repro.service.committer import GroupCommitter
from repro.service.config import DEFAULT_MIX, ServiceConfig, validate_rig
from repro.service.scheduler import (
    ClientStream,
    Request,
    RequestScheduler,
    prefill,
    run_service,
    serviceable_bytes,
    simulate_service,
)
from repro.service.stats import REQUEST_KINDS, ServiceStats, percentile

__all__ = [
    "AdmissionController",
    "ClientStream",
    "Decision",
    "DEFAULT_MIX",
    "GroupCommitter",
    "percentile",
    "prefill",
    "Request",
    "REQUEST_KINDS",
    "RequestScheduler",
    "run_service",
    "serviceable_bytes",
    "ServiceConfig",
    "ServiceStats",
    "simulate_service",
    "validate_rig",
]
