"""Admission control with cleaner-aware backpressure.

Two independent gates, checked in order:

1. **Bounded queue** — at most ``admission_capacity`` requests may be
   in the system at once; excess arrivals are rejected and the client
   retries after a backoff.  This caps memory and bounds tail latency
   instead of letting the queue grow without limit.
2. **Clean-segment reserve** — write-class requests (write, fsync,
   delete: anything that consumes log space) are *throttled* when the
   cleaner's clean-segment reserve drops below a watermark.  A
   throttled writer pays for a cleaning pass — simulated time advances
   while the cleaner runs, which is exactly the stall a real writer
   would see — and then retries.  This is the pacing Lomet & Luo argue
   for: reclamation keeps up with foreground load because foreground
   load is made to wait for it, and the log can never wedge at high
   utilization because writers slow down *before* the hard reserve is
   breached.

A request that still finds the reserve low after
``max_throttle_retries`` cleaning passes is force-admitted: the file
system's own emergency cleaning (and, past that, ``NoSpaceError``) is
the final authority, and the service must terminate even on a disk
that cleaning cannot help.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.context import NULL_TRACE_CONTEXT
from repro.service.config import ServiceConfig
from repro.service.stats import ServiceStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lfs.filesystem import LogStructuredFS

WRITE_CLASS = frozenset({"write", "fsync", "delete"})
"""Request kinds that consume log space and respect the watermark."""


class Decision(enum.Enum):
    ADMIT = "admit"
    THROTTLE = "throttle"
    REJECT = "reject"
    REJECT_DEGRADED = "reject-degraded"
    """Write-class request shed because the fs is degraded read-only.

    Distinct from ``REJECT`` (queue full — retry later): a degraded
    volume will not accept this write however long the client waits, so
    the scheduler abandons the request instead of backing off."""


class AdmissionController:
    """Bounded queue + clean-reserve watermark over one LFS."""

    def __init__(
        self,
        fs: "LogStructuredFS",
        config: ServiceConfig,
        stats: ServiceStats,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.fs = fs
        self.config = config
        self.stats = stats
        self.capacity = config.effective_capacity
        # The file system's own self-maintenance keeps the clean count
        # near ``clean_low_water`` in steady state, so a useful service
        # watermark sits *above* that floor: backpressure engages while
        # the fs can still clean calmly, not after it is already in
        # emergency territory.
        self.watermark = config.reserve_watermark + fs.config.clean_low_water
        self.in_flight = 0
        obs = telemetry or NULL_TELEMETRY
        self._obs = obs
        self._g_queue = obs.gauge("service.queue_depth")
        self._m_admitted = obs.counter("service.admitted")
        self._m_rejected = obs.counter("service.rejected")
        self._m_throttles = obs.counter("service.throttle_events")
        self._m_throttle_s = obs.counter("service.throttle_seconds")
        self._m_forced = obs.counter("service.forced_admissions")
        self._m_rejected_degraded = obs.counter("service.rejected_degraded")

    # ------------------------------------------------------------------
    # The two gates
    # ------------------------------------------------------------------

    def reserve_low(self) -> bool:
        return self.fs.cleaner.clean_reserve() < self.watermark

    def try_admit(self, kind: str, throttle_count: int = 0) -> Decision:
        """Decide a request's fate; ADMIT increments the queue depth."""
        if kind in WRITE_CLASS and self.fs.degraded:
            # A read-only volume serves reads indefinitely but can never
            # accept this write: shed it outright (no backoff, no
            # throttle — cleaning cannot fix missing media).
            self.stats.rejected_degraded += 1
            self._m_rejected_degraded.inc()
            return Decision.REJECT_DEGRADED
        if self.in_flight >= self.capacity:
            self.stats.rejections += 1
            self._m_rejected.inc()
            return Decision.REJECT
        if (
            kind in WRITE_CLASS
            and throttle_count < self.config.max_throttle_retries
            and self.reserve_low()
        ):
            return Decision.THROTTLE
        if (
            kind in WRITE_CLASS
            and throttle_count >= self.config.max_throttle_retries
            and self.reserve_low()
        ):
            self.stats.forced_admissions += 1
            self._m_forced.inc()
        self.in_flight += 1
        self._g_queue.set(self.in_flight)
        self._m_admitted.inc()
        return Decision.ADMIT

    def pay_throttle(self, ctx: object = NULL_TRACE_CONTEXT) -> float:
        """Run one paced cleaning pass on the throttled writer's dime.

        Returns the simulated seconds the writer stalled.  The cleaning
        target clears the watermark with slack, so one stall buys
        enough reserve for many subsequent admissions and throttling
        self-limits instead of recurring on every write.

        ``ctx`` is the throttled request's trace context: the stall is
        recorded as a ``service.throttle`` span under its root, the
        cleaning pass links back to the root (it was paid for by this
        request), and the whole stall lands in its ``cleaner_throttle``
        latency component.
        """
        clock = self.fs.clock
        start = clock.now()
        self.stats.throttle_events += 1
        self._m_throttles.inc()
        target = self.fs.segments.reserve_segments + self.watermark + 2
        self._obs.resume(ctx.root)
        with self._obs.span("service.throttle"):
            self.fs.cleaner.clean(target, pays_for=ctx.root_id)
        self._obs.suspend(ctx.root)
        stalled = clock.now() - start
        ctx.charge("cleaner_throttle", stalled)
        self.stats.throttle_seconds += stalled
        self._m_throttle_s.inc(stalled)
        return stalled

    def release(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError("admission release without admit")
        self.in_flight -= 1
        self._g_queue.set(self.in_flight)
