"""Service-layer configuration.

One :class:`ServiceConfig` describes a whole multi-client run: how many
clients, what each client's request stream looks like, how long the
group-commit window stays open, and where admission control draws its
backpressure watermark.  Everything is deterministic given ``seed`` —
the config deliberately contains no wall-clock quantities (all times
are simulated seconds on the shared :class:`~repro.sim.clock.SimClock`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError, InvalidArgumentError
from repro.units import KIB

DEFAULT_MIX: Dict[str, float] = {
    "write": 0.40,
    "fsync": 0.25,
    "read": 0.15,
    "open": 0.05,
    "delete": 0.15,
}
"""Request mix: write-heavy with frequent fsync, the shape that makes
group commit matter (LogBase-style OLTP front-end over a log store)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable parameters of one simulated service run."""

    num_clients: int = 4
    """Concurrent client request streams."""

    seed: int = 0
    """Master seed; client ``i`` derives its own RNG from (seed, i)."""

    requests_per_client: int = 100
    """Requests each client issues before going quiet."""

    mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX)
    )
    """Relative weights of write / fsync / read / open / delete."""

    think_mean: float = 0.002
    """Mean client think time between requests (exponential, seconds)."""

    write_min_bytes: int = 1 * KIB
    write_max_bytes: int = 32 * KIB
    """Per-write payload size band (log-uniform within the band)."""

    commit_window: float = 0.01
    """Seconds a group-commit window stays open collecting fsyncs."""

    admission_capacity: int = 0
    """Bounded request queue depth; 0 means ``max(16, 4 * clients)``."""

    reserve_watermark: int = 2
    """Throttle writers when the cleaner's clean-segment reserve (clean
    segments beyond the writer's hard reserve) drops below this."""

    max_throttle_retries: int = 3
    """Throttle passes per request before it is force-admitted (the
    file system's own emergency cleaning is the last resort — the
    service must terminate even on a disk that cannot be cleaned)."""

    retry_backoff: float = 0.005
    """Seconds a rejected request waits before re-entering admission."""

    flusher_period: float = 0.5
    """Background flusher wake-up period (services the age trigger)."""

    max_files_per_client: int = 32
    min_files_per_client: int = 2
    """Working-set bounds for each client's private directory."""

    fill_fraction: float = 0.0
    """Pre-fill the log to this fraction of serviceable capacity before
    serving (0 disables).  High values exercise cleaner backpressure."""

    fragment_every: int = 8
    """During pre-fill, delete every Nth file to fragment segments."""

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise InvalidArgumentError(
                f"need at least one client: {self.num_clients}"
            )
        if self.requests_per_client < 1:
            raise InvalidArgumentError(
                f"need at least one request per client: "
                f"{self.requests_per_client}"
            )
        if self.commit_window < 0:
            raise InvalidArgumentError(
                f"negative commit window: {self.commit_window}"
            )
        if self.think_mean <= 0:
            raise InvalidArgumentError(
                f"think_mean must be positive: {self.think_mean}"
            )
        if not 0.0 <= self.fill_fraction < 1.0:
            raise InvalidArgumentError(
                f"fill_fraction must be in [0, 1): {self.fill_fraction}"
            )
        if self.min_files_per_client < 1:
            raise InvalidArgumentError("min_files_per_client must be >= 1")
        if self.max_files_per_client < self.min_files_per_client:
            raise InvalidArgumentError(
                "max_files_per_client below min_files_per_client"
            )
        unknown = set(self.mix) - set(DEFAULT_MIX)
        if unknown:
            raise InvalidArgumentError(
                f"unknown request kinds in mix: {sorted(unknown)}"
            )
        if not self.mix or sum(self.mix.values()) <= 0:
            raise InvalidArgumentError("request mix has no weight")
        if self.write_min_bytes < 1 or (
            self.write_max_bytes < self.write_min_bytes
        ):
            raise InvalidArgumentError(
                f"bad write size band: "
                f"[{self.write_min_bytes}, {self.write_max_bytes}]"
            )

    @property
    def effective_capacity(self) -> int:
        return self.admission_capacity or max(16, 4 * self.num_clients)


def validate_rig(
    service: Optional[ServiceConfig],
    lfs,
    device_bytes: Optional[int] = None,
) -> None:
    """Cross-check a service rig's configuration before it boots.

    Each dataclass validates its own fields in isolation; this checks
    the *relationships* a live rig depends on — segment size vs. cache
    size, watermarks vs. segment count, payloads vs. segments, the
    readahead window vs. the cache — and raises one typed
    :class:`~repro.errors.ConfigError` carrying **every** violated
    constraint, so a misconfigured rig is fixed in a single round trip
    instead of one rejection at a time.  ``device_bytes`` enables the
    capacity checks (skipped when the device size is not yet known);
    ``service=None`` validates a bare file-system rig (crashtest) and
    skips the service-coupled checks.
    """
    violations: List[str] = []
    if lfs.cache_bytes < 2 * lfs.segment_size:
        violations.append(
            f"cache_bytes ({lfs.cache_bytes}) below two segments "
            f"({2 * lfs.segment_size}): the write-back path needs room "
            f"to assemble a full segment while absorbing new dirty data"
        )
    if lfs.readahead_blocks > 0:
        window_bytes = lfs.readahead_blocks * lfs.block_size
        if window_bytes > lfs.cache_bytes // 4:
            violations.append(
                f"readahead window ({window_bytes} bytes) exceeds a "
                f"quarter of the cache ({lfs.cache_bytes} bytes): "
                f"prefetch would evict its own payload"
            )
    if service is not None and service.write_max_bytes > lfs.segment_size:
        violations.append(
            f"write_max_bytes ({service.write_max_bytes}) exceeds the "
            f"segment size ({lfs.segment_size}): one payload could "
            f"never fit a single log write"
        )
    if device_bytes is not None:
        from repro.lfs.config import LfsLayout

        num_segments = LfsLayout.for_device(lfs, device_bytes).num_segments
        if lfs.clean_high_water >= num_segments:
            violations.append(
                f"clean_high_water ({lfs.clean_high_water}) is not "
                f"below the device's segment count ({num_segments}): "
                f"the cleaner's target is unreachable"
            )
        # The admission watermark sits reserve_watermark above the fs's
        # own clean_low_water (see AdmissionController); if the sum of
        # hard reserve + watermark cannot fit, throttling engages
        # immediately and permanently.
        watermark = service.reserve_watermark if service is not None else 0
        floor = (
            lfs.cleaner_reserve_segments + lfs.clean_low_water + watermark
        )
        if floor >= num_segments:
            violations.append(
                f"cleaner_reserve_segments + clean_low_water + "
                f"reserve_watermark ({floor}) leaves no serviceable "
                f"segments on a {num_segments}-segment device"
            )
        if (
            service is not None
            and service.fill_fraction > 0
            and num_segments < 8
        ):
            violations.append(
                f"fill_fraction {service.fill_fraction} needs room to "
                f"fragment, but the device has only {num_segments} "
                f"segments (minimum 8)"
            )
    if violations:
        raise ConfigError(violations)
