"""Service-layer configuration.

One :class:`ServiceConfig` describes a whole multi-client run: how many
clients, what each client's request stream looks like, how long the
group-commit window stays open, and where admission control draws its
backpressure watermark.  Everything is deterministic given ``seed`` —
the config deliberately contains no wall-clock quantities (all times
are simulated seconds on the shared :class:`~repro.sim.clock.SimClock`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import InvalidArgumentError
from repro.units import KIB

DEFAULT_MIX: Dict[str, float] = {
    "write": 0.40,
    "fsync": 0.25,
    "read": 0.15,
    "open": 0.05,
    "delete": 0.15,
}
"""Request mix: write-heavy with frequent fsync, the shape that makes
group commit matter (LogBase-style OLTP front-end over a log store)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable parameters of one simulated service run."""

    num_clients: int = 4
    """Concurrent client request streams."""

    seed: int = 0
    """Master seed; client ``i`` derives its own RNG from (seed, i)."""

    requests_per_client: int = 100
    """Requests each client issues before going quiet."""

    mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX)
    )
    """Relative weights of write / fsync / read / open / delete."""

    think_mean: float = 0.002
    """Mean client think time between requests (exponential, seconds)."""

    write_min_bytes: int = 1 * KIB
    write_max_bytes: int = 32 * KIB
    """Per-write payload size band (log-uniform within the band)."""

    commit_window: float = 0.01
    """Seconds a group-commit window stays open collecting fsyncs."""

    admission_capacity: int = 0
    """Bounded request queue depth; 0 means ``max(16, 4 * clients)``."""

    reserve_watermark: int = 2
    """Throttle writers when the cleaner's clean-segment reserve (clean
    segments beyond the writer's hard reserve) drops below this."""

    max_throttle_retries: int = 3
    """Throttle passes per request before it is force-admitted (the
    file system's own emergency cleaning is the last resort — the
    service must terminate even on a disk that cannot be cleaned)."""

    retry_backoff: float = 0.005
    """Seconds a rejected request waits before re-entering admission."""

    flusher_period: float = 0.5
    """Background flusher wake-up period (services the age trigger)."""

    max_files_per_client: int = 32
    min_files_per_client: int = 2
    """Working-set bounds for each client's private directory."""

    fill_fraction: float = 0.0
    """Pre-fill the log to this fraction of serviceable capacity before
    serving (0 disables).  High values exercise cleaner backpressure."""

    fragment_every: int = 8
    """During pre-fill, delete every Nth file to fragment segments."""

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise InvalidArgumentError(
                f"need at least one client: {self.num_clients}"
            )
        if self.requests_per_client < 1:
            raise InvalidArgumentError(
                f"need at least one request per client: "
                f"{self.requests_per_client}"
            )
        if self.commit_window < 0:
            raise InvalidArgumentError(
                f"negative commit window: {self.commit_window}"
            )
        if self.think_mean <= 0:
            raise InvalidArgumentError(
                f"think_mean must be positive: {self.think_mean}"
            )
        if not 0.0 <= self.fill_fraction < 1.0:
            raise InvalidArgumentError(
                f"fill_fraction must be in [0, 1): {self.fill_fraction}"
            )
        if self.min_files_per_client < 1:
            raise InvalidArgumentError("min_files_per_client must be >= 1")
        if self.max_files_per_client < self.min_files_per_client:
            raise InvalidArgumentError(
                "max_files_per_client below min_files_per_client"
            )
        unknown = set(self.mix) - set(DEFAULT_MIX)
        if unknown:
            raise InvalidArgumentError(
                f"unknown request kinds in mix: {sorted(unknown)}"
            )
        if not self.mix or sum(self.mix.values()) <= 0:
            raise InvalidArgumentError("request mix has no weight")
        if self.write_min_bytes < 1 or (
            self.write_max_bytes < self.write_min_bytes
        ):
            raise InvalidArgumentError(
                f"bad write size band: "
                f"[{self.write_min_bytes}, {self.write_max_bytes}]"
            )

    @property
    def effective_capacity(self) -> int:
        return self.admission_capacity or max(16, 4 * self.num_clients)
