"""Request-stream recording for ``repro serve-sim --record``.

A :class:`RequestRecorder` captures every client request the scheduler
services as one JSON object per line — enough to replay or analyze the
offered load outside the simulator:

* ``rid`` — scheduler-issue sequence number (monotone per rig);
* ``client`` — the issuing client id;
* ``op`` — request kind (``write``/``read``/``open``/``delete``/
  ``fsync``);
* ``path`` — the file the request touched (``null`` for a request
  abandoned on a degraded volume, where no path was ever resolved);
* ``bytes`` — payload size: bytes written, bytes read back, 0 for
  metadata-only ops;
* ``t_issue`` — simulated arrival time (seconds).

Records are buffered in memory and flushed with :meth:`write` so the
file is written once, in deterministic order — the stream is a pure
function of the seed, like everything else in a rig.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class RequestRecorder:
    """Collects one record per serviced request; writes JSONL."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def note(self, request, path: Optional[str], nbytes: int) -> None:
        """Called by the scheduler once per request, when the target
        path is known (at execution; at abandonment for dropped ones).
        """
        self.records.append(
            {
                "rid": request.rid,
                "client": request.client_id,
                "op": request.kind,
                "path": path,
                "bytes": nbytes,
                "t_issue": request.arrival,
            }
        )

    def write(self, path: str) -> int:
        """Write the buffered stream as JSONL; returns the line count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
        return len(self.records)


__all__ = ["RequestRecorder"]
