#!/usr/bin/env python
"""Service scaling sweep: clients vs throughput, latency and batching.

Runs the multi-client simulation at increasing client counts and
records, per point, the simulated throughput, latency percentiles,
group-commit batch sizes and backpressure totals.  All numbers are
simulated time, so the sweep is deterministic for a given seed and the
JSON report (``BENCH_service.json``) is diffable across commits.

Usage::

    python -m repro.service.bench                 # full sweep -> repo root
    python -m repro.service.bench --smoke         # tiny sweep -> /tmp
    python -m repro.service.bench --clients 1,4,16 --output out.json
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional, Sequence

from repro.service.config import ServiceConfig
from repro.service.scheduler import simulate_service
from repro.units import MIB

DEFAULT_CLIENTS = (1, 2, 4, 8, 16)
_REPO_ROOT = os.path.dirname(
    os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
)


def sweep_point(
    clients: int,
    seed: int = 0,
    requests_per_client: int = 50,
    fill_fraction: float = 0.0,
    total_bytes: int = 64 * MIB,
) -> Dict[str, object]:
    """One sweep point: run the service and flatten its stats."""
    config = ServiceConfig(
        num_clients=clients,
        seed=seed,
        requests_per_client=requests_per_client,
        fill_fraction=fill_fraction,
    )
    stats, fs = simulate_service(config, total_bytes=total_bytes)
    fs.unmount()
    point: Dict[str, object] = {"clients": clients}
    point.update(stats.to_dict())
    # The write-amplification ledger rides along per point, so the
    # sweep shows how batching discipline changes bytes, not just
    # latency (keys prefixed to keep the flat namespace collision-free).
    wamp = fs.wamp_report()
    point["wamp_user_bytes"] = wamp["user_bytes"]
    point["wamp_log_bytes"] = wamp["log_bytes"]
    point["wamp_cleaner_bytes"] = wamp["cleaner_bytes"]
    point["wamp_write_amplification"] = round(
        wamp["write_amplification"], 6
    )
    return point


def run_sweep(
    clients_list: Sequence[int] = DEFAULT_CLIENTS,
    seed: int = 0,
    requests_per_client: int = 50,
    fill_fraction: float = 0.0,
    log=None,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Sweep the client counts; ``jobs > 1`` runs the points in parallel.

    Each point is an independent seeded simulation, and results are
    consumed in sweep order, so the report is byte-identical for any
    ``jobs`` value.
    """
    from repro.harness.parallel import run_tasks

    points = run_tasks(
        sweep_point,
        [
            (clients, seed, requests_per_client, fill_fraction)
            for clients in clients_list
        ],
        jobs=jobs,
    )
    if log is not None:
        for point in points:
            log(
                f"clients={point['clients']:>3}: "
                f"{point['throughput_per_second']:>8.1f} req/s, "
                f"p99 {point['latency_p99_seconds'] * 1000:>9.3f} ms, "
                f"batch mean {point['commit_batch_mean']:.2f}"
            )
    return points


def write_report(
    points: List[Dict[str, object]],
    output: str,
    seed: int,
    requests_per_client: int,
) -> None:
    report = {
        "benchmark": "service_scaling",
        "seed": seed,
        "requests_per_client": requests_per_client,
        "points": points,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-client service scaling sweep"
    )
    parser.add_argument(
        "--clients",
        default=",".join(str(n) for n in DEFAULT_CLIENTS),
        help="comma-separated client counts to sweep",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests-per-client", type=int, default=50)
    parser.add_argument(
        "--fill",
        type=float,
        default=0.0,
        help="pre-fill fraction of serviceable capacity",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep (1,4 clients x 10 requests) writing to /tmp",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep points (report is "
        "byte-identical for any value)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_service.json"),
        help="report path (default: BENCH_service.json at the repo root)",
    )
    args = parser.parse_args(argv)

    clients_list = [int(part) for part in args.clients.split(",") if part]
    requests = args.requests_per_client
    output = args.output
    if args.smoke:
        clients_list = [1, 4]
        requests = 10
        if args.output == os.path.join(_REPO_ROOT, "BENCH_service.json"):
            output = "/tmp/BENCH_service_smoke.json"

    points = run_sweep(
        clients_list,
        seed=args.seed,
        requests_per_client=requests,
        fill_fraction=args.fill,
        log=print,
        jobs=args.jobs,
    )
    write_report(points, output, args.seed, requests)
    print(f"report -> {output}")

    # Smoke gate: every request completes at every point.
    dropped = sum(int(point["dropped"]) for point in points)
    if dropped:
        print(f"FAIL: {dropped} dropped request(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
