"""The multi-client request scheduler.

A :class:`RequestScheduler` interleaves N deterministic client request
streams over one :class:`~repro.lfs.filesystem.LogStructuredFS`, all in
simulated time:

* Arrivals, commit windows and the background flusher are timers on the
  shared :class:`~repro.sim.clock.SimClock` (``call_at``); the FIFO
  guarantee for equal timestamps is what makes a run reproducible.
* Timer callbacks never touch the file system directly — they append
  events to a ready queue that the run loop drains one event at a
  time.  An event may advance the clock (CPU work, synchronous I/O);
  any timers that expire meanwhile simply enqueue more events, so file
  system operations are never re-entered.  This models a single-server
  system: requests that become ready while another is being serviced
  run late, and that queueing delay is charged to their latency
  (``arrival`` is the scheduled instant, not the execution instant).
* ``fsync`` requests are handed to the :class:`~repro.service.
  committer.GroupCommitter`; everything else completes synchronously.
* Every request passes the :class:`~repro.service.admission.
  AdmissionController` first — rejected requests retry after a
  backoff, throttled writers pay for a cleaning pass.

Each client owns a private directory (``/cN``) and a bounded working
set of files, so streams never conflict on paths and a run's on-disk
image is a pure function of the seed.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import MediaError, NoSpaceError, ReadOnlyFSError
from repro.lfs.filesystem import LogStructuredFS
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.context import NULL_TRACE_CONTEXT, RequestTracer
from repro.obs.registry import DEFAULT_TIME_BUCKETS
from repro.service.admission import AdmissionController, Decision
from repro.service.committer import GroupCommitter
from repro.service.config import ServiceConfig, validate_rig
from repro.service.stats import REQUEST_KINDS, ServiceStats
from repro.units import MIB

MAX_FILE_BYTES = 1 * MIB
"""Appends wrap to offset 0 past this size, bounding working files."""


class Request:
    """One client request travelling through admission → execution."""

    __slots__ = ("client_id", "kind", "arrival", "throttles", "ctx", "rid")

    def __init__(
        self, client_id: int, kind: str, arrival: float, rid: int = 0
    ) -> None:
        self.client_id = client_id
        self.kind = kind
        self.arrival = arrival
        self.throttles = 0
        self.ctx = NULL_TRACE_CONTEXT
        self.rid = rid


class ClientStream:
    """A deterministic request stream with a private working set."""

    def __init__(self, client_id: int, config: ServiceConfig) -> None:
        self.client_id = client_id
        self.config = config
        self.rng = random.Random((config.seed << 16) ^ (client_id * 0x9E37))
        self.directory = f"/c{client_id}"
        self.files: List[str] = []
        self.last_written: Optional[str] = None
        self.name_counter = 0
        self.issued = 0
        self.completed = 0
        self.inflight = 0
        self._kinds = list(config.mix.keys())
        self._weights = [config.mix[kind] for kind in self._kinds]

    def think(self) -> float:
        return self.rng.expovariate(1.0 / self.config.think_mean)

    def next_kind(self) -> str:
        kind = self.rng.choices(self._kinds, weights=self._weights)[0]
        # Degrade gracefully while the working set is tiny: everything
        # that needs an existing file becomes a write.
        if kind == "delete" and (
            len(self.files) <= self.config.min_files_per_client
        ):
            return "write"
        if kind in ("read", "open") and not self.files:
            return "write"
        if kind == "fsync" and self.last_written is None:
            return "write"
        return kind

    def new_path(self) -> str:
        self.name_counter += 1
        return f"{self.directory}/f{self.name_counter}"

    def pick_file(self) -> str:
        return self.rng.choice(self.files)

    def write_payload(self) -> bytes:
        lo, hi = self.config.write_min_bytes, self.config.write_max_bytes
        if hi > lo:
            # Log-uniform across the band, like real file-size mixes.
            size = int(
                math.exp(
                    self.rng.uniform(math.log(lo), math.log(hi))
                )
            )
            size = max(lo, min(hi, size))
        else:
            size = lo
        fill = (self.client_id * 31 + self.issued) % 256
        return bytes([fill]) * size


class RequestScheduler:
    """Runs N client streams to completion over one file system."""

    def __init__(
        self,
        fs: LogStructuredFS,
        config: ServiceConfig,
        telemetry: Optional[Telemetry] = None,
        clients: Optional[List[ClientStream]] = None,
        ledger=None,
        ready: Optional[Deque[Callable[[], None]]] = None,
        recorder=None,
    ) -> None:
        """``clients`` resumes existing streams (rng, issued/completed
        counts and working sets intact) against ``fs`` — the chaos
        campaign uses this to continue surviving clients on a recovered
        image.  ``ledger`` is an optional durability-contract recorder
        (see :class:`repro.faults.chaos.DurabilityLedger`) notified of
        every mutation and every client-visible fsync ack.  ``ready``
        lets several schedulers on one clock share a single event queue
        (a cluster migration group drives a source and a target shard in
        one loop); ``recorder`` is an optional request-stream recorder
        (see :class:`repro.service.recording.RequestRecorder`)."""
        self.fs = fs
        self.clock = fs.clock
        self.config = config
        self.stats = ServiceStats()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.tracing = RequestTracer(self.telemetry, fs)
        self.ledger = ledger
        self.recorder = recorder
        self.admission = AdmissionController(
            fs, config, self.stats, telemetry=self.telemetry
        )
        self.committer = GroupCommitter(
            fs, config, self.stats, self._enqueue, telemetry=self.telemetry
        )
        if ledger is not None:
            self.committer.on_durable = ledger.note_barrier
        self.clients = (
            clients
            if clients is not None
            else [ClientStream(i, config) for i in range(config.num_clients)]
        )
        self._clients_by_id = {
            client.client_id: client for client in self.clients
        }
        for client in self.clients:
            # On a resumed rig the directory usually already exists (and
            # a degraded volume could not create it anyway).
            if not fs.degraded and not fs.exists(client.directory):
                fs.mkdir(client.directory)
        self._ready: Deque[Callable[[], None]] = (
            ready if ready is not None else deque()
        )
        self._active_clients = sum(
            1
            for client in self.clients
            if client.issued < config.requests_per_client
        )
        # Cluster-migration state: frozen clients park their next
        # request instead of executing; departed clients forward late
        # ticks to the scheduler that adopted them.
        self._frozen: set = set()
        self._parked: List[Tuple[Request, float]] = []
        self._migrated: Dict[int, "RequestScheduler"] = {}
        self._flusher_live = False
        self._next_rid = 0
        self._run_span_cm = None
        self._run_span = None
        obs = self.telemetry
        self._m_requests = {
            kind: obs.counter("service.requests", kind=kind)
            for kind in REQUEST_KINDS
        }
        self._m_completed = obs.counter("service.completed")
        self._m_no_space = obs.counter("service.no_space_failures")
        self._m_degraded_failures = obs.counter("service.degraded_failures")
        self._h_latency = {
            kind: obs.histogram(
                "service.latency_seconds",
                buckets=DEFAULT_TIME_BUCKETS,
                kind=kind,
            )
            for kind in REQUEST_KINDS
        }

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _enqueue(self, event: Callable[[], None]) -> None:
        self._ready.append(event)

    def _post_at(self, t: float, event: Callable[[], None]) -> None:
        """Schedule ``event`` to join the ready queue at time ``t``."""
        self.clock.call_at(t, lambda: self._ready.append(event))

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def start(self, open_run_span: bool = True) -> None:
        """Post the initial client ticks and the background flusher.

        ``run`` calls this and then drains the queue itself; a cluster
        group driver calls it for every member scheduler and runs one
        combined loop over the shared ready queue (passing
        ``open_run_span=False`` — member spans would nest arbitrarily
        on the shared tracer stack)."""
        self.stats.started = self.clock.now()
        if open_run_span:
            self._run_span_cm = self.telemetry.span(
                "service.run", clients=self.config.num_clients
            )
            self._run_span = self._run_span_cm.__enter__()
        for client in self.clients:
            if client.issued >= self.config.requests_per_client:
                continue  # resumed stream that already finished
            self._post_at(
                self.clock.now() + client.think(),
                lambda client=client: self._tick(client),
            )
        self._arm_flusher()

    def finish(self) -> ServiceStats:
        """Close the run span and stamp the finish time."""
        if self._run_span_cm is not None:
            self._run_span.set_attr("completed", self.stats.completed)
            self._run_span_cm.__exit__(None, None, None)
            self._run_span_cm = None
            self._run_span = None
        self.stats.finished = self.clock.now()
        return self.stats

    def run(self) -> ServiceStats:
        self.start()
        while self._ready or self.clock.pending_timers():
            if self._ready:
                self._ready.popleft()()
                continue
            next_at = self.clock.next_timer_at()
            assert next_at is not None
            self.clock.advance_to(next_at)
        return self.finish()

    # ------------------------------------------------------------------
    # Client lifecycle
    # ------------------------------------------------------------------

    def _tick(self, client: ClientStream) -> None:
        owner = self._migrated.get(client.client_id)
        if owner is not None:
            # A tick scheduled before the cutover fired after it: the
            # client now lives on another shard; hand the tick over
            # (same clock, same shared ready queue — only the serving
            # file system changes).
            owner._tick(client)
            return
        kind = client.next_kind()
        client.issued += 1
        request = Request(
            client.client_id, kind, self.clock.now(), rid=self._next_rid
        )
        self._next_rid += 1
        if client.client_id in self._frozen:
            # The client's shard is mid-migration: park the request.
            # It is adopted (and its redirect wait charged) by the
            # target scheduler at the cutover barrier.
            self._parked.append((request, self.clock.now()))
            return
        client.inflight += 1
        request.ctx = self.tracing.context(client.client_id, kind)
        self.stats.note_submitted(kind)
        self._m_requests[kind].inc()
        self._submit(request)

    def _submit(self, request: Request) -> None:
        request.ctx.end_wait()  # closes a pending retry backoff, if any
        decision = self.admission.try_admit(request.kind, request.throttles)
        if decision is Decision.REJECT:
            # Bounded queue is full: retry after a backoff.  The
            # arrival timestamp is preserved, so the wait shows up in
            # this request's latency, not in a dropped-request count.
            request.ctx.begin_wait(
                "service.admission_retry", "admission_retry"
            )
            self._post_at(
                self.clock.now() + self.config.retry_backoff,
                lambda: self._submit(request),
            )
            return
        if decision is Decision.REJECT_DEGRADED:
            self._abandon(request)
            return
        if decision is Decision.THROTTLE:
            request.throttles += 1
            self.admission.pay_throttle(request.ctx)  # advances sim time
            self._enqueue(lambda: self._submit(request))
            return
        self._execute(request)

    def _abandon(self, request: Request) -> None:
        """Drop a write the degraded volume can never serve.

        Unlike a ``REJECT`` (queue full), no retry can help, so the
        request ends here — never admitted, so no ``release()`` — and
        the client moves on to its next request (its reads keep being
        served).
        """
        client = self._client(request)
        client.inflight -= 1
        request.ctx.finish(self.clock.now() - request.arrival)
        if self.recorder is not None:
            self.recorder.note(request, None, 0)
        if client.issued < self.config.requests_per_client:
            self._post_at(
                self.clock.now() + client.think(),
                lambda: self._tick(client),
            )
        else:
            self._active_clients -= 1

    def _client(self, request: Request) -> ClientStream:
        return self._clients_by_id[request.client_id]

    def _execute(self, request: Request) -> None:
        client = self._client(request)
        request.ctx.activate()
        path: Optional[str] = None
        nbytes = 0
        try:
            if request.kind == "fsync":
                handle = self.fs.open(client.last_written)
                if self.recorder is not None:
                    self.recorder.note(request, handle.path, 0)
                request.ctx.deactivate()
                request.ctx.begin_wait("service.commit_wait", "commit_wait")
                self.committer.request_commit(
                    handle,
                    lambda: self._finish_fsync(request, handle),
                    ctx=request.ctx,
                    fail=lambda: self._fail_fsync(request, handle),
                )
                return  # completes when the commit window closes
            if request.kind == "write":
                path, nbytes = self._do_write(client)
            elif request.kind == "read":
                path = client.pick_file()
                with self.fs.open(path) as handle:
                    nbytes = len(handle.read())
            elif request.kind == "open":
                path = client.pick_file()
                self.fs.open(path).close()
            elif request.kind == "delete":
                path = client.pick_file()
                try:
                    self.fs.unlink(path)
                finally:
                    # Same finally-note rationale as _do_write: an
                    # escaping NoSpaceError/crash fires post-mutation.
                    if self.ledger is not None:
                        self.ledger.note_unlink(path)
                client.files.remove(path)
                if client.last_written == path:
                    client.last_written = None
        except NoSpaceError:
            # A force-admitted write on a disk cleaning cannot help.
            # The request fails rather than wedging the run; the image
            # stays consistent (the failed flush left cache state
            # intact) and the failure is visible in the report.
            self.stats.dropped += 1
            self._m_no_space.inc()
        except ReadOnlyFSError:
            # The volume degraded between admission and execution (the
            # cleaner can trip the quarantine budget from inside another
            # request's flush).  Admission sheds subsequent writes; this
            # in-flight one fails politely.
            self.stats.degraded_failures += 1
            self._m_degraded_failures.inc()
        except MediaError:
            # Unrecoverable media under a read: the data is gone, which
            # is detection, not a scheduler failure.  The request is
            # dropped and the damage shows up in the fault counters.
            self.stats.dropped += 1
        if self.recorder is not None:
            self.recorder.note(request, path, nbytes)
        self._complete(request)

    def _do_write(self, client: ClientStream) -> Tuple[str, int]:
        # Ledger notes are taken in ``finally`` blocks on purpose: the
        # whole mutation enters the cache before any write-back runs, so
        # every exception that can escape these calls (NoSpaceError from
        # the flush, an injected crash) fires *after* the client-visible
        # state changed — the mutation must be on the books either way.
        data = client.write_payload()
        create = len(client.files) < self.config.min_files_per_client or (
            len(client.files) < self.config.max_files_per_client
            and client.rng.random() < 0.25
        )
        if create:
            path = client.new_path()
            handle = self.fs.create(path)
            if self.ledger is not None:
                self.ledger.note_create(path, handle.inum)
            with handle:
                try:
                    handle.write(data)
                finally:
                    if self.ledger is not None:
                        self.ledger.note_write(path, 0, data)
            client.files.append(path)
        else:
            path = client.pick_file()
            with self.fs.open(path) as handle:
                offset = handle.size
                if offset + len(data) > MAX_FILE_BYTES:
                    offset = 0
                try:
                    handle.pwrite(offset, data)
                finally:
                    if self.ledger is not None:
                        self.ledger.note_write(path, offset, data)
        client.last_written = path
        return path, len(data)

    def _finish_fsync(self, request: Request, handle) -> None:
        request.ctx.activate()
        if self.ledger is not None:
            self.ledger.note_ack(
                handle.path, handle.inum, self.clock.now(), request.ctx
            )
        handle.close()
        self._complete(request)

    def _fail_fsync(self, request: Request, handle) -> None:
        """Complete an fsync whose flush was refused (degraded volume).

        The client is *not* acked — nothing became durable — but the
        admitted request must still release its admission slot and let
        the stream continue.
        """
        request.ctx.activate()
        handle.close()
        self.stats.degraded_failures += 1
        self._m_degraded_failures.inc()
        self._complete(request)

    def _complete(self, request: Request) -> None:
        self.admission.release()
        client = self._client(request)
        client.completed += 1
        client.inflight -= 1
        latency = self.clock.now() - request.arrival
        request.ctx.deactivate()
        request.ctx.finish(latency)
        self.stats.note_completed(request.kind, latency)
        self._m_completed.inc()
        self._h_latency[request.kind].observe(latency)
        if client.issued < self.config.requests_per_client:
            self._post_at(
                self.clock.now() + client.think(),
                lambda: self._tick(client),
            )
        else:
            self._active_clients -= 1

    # ------------------------------------------------------------------
    # Background flusher (the age trigger, §4.3.5's 30-second rule)
    # ------------------------------------------------------------------

    def _background_flush(self) -> None:
        """Flush dirty blocks past their age threshold.

        Clients only drive write-back through the cache-full trigger
        and fsync; this periodic event services the age trigger via
        :meth:`~repro.cache.writeback.WritebackMonitor.
        next_age_deadline`, like the kernel's delayed-write flusher.
        It stops rescheduling once every client has finished, which is
        what lets the run loop terminate (a later ``adopt_client`` on an
        idle shard re-arms it).
        """
        deadline = self.fs.monitor.next_age_deadline()
        if deadline is not None and deadline <= self.clock.now():
            from repro.cache.writeback import WritebackReason

            self.fs.monitor.note_explicit(WritebackReason.AGE)
            self.fs.flush_log()
            self.stats.background_flushes += 1
        if self._active_clients > 0:
            self._post_at(
                self.clock.now() + self.config.flusher_period,
                self._background_flush,
            )
        else:
            self._flusher_live = False

    def _arm_flusher(self) -> None:
        self._flusher_live = True
        self._post_at(
            self.clock.now() + self.config.flusher_period,
            self._background_flush,
        )

    # ------------------------------------------------------------------
    # Cluster-migration hooks (see repro.cluster.migrate)
    # ------------------------------------------------------------------

    def freeze_client(self, client_id: int) -> None:
        """Stop executing ``client_id``'s new requests; park them.

        The client's already-submitted requests keep running — the
        migrator waits for :meth:`client_inflight` to drain before
        copying, so the source image is quiescent for this client."""
        self._frozen.add(client_id)

    def client_inflight(self, client_id: int) -> int:
        return self._clients_by_id[client_id].inflight

    def release_client(
        self, client_id: int, target: "RequestScheduler"
    ) -> Tuple[ClientStream, List[Tuple[Request, float]]]:
        """Hand a frozen, quiesced client over to ``target``.

        Returns the stream plus its parked ``(request, parked_at)``
        entries.  Late ticks still scheduled against this scheduler are
        forwarded to ``target`` when they fire (``_tick``'s first
        check), so no request is lost across the cutover."""
        client = self._clients_by_id.pop(client_id)
        self.clients.remove(client)
        self._frozen.discard(client_id)
        self._migrated[client_id] = target
        parked = [
            entry for entry in self._parked if entry[0].client_id == client_id
        ]
        self._parked = [
            entry for entry in self._parked if entry[0].client_id != client_id
        ]
        if client.issued < self.config.requests_per_client or parked:
            # Still mid-stream from this scheduler's point of view: its
            # completion path will never fire here, so account for the
            # departure now (this is what lets the source's flusher and
            # run loop wind down).
            self._active_clients -= 1
        return client, parked

    def adopt_client(
        self,
        client: ClientStream,
        parked: List[Tuple[Request, float]],
    ) -> None:
        """Continue a migrated stream on this scheduler.

        Parked requests are resubmitted with their original arrival
        timestamps; the wait since they parked is charged to the
        ``migration_redirect`` latency component, so the cutover stall
        is visible in the attribution report rather than smeared into
        queueing."""
        self.clients.append(client)
        self._clients_by_id[client.client_id] = client
        if not self.fs.degraded and not self.fs.exists(client.directory):
            self.fs.mkdir(client.directory)
        if client.issued < self.config.requests_per_client or parked:
            self._active_clients += 1
            if not self._flusher_live:
                self._arm_flusher()
        now = self.clock.now()
        for request, parked_at in parked:
            request.ctx = self.tracing.context(client.client_id, request.kind)
            request.ctx.charge("migration_redirect", now - parked_at)
            self.stats.note_submitted(request.kind)
            self._m_requests[request.kind].inc()
            client.inflight += 1
            self._enqueue(lambda request=request: self._submit(request))


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------


def serviceable_bytes(fs: LogStructuredFS) -> int:
    """Capacity the service can fill while leaving the cleaner room:
    everything beyond the writer's hard reserve and the clean-segment
    low water."""
    headroom = (
        fs.segments.reserve_segments + fs.config.clean_low_water
    )
    segments = max(0, fs.layout.num_segments - headroom)
    return segments * fs.config.segment_size


def prefill(
    fs: LogStructuredFS, config: ServiceConfig
) -> int:
    """Load the log to ``fill_fraction`` of serviceable capacity.

    Files are written through the normal write path (so the log wraps
    and cleans exactly as it would in production) and every
    ``fragment_every``-th file is deleted, leaving the fragmented
    segments that make cleaning — and therefore backpressure — real.
    Returns the live bytes on the device after the fill.
    """
    if config.fill_fraction <= 0:
        return fs.live_data_bytes()
    target = int(config.fill_fraction * serviceable_bytes(fs))
    chunk = 64 * fs.config.block_size  # 256 KiB at the default 4 KiB
    rng = random.Random(config.seed ^ 0xF111)
    index = 0
    while fs.live_data_bytes() < target:
        index += 1
        path = f"/fill{index}"
        fill = bytes([rng.randrange(256)]) * chunk
        fs.write_file(path, fill)
        if config.fragment_every and index % config.fragment_every == 0:
            fs.unlink(path)
    fs.checkpoint()
    return fs.live_data_bytes()


def run_service(
    fs: LogStructuredFS,
    config: ServiceConfig,
    telemetry: Optional[Telemetry] = None,
    recorder=None,
) -> Tuple[ServiceStats, RequestScheduler]:
    """Pre-fill (if configured) and run the full service simulation."""
    prefill(fs, config)
    scheduler = RequestScheduler(
        fs, config, telemetry=telemetry, recorder=recorder
    )
    stats = scheduler.run()
    return stats, scheduler


def simulate_service(
    config: ServiceConfig,
    total_bytes: int = 64 * MIB,
    lfs_config=None,
    telemetry: Optional[Telemetry] = None,
    recorder=None,
) -> Tuple[ServiceStats, LogStructuredFS]:
    """Build a fresh rig, serve ``config``, checkpoint, and return it.

    The returned file system is still mounted (callers can inspect
    cleaner stats or unmount and save the image); its on-disk state has
    been checkpointed so the image verifies.
    """
    from repro.lfs.config import LfsConfig
    from repro.units import KIB

    if lfs_config is None:
        lfs_config = LfsConfig(
            segment_size=256 * KIB,
            cache_bytes=2 * MIB,
            max_inodes=4096,
        )
    validate_rig(config, lfs_config, device_bytes=total_bytes)
    from repro.lfs.filesystem import make_lfs

    fs = make_lfs(
        total_bytes=total_bytes, config=lfs_config, telemetry=telemetry
    )
    stats, _scheduler = run_service(
        fs, config, telemetry=telemetry, recorder=recorder
    )
    fs.checkpoint()
    fs.disk.drain()
    return stats, fs
