"""Read-only inspection of raw device images.

These helpers parse on-disk state directly from a
:class:`~repro.disk.device.SectorDevice` — no mount, no cache — which
makes them useful both for debugging the file systems and for verifying
in tests that what mount *says* matches what the bytes *are*.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.serialization import Unpacker
from repro.disk.device import SectorDevice
from repro.errors import CorruptionError
from repro.ffs.allocator import CylinderGroup
from repro.ffs.config import FFS_MAGIC, FfsConfig, FfsLayout
from repro.ffs.filesystem import FfsSuperBlock
from repro.lfs.checkpoint import CheckpointData
from repro.lfs.config import (
    CHECKPOINT_REGION_BLOCKS,
    LFS_MAGIC,
    LfsConfig,
    LfsLayout,
)
from repro.lfs.filesystem import SuperBlock
from repro.lfs.segment_usage import SegmentState, SegmentUsage
from repro.lfs.summary import SegmentSummary
from repro.units import fmt_bytes, fmt_time


def identify(device: SectorDevice) -> Optional[str]:
    """Which file system formatted this device: 'lfs', 'ffs' or None."""
    head = device.read(0, 1)
    magic = Unpacker(head).u32()
    if magic == LFS_MAGIC:
        return "lfs"
    if magic == FFS_MAGIC:
        return "ffs"
    return None


def _read_block(device: SectorDevice, addr: int, block_size: int) -> bytes:
    spb = block_size // device.sector_size
    return device.read(addr * spb, spb)


# ---------------------------------------------------------------------------
# LFS
# ---------------------------------------------------------------------------


def _utilization_map(usage: SegmentUsage, width: int = 64) -> List[str]:
    """One character per segment: '.'=clean, 'A'=active, 0-9=decile."""
    cells: List[str] = []
    for seg in range(usage.num_segments):
        info = usage.info(seg)
        if info.state is SegmentState.CLEAN:
            cells.append(".")
        elif info.state is SegmentState.ACTIVE:
            cells.append("A")
        else:
            decile = min(9, int(usage.utilization(seg) * 10))
            cells.append(str(decile))
    return [
        "".join(cells[row : row + width])
        for row in range(0, len(cells), width)
    ]


def describe_lfs(device: SectorDevice) -> str:
    """Human-readable dump of an LFS image."""
    superblock = SuperBlock.unpack(
        device.read(0, 8 * 1024 // device.sector_size)
    )
    config = LfsConfig(
        block_size=superblock.block_size,
        segment_size=superblock.segment_size,
        max_inodes=superblock.max_inodes,
    )
    layout = LfsLayout.for_device(config, device.total_bytes)
    lines = [
        "LFS image",
        f"  block size    {fmt_bytes(superblock.block_size)}",
        f"  segment size  {fmt_bytes(superblock.segment_size)}",
        f"  segments      {layout.num_segments}",
        f"  max inodes    {superblock.max_inodes}",
    ]
    checkpoints: List[CheckpointData] = []
    for region, addr in enumerate(layout.checkpoint_addrs):
        raw = b"".join(
            _read_block(device, addr + i, config.block_size)
            for i in range(CHECKPOINT_REGION_BLOCKS)
        )
        try:
            data = CheckpointData.unpack(raw)
        except CorruptionError:
            lines.append(f"  checkpoint {region}: invalid")
            continue
        checkpoints.append(data)
        lines.append(
            f"  checkpoint {region}: t={fmt_time(data.timestamp)} "
            f"seq={data.position.sequence} "
            f"tail=segment {data.position.active_segment}"
            f"+{data.position.active_offset}"
        )
    if not checkpoints:
        lines.append("  no valid checkpoint: image is not recoverable")
        return "\n".join(lines)
    newest = max(checkpoints, key=lambda data: data.timestamp)

    usage = SegmentUsage(
        layout.num_segments, config.segment_size, config.block_size
    )
    try:
        usage.load_all(
            newest.usage_addrs,
            lambda addr: _read_block(device, addr, config.block_size),
        )
    except CorruptionError:
        lines.append("  segment usage: unreadable")
        return "\n".join(lines)
    live = usage.total_live_bytes()
    lines.append(
        f"  live data     {fmt_bytes(live)} "
        f"({100 * live / layout.data_capacity_bytes:.1f}% of the log)"
    )
    lines.append(
        f"  segments      {usage.clean_count()} clean / "
        f"{len(usage.dirty_segments())} dirty"
    )
    lines.append("  utilization map ('.'=clean, 'A'=active, 0-9=decile):")
    lines.extend(f"    {row}" for row in _utilization_map(usage))
    lines.append("  log tail summaries:")
    lines.extend(
        f"    {entry}" for entry in _tail_summaries(device, config, layout, newest)
    )
    return "\n".join(lines)


def _tail_summaries(
    device: SectorDevice,
    config: LfsConfig,
    layout: LfsLayout,
    checkpoint: CheckpointData,
    limit: int = 5,
) -> List[str]:
    """Parse up to ``limit`` partial segments after the checkpoint."""
    entries: List[str] = []
    seg = checkpoint.position.active_segment
    offset = checkpoint.position.active_offset
    seq = checkpoint.position.sequence
    bps = config.blocks_per_segment
    while len(entries) < limit and bps - offset >= 2:
        first = layout.segment_first_block(seg) + offset
        head = _read_block(device, first, config.block_size)
        try:
            nsummary = SegmentSummary.peek_summary_blocks(head, config.block_size)
            raw = b"".join(
                _read_block(device, first + i, config.block_size)
                for i in range(nsummary)
            )
            summary = SegmentSummary.unpack(raw, config.block_size)
        except CorruptionError:
            break
        if summary.seq != seq:
            break
        kinds = {}
        for entry in summary.entries:
            kinds[entry.kind.name] = kinds.get(entry.kind.name, 0) + 1
        entries.append(
            f"seq {summary.seq} @ segment {seg}+{offset}: "
            f"{summary.nblocks} blocks "
            f"({', '.join(f'{v} {k}' for k, v in sorted(kinds.items()))})"
        )
        offset += nsummary + summary.nblocks
        seq += 1
    if not entries:
        entries.append("(no writes after the last checkpoint)")
    return entries


# ---------------------------------------------------------------------------
# FFS
# ---------------------------------------------------------------------------


def describe_ffs(device: SectorDevice) -> str:
    """Human-readable dump of an FFS image."""
    superblock = FfsSuperBlock.unpack(
        device.read(0, 16 * 1024 // device.sector_size)
    )
    config = FfsConfig(
        block_size=superblock.block_size,
        cg_bytes=superblock.cg_bytes,
        inodes_per_cg=superblock.inodes_per_cg,
        maxbpg=superblock.maxbpg,
    )
    layout = FfsLayout.for_device(config, device.total_bytes)
    lines = [
        "FFS image",
        f"  block size       {fmt_bytes(superblock.block_size)}",
        f"  cylinder groups  {layout.num_groups} x "
        f"{fmt_bytes(superblock.cg_bytes)}",
        f"  inodes           {layout.max_inodes}",
    ]
    total_free_blocks = 0
    total_free_inodes = 0
    for cg in range(layout.num_groups):
        raw = _read_block(device, layout.cg_header_addr(cg), config.block_size)
        try:
            group = CylinderGroup.unpack(config, raw)
        except CorruptionError:
            lines.append(f"  cg {cg}: header unreadable (run fsck)")
            continue
        total_free_blocks += group.blocks.free_count
        total_free_inodes += group.inodes.free_count
        lines.append(
            f"  cg {cg}: {group.inodes.used_count}/{group.inodes.nbits} "
            f"inodes, {group.blocks.used_count}/{group.blocks.nbits} "
            f"data blocks used"
        )
    lines.append(
        f"  free             {fmt_bytes(total_free_blocks * config.block_size)} "
        f"data, {total_free_inodes} inodes"
    )
    return "\n".join(lines)


def describe_image(device: SectorDevice) -> str:
    """Dump whichever file system the image holds."""
    kind = identify(device)
    if kind == "lfs":
        return describe_lfs(device)
    if kind == "ffs":
        return describe_ffs(device)
    return "unrecognized image (no LFS or FFS superblock at sector 0)"
