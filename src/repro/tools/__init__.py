"""Operator tools: on-disk image inspection and the command line."""

from repro.tools.inspect import describe_image, identify

__all__ = ["describe_image", "identify"]
