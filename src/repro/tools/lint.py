"""A dependency-free linter for the classes of defect this repo cares
about: unused imports, write-only local variables, instrumented modules
that bypass the telemetry registry with bare ``print`` (OBS001) or
emit metric/span names missing from the registered vocabulary
(OBS002), broad ``except`` clauses in the crash-recovery modules
(FAULT001) and in the crash-under-load chaos/scheduler modules
(FAULT002), wall-clock calls in the simulated-time service and cluster layers
(SVC001), and buffer copies on the zero-copy data path (ALLOC001).

The container this project builds in has no third-party linter, so this
module is the fallback for ``make lint`` — when ``ruff`` is installed
the Makefile prefers it (configuration in ``pyproject.toml``), and this
tool is written to be a strict subset of what ruff's F401/F841 would
flag.  It is deliberately conservative: a check that cannot be decided
from the AST alone is skipped rather than guessed.

Usage::

    python -m repro.tools.lint [paths...]     # defaults to src tests benchmarks
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Set, Tuple

_DYNAMIC_SCOPE_CALLS = {"locals", "vars", "eval", "exec", "globals"}


def _iter_python_files(paths: List[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            ]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _noqa_lines(source: str) -> Set[int]:
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if "# noqa" in line
    }


def _used_names(tree: ast.AST) -> Set[str]:
    """Every identifier the module could reference, including string
    annotations (``from __future__ import annotations`` keeps them as
    AST nodes, so plain Name collection covers those too) and __all__."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # the chain root is a Name and already collected
            continue
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # __all__ entries, forward references in annotations
            used.add(node.value)
    return used


def _check_unused_imports(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    if os.path.basename(path) == "__init__.py":
        return  # packages import for re-export
    used = _used_names(tree)
    for node in ast.walk(tree):
        names = []
        if isinstance(node, ast.Import):
            names = node.names
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            names = node.names
        for alias in names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name.split(".")[0]
            if bound in used or node.lineno in noqa:
                continue
            yield (
                path,
                node.lineno,
                f"F401 `{alias.asname or alias.name}` imported but unused",
            )


def _function_has_dynamic_scope(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _DYNAMIC_SCOPE_CALLS
        ):
            return True
    return False


def _check_unused_locals(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _function_has_dynamic_scope(func):
            continue
        declared_elsewhere: Set[str] = set()
        stores: dict[str, int] = {}
        loads: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared_elsewhere.update(node.names)
            elif isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                elif isinstance(node.ctx, ast.Del):
                    loads.add(node.id)
            # Only plain single-target assignments: loop variables,
            # tuple unpacking, with-targets and walrus all have common
            # intentionally-unused idioms.
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    stores.setdefault(target.id, node.lineno)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                loads.add(node.target.id)
        for name, lineno in sorted(stores.items(), key=lambda item: item[1]):
            if (
                name.startswith("_")
                or name in loads
                or name in declared_elsewhere
                or lineno in noqa
            ):
                continue
            yield (
                path,
                lineno,
                f"F841 local variable `{name}` is assigned to but never used",
            )


_OBS_INSTRUMENTED_DIRS = ("repro/lfs/", "repro/cache/")
"""Directories whose modules, once they import ``repro.obs``, must
publish through the registry — a stray ``print`` there is almost always
debug output that should have been a metric or a span attribute."""


def _imports_obs(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == "repro.obs" or alias.name.startswith("repro.obs.")
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.obs" or module.startswith("repro.obs."):
                return True
    return False


def _check_obs_print_bypass(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    normalized = path.replace(os.sep, "/")
    if not any(marker in normalized for marker in _OBS_INSTRUMENTED_DIRS):
        return
    if not _imports_obs(tree):
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and node.lineno not in noqa
        ):
            yield (
                path,
                node.lineno,
                "OBS001 bare `print` in a telemetry-instrumented module; "
                "publish through the registry or tracer instead",
            )


_OBS_NAME_DIRS = (
    "repro/lfs/",
    "repro/cache/",
    "repro/disk/",
    "repro/service/",
    "repro/vfs/",
    "repro/faults/",
)
"""Instrumented directories whose metric names and span kinds must come
from the registered vocabulary in :mod:`repro.obs.names`.

A telemetry series name typed inline at the emit site can drift from
the name the dashboards, the attribution analyzer and the merge path
expect — ``wamp.user_byte`` instead of ``wamp.user_bytes`` fails
silently, producing a fresh series nobody reads.  OBS002 forces every
literal handed to ``.counter()/.gauge()/.histogram()`` or
``.span()/.begin()`` in these directories to be a member of
``METRIC_NAMES`` / ``SPAN_KINDS``, so adding an instrument means
registering its name first."""

_OBS_METRIC_METHODS = ("counter", "gauge", "histogram")
_OBS_SPAN_METHODS = ("span", "begin")


def _registered_obs_names() -> Tuple[Set[str], Set[str]]:
    from repro.obs.names import METRIC_NAMES, SPAN_KINDS

    return set(METRIC_NAMES), set(SPAN_KINDS)


def _check_obs_registered_names(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    normalized = path.replace(os.sep, "/")
    if not any(marker in normalized for marker in _OBS_NAME_DIRS):
        return
    metric_names, span_kinds = _registered_obs_names()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue
        method = node.func.attr
        name = node.args[0].value
        if method in _OBS_METRIC_METHODS:
            registered, table = metric_names, "METRIC_NAMES"
        elif method in _OBS_SPAN_METHODS:
            registered, table = span_kinds, "SPAN_KINDS"
        else:
            continue
        if name in registered or node.lineno in noqa:
            continue
        yield (
            path,
            node.lineno,
            f"OBS002 unregistered telemetry name `{name}` passed to "
            f"`.{method}()`; register it in repro.obs.names.{table}",
        )


_RECOVERY_TYPED_FILES = ("repro/lfs/recovery.py", "repro/lfs/checkpoint.py")
"""Crash-recovery modules where every caught exception must be typed.

A blanket ``except Exception`` there can silently swallow the very
corruption signals (``ChecksumMismatch``, ``MediaError``, ...) the
recovery path exists to classify, turning detected damage into wrong
answers.  The crash campaign (:mod:`repro.faults`) relies on anything
unexpected escaping these modules."""


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    kinds = []
    if handler.type is None:  # bare `except:`
        return True
    if isinstance(handler.type, ast.Tuple):
        kinds = list(handler.type.elts)
    else:
        kinds = [handler.type]
    return any(
        isinstance(kind, ast.Name) and kind.id in ("Exception", "BaseException")
        for kind in kinds
    )


def _check_recovery_broad_except(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    normalized = path.replace(os.sep, "/")
    if not normalized.endswith(_RECOVERY_TYPED_FILES):
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _is_broad_handler(node)
            and node.lineno not in noqa
        ):
            yield (
                path,
                node.lineno,
                "FAULT001 broad `except` in a crash-recovery module; "
                "catch typed repro.errors classes so corruption stays "
                "classified",
            )


_CHAOS_TYPED_FILES = (
    "repro/faults/chaos.py",
    "repro/service/scheduler.py",
)
"""Crash-under-load modules where every caught exception must be typed.

The chaos campaign's contract is that a crash mid-request never leaves
the scheduler loop via anything but a typed error or the deliberate
:class:`~repro.faults.chaos.CrashSignal`.  A blanket ``except
Exception`` in the scheduler would absorb the injected crash (or a real
defect) and report a clean trial; in the chaos driver it would mask a
checker bug as a passing campaign.  The one legitimate campaign-level
outcome classifier carries an explicit ``# noqa: FAULT002``."""


def _check_chaos_broad_except(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    normalized = path.replace(os.sep, "/")
    if not normalized.endswith(_CHAOS_TYPED_FILES):
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _is_broad_handler(node)
            and node.lineno not in noqa
        ):
            yield (
                path,
                node.lineno,
                "FAULT002 broad `except` in a crash-under-load module; "
                "catch typed repro.errors classes (or CrashSignal) so "
                "injected crashes and real defects stay distinguishable",
            )


_SERVICE_DIRS = ("repro/service/", "repro/cluster/")
_WALL_CLOCK_ATTRS = ("time", "sleep", "monotonic", "perf_counter")
"""Wall-clock entry points of the ``time`` module.

The service and cluster layers are simulated-time only: every delay is
a timer on the shared :class:`~repro.sim.clock.SimClock`, which is what
makes runs seed-deterministic and byte-identical across hosts (and
across ``--jobs`` values — a cluster shard group must replay the same
on any worker).  One stray ``time.time()`` in a latency calculation or
``time.sleep()`` in a backoff silently breaks both, so SVC001 bans
them outright."""


def _check_service_wall_clock(
    path: str, tree: ast.Module, noqa: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    normalized = path.replace(os.sep, "/")
    if not any(part in normalized for part in _SERVICE_DIRS):
        return
    for node in ast.walk(tree):
        finding = None
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            banned = [
                alias.name
                for alias in node.names
                if alias.name in _WALL_CLOCK_ATTRS or alias.name == "*"
            ]
            if banned:
                finding = f"`from time import {', '.join(banned)}`"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
            and node.func.attr in _WALL_CLOCK_ATTRS
        ):
            finding = f"`time.{node.func.attr}()`"
        if finding and node.lineno not in noqa:
            yield (
                path,
                node.lineno,
                f"SVC001 {finding} in the service layer; the service "
                "runs on simulated time only (SimClock.call_at)",
            )


_ALLOC_HOT_PATHS = ("repro/disk/", "repro/lfs/segments.py")
"""Zero-copy data-path files where buffer copies are budgeted.

The device read path returns memoryviews and the segment writer
assembles partial segments in pooled buffers, so a ``bytes(...)`` or
``b"".join(...)`` there is usually an accidental reintroduction of a
per-I/O copy.  The genuinely necessary copies (crash-rollback undo
records, explicit snapshot APIs) carry an ``# alloc-ok:`` comment on
the call's line, which is ALLOC001's escape hatch."""


def _alloc_ok_lines(source: str) -> Set[int]:
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if "# alloc-ok" in line
    }


def _check_hot_path_allocs(
    path: str, tree: ast.Module, noqa: Set[int], alloc_ok: Set[int]
) -> Iterator[Tuple[str, int, str]]:
    normalized = path.replace(os.sep, "/")
    if not any(marker in normalized for marker in _ALLOC_HOT_PATHS):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        finding = None
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "bytes"
            and node.args
        ):
            finding = "`bytes(...)`"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, bytes)
        ):
            finding = f"`{node.func.value.value!r}.join(...)`"
        if (
            finding
            and node.lineno not in alloc_ok
            and node.lineno not in noqa
        ):
            yield (
                path,
                node.lineno,
                f"ALLOC001 {finding} copies a buffer on the zero-copy "
                "data path; use memoryview slices or the pooled segment "
                "buffer, or mark a deliberate copy with `# alloc-ok:`",
            )


def lint_file(path: str) -> List[Tuple[str, int, str]]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"E999 syntax error: {exc.msg}")]
    noqa = _noqa_lines(source)
    findings = list(_check_unused_imports(path, tree, noqa))
    findings.extend(_check_unused_locals(path, tree, noqa))
    findings.extend(_check_obs_print_bypass(path, tree, noqa))
    findings.extend(_check_obs_registered_names(path, tree, noqa))
    findings.extend(_check_recovery_broad_except(path, tree, noqa))
    findings.extend(_check_chaos_broad_except(path, tree, noqa))
    findings.extend(_check_service_wall_clock(path, tree, noqa))
    findings.extend(
        _check_hot_path_allocs(path, tree, noqa, _alloc_ok_lines(source))
    )
    return findings


def main(argv: List[str] | None = None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or [
        "src",
        "tests",
        "benchmarks",
    ]
    findings: List[Tuple[str, int, str]] = []
    checked = 0
    for path in _iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(path))
    findings.sort()
    for file_path, lineno, message in findings:
        print(f"{file_path}:{lineno}: {message}")
    print(
        f"{len(findings)} finding(s) in {checked} file(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
