"""Build, persist and compare wall-clock perf reports.

``benchmarks/perf_harness.py`` times the *simulator itself* (Python
wall-clock, not simulated seconds) on the paper's workloads and records
the results as JSON — ``BENCH_hotpaths.json`` at the repository root —
so the performance trajectory of the hot paths is tracked from PR to PR
and regressions are visible in review.

The schema is deliberately small and stable:

* ``workloads.<name>.after`` — the current implementation's numbers;
* ``workloads.<name>.before`` — the same workload with the pre-PR
  (O(num_segments) scans, O(pending) durability, Packer-per-field
  serialization) implementations patched back in, when the harness was
  run with the comparison enabled;
* ``workloads.<name>.speedup`` — before/after wall-clock ratio;
* ``workloads.<name>.telemetry_on`` — the same workload with a live
  :class:`repro.obs.Telemetry` recording, and
  ``workloads.<name>.telemetry_overhead`` the on/off wall-clock ratio
  minus one (0.05 = telemetry costs 5%);
* ``probes`` — operation-count evidence that the O(1) invariants hold
  (see :mod:`repro.lfs.segment_usage` and :mod:`repro.disk.device`);
* ``checks`` — pass/fail booleans the harness asserted;
* ``baseline`` — the committed report the telemetry-disabled leg was
  held to, with either the regression list or a skip note.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional

SCHEMA_VERSION = 1


def workload_entry(
    wall_seconds: float,
    ops: int,
    simulated_seconds: float,
    cpu_seconds: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One timed run of one workload.

    ``cpu_seconds`` is the ``time.process_time()`` delta over the same
    span as ``wall_seconds``: process CPU time, immune to the machine's
    other load.  A wall/cpu divergence flags a noisy-neighbour run whose
    wall-clock numbers should not be trusted.  (The measurement happens
    in the harness — this module never touches the simulated clock, so
    the SVC001 wall-clock lint does not apply here.)
    """
    entry: Dict[str, Any] = {
        "wall_seconds": round(wall_seconds, 6),
        "ops": ops,
        "ops_per_second": round(ops / wall_seconds, 2) if wall_seconds > 0 else None,
        "simulated_seconds": round(simulated_seconds, 6),
    }
    if cpu_seconds is not None:
        entry["cpu_seconds"] = round(cpu_seconds, 6)
    if extra:
        entry["extra"] = extra
    return entry


def build_report(
    scale: str,
    workloads: Dict[str, Dict[str, Any]],
    probes: Dict[str, Any],
    checks: Dict[str, bool],
) -> Dict[str, Any]:
    """Assemble the full report dict (see module docstring for schema)."""
    for name, entry in workloads.items():
        before = entry.get("before")
        after = entry.get("after")
        if before and after and after["wall_seconds"] > 0:
            entry["speedup"] = round(
                before["wall_seconds"] / after["wall_seconds"], 3
            )
    return {
        "schema": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[1:],
        "scale": scale,
        "workloads": workloads,
        "probes": probes,
        "checks": checks,
    }


def write_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench report schema {report.get('schema')!r} "
            f"in {path!r}"
        )
    return report


def find_regressions(
    old: Dict[str, Any], new: Dict[str, Any], tolerance: float = 0.30
) -> List[str]:
    """Workloads whose wall-clock got worse than ``tolerance`` vs ``old``.

    Wall-clock numbers are machine-dependent; this is only meaningful
    when both reports come from the same machine (CI runners, local
    before/after runs).  Returns human-readable descriptions, empty if
    nothing regressed.
    """
    regressions: List[str] = []
    for name, entry in old.get("workloads", {}).items():
        old_after = entry.get("after")
        new_after = new.get("workloads", {}).get(name, {}).get("after")
        if not old_after or not new_after:
            continue
        old_wall = old_after["wall_seconds"]
        new_wall = new_after["wall_seconds"]
        if old_wall > 0 and new_wall > old_wall * (1.0 + tolerance):
            regressions.append(
                f"{name}: {old_wall:.3f}s -> {new_wall:.3f}s "
                f"({new_wall / old_wall:.2f}x, tolerance {1 + tolerance:.2f}x)"
            )
    return regressions


def diff_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_regression: float = 0.03,
) -> Dict[str, Any]:
    """Per-workload wall-clock comparison of two bench reports.

    The engine behind ``repro bench-diff A.json B.json``: every
    workload present in both reports is compared on its ``after`` leg,
    and any whose wall-clock grew by more than ``max_regression``
    (a fraction: 0.03 = 3%) lands in ``regressions``.  Workloads only
    one side has are listed, not judged.  Scale mismatches are flagged
    as incomparable — CI should treat that as a wiring error, not a
    pass.
    """
    result: Dict[str, Any] = {
        "max_regression": max_regression,
        "comparable": old.get("scale") == new.get("scale"),
        "old_scale": old.get("scale"),
        "new_scale": new.get("scale"),
        "workloads": {},
        "regressions": [],
        "only_old": [],
        "only_new": [],
    }
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    result["only_old"] = sorted(set(old_workloads) - set(new_workloads))
    result["only_new"] = sorted(set(new_workloads) - set(old_workloads))
    if not result["comparable"]:
        result["regressions"].append(
            f"scale mismatch: {old.get('scale')!r} vs {new.get('scale')!r} "
            f"(reports are not comparable)"
        )
        return result
    for name in sorted(set(old_workloads) & set(new_workloads)):
        old_after = old_workloads[name].get("after")
        new_after = new_workloads[name].get("after")
        if not old_after or not new_after:
            continue
        old_wall = old_after["wall_seconds"]
        new_wall = new_after["wall_seconds"]
        ratio = (new_wall / old_wall) if old_wall > 0 else float("inf")
        entry = {
            "old_wall_seconds": old_wall,
            "new_wall_seconds": new_wall,
            "ratio": round(ratio, 4),
            "regressed": old_wall > 0
            and new_wall > old_wall * (1.0 + max_regression),
        }
        result["workloads"][name] = entry
        if entry["regressed"]:
            result["regressions"].append(
                f"{name}: {old_wall:.3f}s -> {new_wall:.3f}s "
                f"({ratio:.2f}x, limit {1.0 + max_regression:.2f}x)"
            )
    return result


def render_diff(diff: Dict[str, Any]) -> str:
    """Terminal rendering of a :func:`diff_reports` result."""
    lines = [
        f"bench diff — max regression "
        f"{diff['max_regression']:.1%} "
        f"(scales: {diff['old_scale']} vs {diff['new_scale']})",
        f"{'workload':<28} {'old s':>9} {'new s':>9} {'ratio':>7}",
    ]
    for name, entry in diff["workloads"].items():
        flag = "  REGRESSED" if entry["regressed"] else ""
        lines.append(
            f"{name:<28} {entry['old_wall_seconds']:>9.3f} "
            f"{entry['new_wall_seconds']:>9.3f} "
            f"{entry['ratio']:>6.2f}x{flag}"
        )
    for name in diff["only_old"]:
        lines.append(f"{name:<28} (only in old report)")
    for name in diff["only_new"]:
        lines.append(f"{name:<28} (only in new report)")
    if diff["regressions"]:
        lines.append(f"{len(diff['regressions'])} regression(s):")
        lines.extend(f"  {item}" for item in diff["regressions"])
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def is_service_report(report: Dict[str, Any]) -> bool:
    """True for ``BENCH_service.json``-shaped reports (the service
    scaling sweep, optionally carrying a ``cluster`` section)."""
    return report.get("benchmark") == "service_scaling"


def load_any_report(path: str) -> Dict[str, Any]:
    """Load either report family ``repro bench-diff`` understands.

    ``BENCH_hotpaths.json`` carries a ``schema`` version and goes
    through :func:`load_report`; ``BENCH_service.json`` is recognized
    by its ``benchmark`` tag (its numbers are simulated time — a pure
    function of the seed — so it needs no schema negotiation).
    """
    with open(path) as handle:
        report = json.load(handle)
    if is_service_report(report):
        return report
    if report.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench report schema {report.get('schema')!r} "
            f"in {path!r}"
        )
    return report


def _service_points(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Flatten a service report into ``label -> point`` rows: the
    single-volume curve plus any cluster sweep points."""
    points: Dict[str, Dict[str, Any]] = {}
    for row in report.get("points", []):
        points[f"service c{row['clients']}"] = row
    for row in report.get("cluster", {}).get("points", []):
        points[f"cluster {row['shards']}x{row['clients']}"] = row
    return points


def diff_service_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_regression: float = 0.03,
) -> Dict[str, Any]:
    """Point-by-point comparison of two service scaling reports.

    The simulated numbers are deterministic, so the tolerance here
    guards against *behavioral* drift, not machine noise: a point
    regresses if its throughput fell by more than ``max_regression``
    or its p99 latency grew by more than the same fraction.  Seed
    mismatches make the reports incomparable.
    """
    result: Dict[str, Any] = {
        "kind": "service",
        "max_regression": max_regression,
        "comparable": old.get("seed") == new.get("seed"),
        "old_seed": old.get("seed"),
        "new_seed": new.get("seed"),
        "points": {},
        "regressions": [],
        "only_old": [],
        "only_new": [],
    }
    old_points = _service_points(old)
    new_points = _service_points(new)
    result["only_old"] = sorted(set(old_points) - set(new_points))
    result["only_new"] = sorted(set(new_points) - set(old_points))
    if not result["comparable"]:
        result["regressions"].append(
            f"seed mismatch: {old.get('seed')!r} vs {new.get('seed')!r} "
            f"(reports are not comparable)"
        )
        return result
    for label in sorted(set(old_points) & set(new_points)):
        old_row, new_row = old_points[label], new_points[label]
        old_tput = old_row.get("throughput_per_second", 0.0)
        new_tput = new_row.get("throughput_per_second", 0.0)
        old_p99 = old_row.get("latency_p99_seconds", 0.0)
        new_p99 = new_row.get("latency_p99_seconds", 0.0)
        slower = old_tput > 0 and new_tput < old_tput * (
            1.0 - max_regression
        )
        laggier = old_p99 > 0 and new_p99 > old_p99 * (
            1.0 + max_regression
        )
        entry = {
            "old_throughput": old_tput,
            "new_throughput": new_tput,
            "old_p99_seconds": old_p99,
            "new_p99_seconds": new_p99,
            "regressed": slower or laggier,
        }
        result["points"][label] = entry
        if slower:
            result["regressions"].append(
                f"{label}: throughput {old_tput:.1f} -> {new_tput:.1f} "
                f"req/s (limit -{max_regression:.0%})"
            )
        if laggier:
            result["regressions"].append(
                f"{label}: p99 {old_p99 * 1000:.3f}ms -> "
                f"{new_p99 * 1000:.3f}ms (limit +{max_regression:.0%})"
            )
    return result


def render_service_diff(diff: Dict[str, Any]) -> str:
    """Terminal rendering of a :func:`diff_service_reports` result."""
    lines = [
        f"service bench diff — max regression "
        f"{diff['max_regression']:.1%} "
        f"(seeds: {diff['old_seed']} vs {diff['new_seed']})",
        f"{'point':<24} {'old req/s':>10} {'new req/s':>10} "
        f"{'old p99 ms':>11} {'new p99 ms':>11}",
    ]
    for label, entry in diff["points"].items():
        flag = "  REGRESSED" if entry["regressed"] else ""
        lines.append(
            f"{label:<24} {entry['old_throughput']:>10.1f} "
            f"{entry['new_throughput']:>10.1f} "
            f"{entry['old_p99_seconds'] * 1000:>11.3f} "
            f"{entry['new_p99_seconds'] * 1000:>11.3f}{flag}"
        )
    for label in diff["only_old"]:
        lines.append(f"{label:<24} (only in old report)")
    for label in diff["only_new"]:
        lines.append(f"{label:<24} (only in new report)")
    if diff["regressions"]:
        lines.append(f"{len(diff['regressions'])} regression(s):")
        lines.extend(f"  {item}" for item in diff["regressions"])
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def summarize(report: Dict[str, Any]) -> str:
    """Render the report as a terminal table."""
    lines = [
        f"perf harness — scale={report['scale']}  "
        f"python={report['python']}  {report['generated_at']}",
        f"{'workload':<28} {'after s':>9} {'ops/s':>10} "
        f"{'before s':>9} {'speedup':>8}",
    ]
    for name, entry in report["workloads"].items():
        after = entry.get("after") or {}
        before = entry.get("before") or {}
        lines.append(
            f"{name:<28} "
            f"{after.get('wall_seconds', float('nan')):>9.3f} "
            f"{(after.get('ops_per_second') or 0):>10.1f} "
            + (
                f"{before['wall_seconds']:>9.3f} {entry.get('speedup', 0):>7.2f}x"
                if before
                else f"{'-':>9} {'-':>8}"
            )
        )
        telemetry_on = entry.get("telemetry_on")
        if telemetry_on:
            lines.append(
                f"  telemetry on: {telemetry_on['wall_seconds']:.3f}s "
                f"({entry.get('telemetry_overhead', 0.0):+.1%})"
            )
        tracing_on = entry.get("tracing_on")
        if tracing_on:
            lines.append(
                f"  tracing on:   {tracing_on['wall_seconds']:.3f}s "
                f"({entry.get('tracing_overhead', 0.0):+.1%})"
            )
    for name, ok in report["checks"].items():
        lines.append(f"  check {name}: {'ok' if ok else 'FAILED'}")
    baseline = report.get("baseline")
    if baseline:
        if "skipped" in baseline:
            lines.append(f"  baseline: skipped ({baseline['skipped']})")
        else:
            count = len(baseline.get("regressions", []))
            lines.append(
                f"  baseline: {count} regression(s) vs {baseline['path']} "
                f"(tolerance {baseline['tolerance']:.0%})"
            )
    return "\n".join(lines)
