"""Exception hierarchy for the LFS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors
(``TypeError`` and friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DiskError(ReproError):
    """Base class for errors raised by the simulated disk layer."""


class OutOfRangeError(DiskError):
    """A sector address or length fell outside the device."""


class DeviceCrashedError(DiskError):
    """I/O was attempted on a device that has crashed and not been revived."""


class MediaError(DiskError):
    """A sector is permanently unreadable (grown defect, EIO).

    Retrying does not help; the data at this address is gone.  Layers
    above must either reconstruct the data from elsewhere (alternate
    checkpoint region), skip it (roll-forward stops at the log tail), or
    quarantine the region that contains it (the cleaner)."""

    def __init__(self, message: str, sector: int = -1) -> None:
        super().__init__(message)
        self.sector = sector


class TransientIOError(DiskError):
    """A read failed but a retry of the same request may succeed.

    Models recoverable media noise (ECC retries, vibration).  The timing
    layer retries these with backoff; they should never escape to the
    file system."""


class FileSystemError(ReproError):
    """Base class for file-system level errors."""


class NoSpaceError(FileSystemError):
    """The file system ran out of usable disk space (ENOSPC)."""


class NoInodesError(NoSpaceError):
    """The file system ran out of inodes."""


class FileNotFoundError_(FileSystemError):
    """A path component did not resolve (ENOENT).

    Named with a trailing underscore to avoid shadowing the builtin; exported
    from the package as ``FsFileNotFoundError``.
    """


class FileExistsError_(FileSystemError):
    """The target of a create already exists (EEXIST)."""


class NotADirectoryError_(FileSystemError):
    """A non-final path component resolved to a regular file (ENOTDIR)."""


class IsADirectoryError_(FileSystemError):
    """A file operation was attempted on a directory (EISDIR)."""


class DirectoryNotEmptyError(FileSystemError):
    """rmdir on a directory that still has entries (ENOTEMPTY)."""


class InvalidArgumentError(FileSystemError):
    """A caller-supplied argument was invalid (EINVAL)."""


class StaleHandleError(FileSystemError):
    """An operation used a handle whose file was deleted or FS unmounted."""


class ReadOnlyFSError(FileSystemError):
    """A mutation was attempted on a file system in degraded read-only
    mode (EROFS).

    Raised once the quarantine budget is exhausted: media damage has
    destroyed more segments than the volume is allowed to silently lose,
    so writes are refused while reads of surviving data continue.  The
    service layer maps this to a ``REJECT_DEGRADED`` admission outcome
    rather than letting it escape a request."""


class ConfigError(InvalidArgumentError):
    """A rig configuration violates one or more cross-field constraints.

    Unlike :class:`InvalidArgumentError` (one bad field, raised by the
    dataclass validators), this carries *every* violated constraint found
    by :func:`repro.service.config.validate_rig` so a misconfigured rig
    is fixed in one round trip."""

    def __init__(self, violations) -> None:
        self.violations = tuple(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"invalid rig configuration ({len(self.violations)} "
            f"constraint(s) violated):\n{lines}"
        )


class CorruptionError(FileSystemError):
    """On-disk state failed validation (bad magic, checksum, or pointer)."""


class ChecksumMismatch(CorruptionError):
    """A CRC-protected structure (checkpoint, summary) failed its check.

    Distinguished from plain :class:`CorruptionError` so recovery code
    can tell "this structure was damaged in place" (fall back to the
    alternate copy, stop roll-forward) from "this pointer never made
    sense"."""


class TornWriteError(CorruptionError):
    """A multi-block structure persisted only partially across a crash.

    Raised when the readable prefix of a structure is valid but the
    structure claims more blocks than actually survived — the signature
    of a torn write at the end of the log."""


class CheckpointError(CorruptionError):
    """No valid checkpoint region could be loaded at mount time."""


class CleanerError(FileSystemError):
    """The segment cleaner entered an impossible state."""


class FsckError(FileSystemError):
    """fsck found damage it could not repair."""
