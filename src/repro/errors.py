"""Exception hierarchy for the LFS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors
(``TypeError`` and friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DiskError(ReproError):
    """Base class for errors raised by the simulated disk layer."""


class OutOfRangeError(DiskError):
    """A sector address or length fell outside the device."""


class DeviceCrashedError(DiskError):
    """I/O was attempted on a device that has crashed and not been revived."""


class FileSystemError(ReproError):
    """Base class for file-system level errors."""


class NoSpaceError(FileSystemError):
    """The file system ran out of usable disk space (ENOSPC)."""


class NoInodesError(NoSpaceError):
    """The file system ran out of inodes."""


class FileNotFoundError_(FileSystemError):
    """A path component did not resolve (ENOENT).

    Named with a trailing underscore to avoid shadowing the builtin; exported
    from the package as ``FsFileNotFoundError``.
    """


class FileExistsError_(FileSystemError):
    """The target of a create already exists (EEXIST)."""


class NotADirectoryError_(FileSystemError):
    """A non-final path component resolved to a regular file (ENOTDIR)."""


class IsADirectoryError_(FileSystemError):
    """A file operation was attempted on a directory (EISDIR)."""


class DirectoryNotEmptyError(FileSystemError):
    """rmdir on a directory that still has entries (ENOTEMPTY)."""


class InvalidArgumentError(FileSystemError):
    """A caller-supplied argument was invalid (EINVAL)."""


class StaleHandleError(FileSystemError):
    """An operation used a handle whose file was deleted or FS unmounted."""


class CorruptionError(FileSystemError):
    """On-disk state failed validation (bad magic, checksum, or pointer)."""


class CheckpointError(CorruptionError):
    """No valid checkpoint region could be loaded at mount time."""


class CleanerError(FileSystemError):
    """The segment cleaner entered an impossible state."""


class FsckError(FileSystemError):
    """fsck found damage it could not repair."""
