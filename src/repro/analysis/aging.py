"""Long-run aging study.

The paper closes: "the real test of a file system is its performance
over months and years of use.  As of this writing LFS has not been
subjected to a 'real' workload for extended periods of time.  It is
from these workloads that the overheads due to cleaning can be
evaluated."

This module runs that study at simulation speed: the office/engineering
churn (§3's characterization) is applied in epochs, and after each
epoch we record the quantities the paper says matter — cumulative write
cost, the fraction of log writes that were cleaner traffic, how many
clean segments remain, and the distribution of segment utilizations
(whose shape §5.3 explicitly says "is currently not known").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.lfs.filesystem import LogStructuredFS
from repro.workloads.office import OfficeState, run_office_workload


@dataclass(frozen=True)
class AgingSample:
    """State of an LFS after one epoch of churn."""

    epoch: int
    operations_total: int
    write_cost: float
    cleaner_write_fraction: float
    clean_segments: int
    segments_cleaned_total: int
    live_fraction: float
    utilization_histogram: List[int]
    ops_per_second: float


@dataclass
class AgingStudy:
    """Per-epoch samples plus convergence helpers."""

    samples: List[AgingSample] = field(default_factory=list)

    def write_costs(self) -> List[float]:
        return [sample.write_cost for sample in self.samples]

    def steady_state_write_cost(self, tail: int = 3) -> float:
        """Mean write cost over the final ``tail`` epochs."""
        if not self.samples:
            return 0.0
        window = self.samples[-tail:]
        return sum(sample.write_cost for sample in window) / len(window)

    def converged(self, tail: int = 3, tolerance: float = 0.15) -> bool:
        """Did write cost settle (max deviation within the tail window)?"""
        if len(self.samples) < tail + 1:
            return False
        window = self.write_costs()[-tail:]
        center = sum(window) / len(window)
        if center == 0:
            return True
        return max(abs(value - center) for value in window) <= (
            tolerance * center
        )


def run_aging_study(
    fs: LogStructuredFS,
    epochs: int = 8,
    operations_per_epoch: int = 1500,
    target_population: int = 300,
    seed: int = 0,
    read_fraction: float = 0.4,
) -> AgingStudy:
    """Age an LFS through ``epochs`` rounds of office churn.

    The same directory and file population persist across epochs, so
    the log genuinely ages: segment utilizations spread out, the
    cleaner's share of the write traffic finds its steady state, and
    the write-cost series shows whether cleaning overhead is bounded.
    """
    study = AgingStudy()
    operations_total = 0
    state = OfficeState()
    for epoch in range(epochs):
        result = run_office_workload(
            fs,
            operations=operations_per_epoch,
            target_population=target_population,
            read_fraction=read_fraction,
            seed=seed + epoch,
            state=state,
        )
        operations_total += result.operations
        log_bytes = max(1, fs.segments.log_bytes_written)
        study.samples.append(
            AgingSample(
                epoch=epoch,
                operations_total=operations_total,
                write_cost=fs.write_cost(),
                cleaner_write_fraction=(
                    fs.segments.cleaner_bytes_written / log_bytes
                ),
                clean_segments=fs.usage.clean_count(),
                segments_cleaned_total=fs.cleaner.stats.segments_cleaned,
                live_fraction=(
                    fs.usage.total_live_bytes()
                    / fs.layout.data_capacity_bytes
                ),
                utilization_histogram=fs.segment_utilization_histogram(),
                ops_per_second=result.ops_per_second,
            )
        )
    return study
