"""Metrics, analytic models and report formatting."""

from repro.analysis.metrics import PhaseTimer, speedup
from repro.analysis.report import Table, format_series
from repro.analysis.write_cost import (
    analytic_cleaning_rate,
    analytic_write_cost,
)

__all__ = [
    "PhaseTimer",
    "speedup",
    "Table",
    "format_series",
    "analytic_write_cost",
    "analytic_cleaning_rate",
]
