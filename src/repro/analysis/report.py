"""Plain-text tables and series for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


class Table:
    """A fixed-header ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def row(self, *cells: Cell) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([_format_cell(cell) for cell in cells])
        return self

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            h.ljust(widths[i]) for i, h in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(
    name: str, points: Iterable[Tuple[Cell, Cell]], x_label: str, y_label: str
) -> str:
    """One labelled x→y series, figure-caption style."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_format_cell(x):>8} -> {_format_cell(y)}")
    return "\n".join(lines)
