"""Analytic cleaning-cost model (§5.3's discussion, closed form).

§5.3 observes that "the cost of segment cleaning is directly related to
the utilization ... of the segments being cleaned".  The closed form —
later made famous by Rosenblum's SOSP '91 follow-up — falls straight out
of the mechanics implemented in :mod:`repro.lfs.cleaner`:

* cleaning a segment at utilization *u* reads the whole segment and
  writes back *u* of it as live data;
* that work yields ``1 - u`` of a segment of genuinely new free space;

so the **write cost** (total bytes moved per byte of new data written,
counting the eventual cost of reclaiming its space) is::

    write_cost(u) = 2 / (1 - u)        for 0 < u < 1
    write_cost(0) = 1                  (empty segments are free, §5.3)

and the rate at which clean segments can be generated is::

    rate(u) = (1 - u) * S / (T_read(S) + T_write(u * S))

with *S* the segment size.  The MODEL benchmark compares these against
the measured Figure 5 sweep.
"""

from __future__ import annotations

from repro.disk.geometry import DiskGeometry
from repro.errors import InvalidArgumentError
from repro.units import KIB


def analytic_write_cost(utilization: float) -> float:
    """Bytes of log writes per byte of new data, at cleaning utilization u."""
    if not 0.0 <= utilization < 1.0:
        raise InvalidArgumentError(
            f"utilization must be in [0, 1): {utilization}"
        )
    if utilization == 0.0:
        return 1.0
    # Read the segment (1) plus write back the live fraction (u), all to
    # recover (1 - u) of new space, plus writing the new data itself.
    return 2.0 / (1.0 - utilization)


def analytic_cleaning_rate(
    utilization: float,
    geometry: DiskGeometry,
    segment_size: int,
) -> float:
    """Model of Figure 5's y-axis: KB/s of clean segments generated.

    An empty segment (u == 0) costs nothing to clean (the usage array
    already proves it is empty), so the model returns infinity there —
    in practice the measured rate at u=0 is bounded only by CPU
    bookkeeping.
    """
    if not 0.0 <= utilization < 1.0:
        raise InvalidArgumentError(
            f"utilization must be in [0, 1): {utilization}"
        )
    if utilization == 0.0:
        return float("inf")
    seek = geometry.avg_seek + geometry.rotation / 2.0
    read_time = seek + geometry.transfer_time(segment_size)
    write_time = seek * utilization + geometry.transfer_time(
        int(segment_size * utilization)
    )
    net_clean_bytes = (1.0 - utilization) * segment_size
    return (net_clean_bytes / KIB) / (read_time + write_time)
