"""Small measurement helpers for simulated-time experiments."""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidArgumentError
from repro.sim.clock import SimClock


class PhaseTimer:
    """Context manager measuring simulated seconds.

    >>> timer = PhaseTimer(clock)
    >>> with timer:
    ...     run_phase()
    >>> timer.elapsed  # simulated seconds the phase took
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.start: Optional[float] = None
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self.start = self.clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.start is not None
        self.elapsed = self.clock.now() - self.start

    def rate(self, count: float) -> float:
        """count/second over the measured phase."""
        if self.elapsed is None:
            raise InvalidArgumentError("phase has not finished")
        if self.elapsed <= 0:
            return float("inf")
        return count / self.elapsed


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """How many times faster the improved system is."""
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds
