"""Bounded-retry backoff policy for transient read errors.

The timing layer retries :class:`~repro.errors.TransientIOError` reads
(ECC retries, vibration — see :mod:`repro.faults`) with exponential
backoff before giving up.  The schedule used to be hard-coded; it is now
a frozen policy object carried on :class:`~repro.lfs.config.LfsConfig`
so experiments can tune how patient the disk is, and so the defaults
are written down in exactly one place.

The defaults reproduce the historical constants byte-for-byte: three
attempts at 2 ms, 4 ms, 8 ms, far below the 50 ms cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidArgumentError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule for transient read retries."""

    base_delay: float = 0.002
    """Backoff charged to the busy timeline for the first retry."""

    multiplier: float = 2.0
    """Growth factor between consecutive retries."""

    cap: float = 0.05
    """Upper bound on any single retry's backoff."""

    max_attempts: int = 3
    """Retries before the ``TransientIOError`` propagates."""

    def __post_init__(self) -> None:
        if self.base_delay < 0.0:
            raise InvalidArgumentError(
                f"retry base_delay must be >= 0: {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise InvalidArgumentError(
                f"retry multiplier must be >= 1: {self.multiplier}"
            )
        if self.cap < self.base_delay:
            raise InvalidArgumentError(
                f"retry cap {self.cap} below base_delay {self.base_delay}"
            )
        if self.max_attempts < 0:
            raise InvalidArgumentError(
                f"retry max_attempts must be >= 0: {self.max_attempts}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff for retry number ``attempt`` (1-based), capped."""
        return min(self.cap, self.base_delay * self.multiplier ** (attempt - 1))
