"""A striped disk array (RAID-0) over the simulated timing model.

§2.1 of the paper: "the bandwidth and throughput of disk subsystems can
be substantially increased by the use of arrays of disks such as RAIDs,
[but] the access time for small disk accesses is not substantially
improved".  That asymmetry is exactly what LFS exploits — segment-sized
writes stripe across every spindle, while the FFS baseline's small
synchronous writes still pay a full seek on one spindle per operation.

:class:`StripedDisk` duck-types :class:`~repro.disk.sim_disk.SimDisk`:
one flat sector address space backed by a single crash-aware device,
with addresses interleaved across ``num_disks`` member spindles in
``stripe_sectors`` units.  Each member has its own head position and
busy timeline; a request is split into per-member runs that proceed in
parallel, and completes when the slowest member finishes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.disk.device import SectorDevice
from repro.disk.geometry import DiskGeometry
from repro.disk.stats import DiskStats
from repro.disk.trace import AccessTier, TraceEvent, TraceRecorder
from repro.errors import InvalidArgumentError, OutOfRangeError
from repro.sim.clock import SimClock
from repro.units import KIB


class StripedDisk:
    """RAID-0 array of identical spindles; SimDisk-compatible."""

    def __init__(
        self,
        geometry: DiskGeometry,
        clock: SimClock,
        num_disks: int,
        stripe_bytes: int = 64 * KIB,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if num_disks < 1:
            raise InvalidArgumentError(f"need at least one disk: {num_disks}")
        if stripe_bytes % geometry.sector_size:
            raise InvalidArgumentError(
                "stripe size must be a whole number of sectors"
            )
        self.geometry = geometry
        """Per-member geometry; total capacity is num_disks x this."""
        self.clock = clock
        self.num_disks = num_disks
        self.stripe_sectors = stripe_bytes // geometry.sector_size
        self.device = SectorDevice(
            geometry.num_sectors * num_disks, geometry.sector_size
        )
        self.trace = trace
        self.stats = DiskStats()
        self._head_pos = [0] * num_disks
        self._busy_until = [0.0] * num_disks
        self.vectored_reads = 0

    @property
    def total_bytes(self) -> int:
        return self.device.total_bytes

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    def _split(self, sector: int, count: int) -> Dict[int, List[Tuple[int, int]]]:
        """Split a flat request into per-member (sector, count) runs."""
        if count <= 0:
            raise OutOfRangeError(f"transfer needs at least one sector: {count}")
        runs: Dict[int, List[Tuple[int, int]]] = {}
        position = sector
        remaining = count
        while remaining > 0:
            stripe_index = position // self.stripe_sectors
            member = stripe_index % self.num_disks
            member_stripe = stripe_index // self.num_disks
            offset_in_stripe = position % self.stripe_sectors
            take = min(remaining, self.stripe_sectors - offset_in_stripe)
            member_sector = (
                member_stripe * self.stripe_sectors + offset_in_stripe
            )
            member_runs = runs.setdefault(member, [])
            if member_runs and (
                member_runs[-1][0] + member_runs[-1][1] == member_sector
            ):
                member_runs[-1] = (
                    member_runs[-1][0],
                    member_runs[-1][1] + take,
                )
            else:
                member_runs.append((member_sector, take))
            position += take
            remaining -= take
        return runs

    def _member_service(self, member: int, sector: int, nbytes: int) -> Tuple[float, AccessTier]:
        distance = abs(sector - self._head_pos[member])
        if distance == 0:
            tier = AccessTier.SEQUENTIAL
            positioning = self.geometry.request_gap
        elif distance <= self.geometry.near_distance:
            tier = AccessTier.NEAR
            positioning = self.geometry.track_seek + self.geometry.rotation / 2
        else:
            tier = AccessTier.FAR
            positioning = self.geometry.avg_seek + self.geometry.rotation / 2
        return positioning + self.geometry.transfer_time(nbytes), tier

    def _schedule(self, sector: int, count: int) -> Tuple[float, float, AccessTier]:
        """Place a request on the member timelines; (start, done, tier).

        The reported tier is the worst tier any member saw (it decides
        the request's character for the trace/stats).
        """
        start = self.clock.now()
        done = start
        worst = AccessTier.SEQUENTIAL
        order = [AccessTier.SEQUENTIAL, AccessTier.NEAR, AccessTier.FAR]
        for member, runs in self._split(sector, count).items():
            member_start = max(start, self._busy_until[member])
            member_done = member_start
            for run_sector, run_count in runs:
                duration, tier = self._member_service(
                    member, run_sector, run_count * self.geometry.sector_size
                )
                member_done += duration
                self._head_pos[member] = run_sector + run_count
                if order.index(tier) > order.index(worst):
                    worst = tier
            self._busy_until[member] = member_done
            done = max(done, member_done)
        return start, done, worst

    # ------------------------------------------------------------------
    # I/O (SimDisk-compatible surface)
    # ------------------------------------------------------------------

    def read(
        self,
        sector: int,
        count: int,
        label: str = "",
        *,
        vectored: bool = False,
        copy: bool = False,
    ) -> "bytes | memoryview":
        issue = self.clock.now()
        start, done, tier = self._schedule(sector, count)
        if vectored:
            self.vectored_reads += 1
        data = self.device.read(sector, count, copy=copy)
        self.stats.record(False, len(data), True, tier.value, done - start)
        if self.trace is not None:
            self.trace.record(
                TraceEvent(
                    issue_time=issue,
                    complete_time=done,
                    is_write=False,
                    sector=sector,
                    nsectors=count,
                    nbytes=len(data),
                    sync=True,
                    tier=tier,
                    label=label,
                )
            )
        self.clock.advance_to(done)
        self.device.mark_durable(self.clock.now())
        return data

    def write(
        self, sector: int, data: bytes, sync: bool = False, label: str = ""
    ) -> float:
        if not data:
            raise OutOfRangeError("cannot write zero bytes")
        issue = self.clock.now()
        count = len(data) // self.geometry.sector_size
        start, done, tier = self._schedule(sector, count)
        # Synchronous requests advance the clock past ``done`` before
        # returning, so the device can skip their undo records.
        self.device.write(sector, data, completion_time=done, durable=sync)
        self.stats.record(True, len(data), sync, tier.value, done - start)
        if self.trace is not None:
            self.trace.record(
                TraceEvent(
                    issue_time=issue,
                    complete_time=done,
                    is_write=True,
                    sector=sector,
                    nsectors=count,
                    nbytes=len(data),
                    sync=sync,
                    tier=tier,
                    label=label,
                )
            )
        if sync:
            self.clock.advance_to(done)
        self.device.mark_durable(self.clock.now())
        return done

    def drain(self) -> None:
        self.clock.advance_to(max(self._busy_until))
        self.device.mark_durable(self.clock.now())

    @property
    def busy_until(self) -> float:
        return max(self._busy_until)

    @property
    def idle(self) -> bool:
        return self.busy_until <= self.clock.now()

    def queue_delay(self) -> float:
        return max(0.0, self.busy_until - self.clock.now())

    def crash(self) -> None:
        self.device.crash(self.clock.now())
        now = self.clock.now()
        self._busy_until = [now] * self.num_disks
        self._head_pos = [0] * self.num_disks

    def revive(self) -> None:
        self.device.revive()

    def __repr__(self) -> str:
        return (
            f"StripedDisk({self.num_disks} x {self.geometry.name}, "
            f"stripe={self.stripe_sectors * self.geometry.sector_size}B)"
        )
