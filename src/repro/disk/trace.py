"""Per-request disk trace capture and rendering.

The paper's Figures 1 and 2 are pictures of the *disk access pattern*
caused by creating two small files: eight small random writes (half of
them synchronous) under the BSD file system versus one large sequential
write under LFS.  A :class:`TraceRecorder` attached to a
:class:`~repro.disk.sim_disk.SimDisk` captures exactly the information in
those figures — direction, location, size, synchronicity, positioning
tier and a file-system-supplied semantic label — and can render it as a
table or a one-line ASCII "disk image".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.units import fmt_bytes, fmt_time


class AccessTier(str, enum.Enum):
    """Head-positioning class of a request (see :mod:`repro.disk.geometry`)."""

    SEQUENTIAL = "sequential"
    NEAR = "near"
    FAR = "far"


@dataclass(frozen=True)
class TraceEvent:
    """One disk request as observed by the timing layer."""

    issue_time: float
    complete_time: float
    is_write: bool
    sector: int
    nsectors: int
    nbytes: int
    sync: bool
    tier: AccessTier
    label: str

    @property
    def duration(self) -> float:
        return self.complete_time - self.issue_time

    def describe(self) -> str:
        direction = "write" if self.is_write else "read"
        mode = "sync" if self.sync else "async"
        return (
            f"{fmt_time(self.issue_time):>9}  {direction:5} {mode:5} "
            f"{self.tier.value:10} sector {self.sector:>8} "
            f"{fmt_bytes(self.nbytes):>9}  {self.label}"
        )


@dataclass
class TraceRecorder:
    """Accumulates :class:`TraceEvent` records from a :class:`SimDisk`.

    ``max_events`` bounds memory on long workloads: once the cap is
    reached, further events are counted in ``dropped_events`` instead of
    stored (the figures only ever need the first few thousand requests;
    a cleaning-heavy run can issue millions).  ``None`` means unbounded.
    """

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True
    max_events: Optional[int] = None
    dropped_events: int = 0

    def record(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    def writes(self) -> List[TraceEvent]:
        return [e for e in self.events if e.is_write]

    def reads(self) -> List[TraceEvent]:
        return [e for e in self.events if not e.is_write]

    def sync_writes(self) -> List[TraceEvent]:
        return [e for e in self.events if e.is_write and e.sync]

    def random_requests(self) -> List[TraceEvent]:
        """Requests that required a seek (near or far tier)."""
        return [e for e in self.events if e.tier is not AccessTier.SEQUENTIAL]

    def table(self, only_writes: bool = False) -> str:
        """Figure 1/2-style listing of the captured requests."""
        rows = self.writes() if only_writes else self.events
        header = (
            f"{'time':>9}  {'op':5} {'mode':5} {'position':10} "
            f"{'sector':>15} {'size':>9}  label"
        )
        lines = [header, "-" * len(header)]
        lines.extend(event.describe() for event in rows)
        return "\n".join(lines)

    def disk_image(self, num_sectors: int, width: int = 72) -> str:
        """ASCII picture of where on disk the traced writes landed.

        Each column of the picture covers ``num_sectors / width`` sectors.
        ``S`` marks a synchronous write, ``w`` an asynchronous one, and
        ``.`` an untouched region — a textual rendering of the disk images
        in the paper's Figures 1 and 2.
        """
        if num_sectors <= 0 or width <= 0:
            raise ValueError("num_sectors and width must be positive")
        cells = ["."] * width
        for event in self.writes():
            first = min(event.sector * width // num_sectors, width - 1)
            last = min(
                (event.sector + event.nsectors - 1) * width // num_sectors,
                width - 1,
            )
            for cell in range(first, last + 1):
                if event.sync:
                    cells[cell] = "S"
                elif cells[cell] != "S":
                    cells[cell] = "w"
        return "".join(cells)

    @staticmethod
    def span(events: Iterable[TraceEvent]) -> Optional[float]:
        """Wall-clock span covered by ``events`` (None if empty)."""
        times = [(e.issue_time, e.complete_time) for e in events]
        if not times:
            return None
        return max(t[1] for t in times) - min(t[0] for t in times)
