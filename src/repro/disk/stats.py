"""Cumulative disk statistics.

The benchmarks derive most paper metrics from these counters: bytes moved,
request counts split by direction and positioning tier, how many requests
were synchronous (blocked the caller), and total disk busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.obs.export import format_fields
from repro.units import fmt_bytes, fmt_time


@dataclass
class DiskStats:
    """Counters accumulated by :class:`repro.disk.sim_disk.SimDisk`."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sync_requests: int = 0
    busy_seconds: float = 0.0
    tier_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def seeks(self) -> int:
        """Requests that required head repositioning (near or far)."""
        return self.tier_counts.get("near", 0) + self.tier_counts.get("far", 0)

    def record(
        self,
        is_write: bool,
        nbytes: int,
        sync: bool,
        tier: str,
        duration: float,
    ) -> None:
        if is_write:
            self.writes += 1
            self.bytes_written += nbytes
        else:
            self.reads += 1
            self.bytes_read += nbytes
        if sync:
            self.sync_requests += 1
        self.busy_seconds += duration
        self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1

    def delta_since(self, earlier: "DiskStats") -> "DiskStats":
        """Stats accumulated since a :meth:`copy` taken earlier."""
        delta = DiskStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            sync_requests=self.sync_requests - earlier.sync_requests,
            busy_seconds=self.busy_seconds - earlier.busy_seconds,
        )
        # Sorted union so delta dicts iterate in a stable order no matter
        # which tiers each side saw first (set iteration order is
        # hash-seed dependent, which made exported deltas flap).
        tiers = sorted(set(self.tier_counts) | set(earlier.tier_counts))
        delta.tier_counts = {
            tier: self.tier_counts.get(tier, 0) - earlier.tier_counts.get(tier, 0)
            for tier in tiers
        }
        return delta

    def copy(self) -> "DiskStats":
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            sync_requests=self.sync_requests,
            busy_seconds=self.busy_seconds,
            tier_counts=dict(self.tier_counts),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Export form: plain scalars plus tier counts in sorted order."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "requests": self.requests,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "sync_requests": self.sync_requests,
            "seeks": self.seeks,
            "busy_seconds": self.busy_seconds,
            "tier_counts": {
                tier: self.tier_counts[tier]
                for tier in sorted(self.tier_counts)
            },
        }

    def summary(self) -> str:
        return format_fields(
            [
                (
                    "",
                    f"{self.requests} requests ({self.reads} reads "
                    f"{fmt_bytes(self.bytes_read)}, {self.writes} writes "
                    f"{fmt_bytes(self.bytes_written)})",
                ),
                ("", f"{self.sync_requests} sync"),
                ("", f"{self.seeks} seeks"),
                ("busy", fmt_time(self.busy_seconds)),
            ]
        )
