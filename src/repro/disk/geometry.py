"""Disk geometry and service-time parameters.

The model has three positioning tiers, chosen because they are the
coarsest model that still reproduces every disk-level effect the paper
relies on:

* **sequential** — the request starts exactly where the previous one
  ended.  The head pays only a small *request gap* (the sectors that fly
  by while the next request is issued), modeled as a quarter revolution.
  This is what makes per-block sequential I/O (BSD FFS writing 8 KB at a
  time) measurably slower than segment-sized I/O (LFS writing 1 MB at a
  time), which is the quantitative heart of the paper.
* **near** — the request lands within ``near_distance`` sectors of the
  head (same cylinder group, in FFS terms): a track-to-track seek plus
  half a revolution of rotational latency.
* **far** — anything else: the average seek plus half a revolution.

Transfer time is bytes divided by the sustained bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KIB, MIB, MILLISECOND, SECTOR_SIZE


@dataclass(frozen=True)
class DiskGeometry:
    """Static parameters of a simulated disk."""

    name: str
    total_bytes: int
    sector_size: int = SECTOR_SIZE
    bandwidth: float = 1.3 * MIB
    """Sustained transfer bandwidth in bytes/second."""
    avg_seek: float = 17.5 * MILLISECOND
    """Average seek time for far accesses."""
    track_seek: float = 3.0 * MILLISECOND
    """Seek time for near accesses (within ``near_distance``)."""
    rotation: float = 16.7 * MILLISECOND
    """Time of one full platter revolution (3,600 RPM)."""
    near_distance: int = (2 * MIB) // SECTOR_SIZE
    """Distance in sectors below which an access counts as near."""

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.total_bytes % self.sector_size:
            raise ValueError(
                f"total_bytes must be a positive multiple of the sector "
                f"size: {self.total_bytes}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")
        for field in ("avg_seek", "track_seek", "rotation"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} cannot be negative")

    @property
    def num_sectors(self) -> int:
        return self.total_bytes // self.sector_size

    @property
    def request_gap(self) -> float:
        """Positioning cost of a back-to-back sequential request."""
        return self.rotation / 4.0

    @property
    def random_access_time(self) -> float:
        """Positioning cost of a far access (seek + half rotation)."""
        return self.avg_seek + self.rotation / 2.0

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to transfer ``nbytes`` at sustained bandwidth."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return nbytes / self.bandwidth


def wren_iv(total_bytes: int = 300 * MIB) -> DiskGeometry:
    """The paper's WREN IV disk, default-sized to its ~300 MB file system."""
    return DiskGeometry(name="WREN IV", total_bytes=total_bytes)


WREN_IV = wren_iv()

FAST_1990S_DISK = DiskGeometry(
    name="fast-1990s",
    total_bytes=1024 * MIB,
    bandwidth=4 * MIB,
    avg_seek=12.0 * MILLISECOND,
    track_seek=2.0 * MILLISECOND,
    rotation=11.1 * MILLISECOND,  # 5,400 RPM
)

NULL_TIMING = DiskGeometry(
    name="null-timing",
    total_bytes=64 * MIB,
    bandwidth=1e15,
    avg_seek=0.0,
    track_seek=0.0,
    rotation=0.0,
    near_distance=128 * KIB // SECTOR_SIZE,
)
"""Zero-cost geometry for correctness tests that do not care about time."""
