"""The disk timing layer.

A :class:`SimDisk` wraps a :class:`~repro.disk.device.SectorDevice` and a
:class:`~repro.sim.clock.SimClock` and assigns every request a service
time from the :class:`~repro.disk.geometry.DiskGeometry` model.  Requests
are serviced in FIFO order on a single *busy-until* timeline:

* a **synchronous** request advances the caller's clock to the request's
  completion time — this is how the BSD baseline's synchronous metadata
  writes stall the simulated application, reproducing §3.1;
* an **asynchronous** request only extends the busy timeline — the caller
  keeps running, which is how LFS decouples application speed from disk
  speed (§4.1).

``drain()`` waits for the timeline (used by ``sync``), and ``crash()``
tells the device which queued writes had not yet completed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.disk.device import SectorDevice
from repro.disk.geometry import DiskGeometry
from repro.disk.retry import RetryPolicy
from repro.disk.stats import DiskStats
from repro.disk.trace import AccessTier, TraceEvent, TraceRecorder
from repro.errors import OutOfRangeError, TransientIOError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim.clock import SimClock


class SimDisk:
    """A timed disk: FIFO service, three-tier positioning model."""

    def __init__(
        self,
        geometry: DiskGeometry,
        clock: SimClock,
        device: Optional[SectorDevice] = None,
        trace: Optional[TraceRecorder] = None,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.geometry = geometry
        self.clock = clock
        self.device = device or SectorDevice(
            geometry.num_sectors, geometry.sector_size
        )
        if self.device.sector_size != geometry.sector_size:
            raise ValueError(
                f"device sector size {self.device.sector_size} does not "
                f"match geometry sector size {geometry.sector_size}"
            )
        if self.device.num_sectors < geometry.num_sectors:
            raise ValueError(
                f"device has {self.device.num_sectors} sectors, geometry "
                f"needs {geometry.num_sectors}"
            )
        self.trace = trace
        self.stats = DiskStats()
        self._head_pos = 0
        self._busy_until = 0.0
        # Transient read errors (see repro.faults) are retried per the
        # backoff policy; each retry occupies the disk for its backoff
        # interval.  Hard MediaErrors are never retried — they propagate
        # to the caller immediately.
        self.retry = retry or RetryPolicy()
        self.read_retries = 0
        # Busy-timeline seconds spent inside retry backoff.  Same plain-
        # float contract as sync_stall_seconds below: the attribution
        # probe diffs it on one process, so it must never become a
        # merged counter.
        self.retry_stall_seconds = 0.0
        # DiskStats stays the cheap always-on API; the registry mirrors it
        # so exported telemetry covers the disk layer too.  Instruments are
        # resolved once here; the hot paths below pay one boolean when
        # telemetry is disabled.
        self.telemetry = telemetry or NULL_TELEMETRY
        self.telemetry.bind_clock(clock)
        self._obs_enabled = self.telemetry.enabled
        obs = self.telemetry
        self._m_reads = obs.counter("disk.reads")
        self._m_writes = obs.counter("disk.writes")
        self._m_bytes_read = obs.counter("disk.bytes_read")
        self._m_bytes_written = obs.counter("disk.bytes_written")
        self._m_sync = obs.counter("disk.sync_requests")
        self._m_busy = obs.gauge("disk.busy_seconds")
        self._m_request_bytes = obs.histogram("disk.request_bytes")
        self._m_tier = {
            tier.value: obs.counter("disk.requests", tier=tier.value)
            for tier in AccessTier
        }
        self._m_retries = obs.counter("disk.read_retries")
        # Vectored reads: multi-block requests issued as one transfer by
        # the readahead pipeline (and any other run-coalescing caller).
        self.vectored_reads = 0
        self._m_vectored = obs.counter("disk.vectored_reads")
        # Caller-blocking time: simulated seconds this disk advanced the
        # caller's clock (sync reads/writes and drain).  A plain float
        # attribute, not a counter: the attribution probe diffs it on
        # one process, and float partial sums would not merge
        # order-independently across --jobs workers.  Monotone, so
        # interval deltas decompose latencies.
        self.sync_stall_seconds = 0.0
        # Per-request spans are much finer-grained than the component
        # spans, so they ride the opt-in trace_io flag.
        self._trace_io = getattr(self.telemetry, "trace_io", False)

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------

    def _classify(self, sector: int) -> AccessTier:
        distance = abs(sector - self._head_pos)
        if distance == 0:
            return AccessTier.SEQUENTIAL
        if distance <= self.geometry.near_distance:
            return AccessTier.NEAR
        return AccessTier.FAR

    def service_time(self, sector: int, nbytes: int) -> Tuple[float, AccessTier]:
        """Service time of a request at the current head position."""
        tier = self._classify(sector)
        if tier is AccessTier.SEQUENTIAL:
            positioning = self.geometry.request_gap
        elif tier is AccessTier.NEAR:
            positioning = self.geometry.track_seek + self.geometry.rotation / 2.0
        else:
            positioning = self.geometry.avg_seek + self.geometry.rotation / 2.0
        return positioning + self.geometry.transfer_time(nbytes), tier

    def _schedule(self, sector: int, nbytes: int) -> Tuple[float, float, AccessTier]:
        """Place a request on the busy timeline; returns (start, done, tier)."""
        duration, tier = self.service_time(sector, nbytes)
        start = max(self.clock.now(), self._busy_until)
        done = start + duration
        self._busy_until = done
        self._head_pos = sector + (nbytes + self.geometry.sector_size - 1) // (
            self.geometry.sector_size
        )
        return start, done, tier

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(
        self,
        sector: int,
        count: int,
        label: str = "",
        *,
        vectored: bool = False,
        copy: bool = False,
    ) -> "bytes | memoryview":
        """Synchronously read ``count`` sectors (reads always block).

        Returns a read-only view over the device image (zero-copy).  The
        view aliases live storage: it reflects any later write to the
        same sectors, so callers must consume or copy it before issuing
        further writes.  ``copy=True`` requests a stable ``bytes``
        snapshot instead.  ``vectored=True`` tags the request as a
        multi-block transfer coalesced by the readahead pipeline (it
        only affects accounting, not timing).

        Transient device errors are retried up to ``retry.max_attempts``
        times, each retry costing an exponentially growing backoff on
        the busy timeline; the last failure propagates.  Hard
        ``MediaError`` failures propagate immediately.
        """
        issue = self.clock.now()
        io_span = None
        if self._trace_io:
            tracer = self.telemetry.tracer
            io_span = tracer.begin(
                "disk.read", parent=tracer.current_span(), sector=sector
            )
        start, done, tier = self._schedule(sector, count * self.geometry.sector_size)
        if vectored:
            self.vectored_reads += 1
            if self._obs_enabled:
                self._m_vectored.inc()
        attempt = 0
        while True:
            try:
                data = self.device.read(sector, count, copy=copy)
                break
            except TransientIOError:
                attempt += 1
                self.read_retries += 1
                if self._obs_enabled:
                    self._m_retries.inc()
                if attempt > self.retry.max_attempts:
                    raise
                backoff = self.retry.delay(attempt)
                self.retry_stall_seconds += backoff
                done += backoff
                self._busy_until = done
        self.stats.record(False, len(data), True, tier.value, done - start)
        if self._obs_enabled:
            self._m_reads.inc()
            self._m_bytes_read.inc(len(data))
            self._m_sync.inc()
            self._m_busy.add(done - start)
            self._m_request_bytes.observe(len(data))
            self._m_tier[tier.value].inc()
        if self.trace is not None:
            self.trace.record(
                TraceEvent(
                    issue_time=issue,
                    complete_time=done,
                    is_write=False,
                    sector=sector,
                    nsectors=count,
                    nbytes=len(data),
                    sync=True,
                    tier=tier,
                    label=label,
                )
            )
        self.sync_stall_seconds += done - self.clock.now()
        self.clock.advance_to(done)
        self.device.mark_durable(self.clock.now())
        if io_span is not None:
            io_span.attrs["bytes"] = len(data)
            io_span.attrs["tier"] = tier.value
            self.telemetry.tracer.finish(io_span)
        return data

    def write(
        self, sector: int, data: bytes, sync: bool = False, label: str = ""
    ) -> float:
        """Write ``data`` at ``sector``; returns the completion time.

        With ``sync=True`` the caller's clock is advanced to the completion
        time (the request blocks); otherwise the request merely occupies
        the disk and becomes durable when the clock passes its completion.
        """
        if not data:
            raise OutOfRangeError("cannot write zero bytes")
        issue = self.clock.now()
        io_span = None
        if self._trace_io:
            tracer = self.telemetry.tracer
            io_span = tracer.begin(
                "disk.write",
                parent=tracer.current_span(),
                sector=sector,
                sync=sync,
            )
        start, done, tier = self._schedule(sector, len(data))
        # A synchronous request advances the clock to ``done`` before this
        # method returns, so its undo record could never survive to a
        # crash — tell the device not to allocate one.
        self.device.write(sector, data, completion_time=done, durable=sync)
        self.stats.record(True, len(data), sync, tier.value, done - start)
        if self._obs_enabled:
            self._m_writes.inc()
            self._m_bytes_written.inc(len(data))
            if sync:
                self._m_sync.inc()
            self._m_busy.add(done - start)
            self._m_request_bytes.observe(len(data))
            self._m_tier[tier.value].inc()
        if self.trace is not None:
            self.trace.record(
                TraceEvent(
                    issue_time=issue,
                    complete_time=done,
                    is_write=True,
                    sector=sector,
                    nsectors=len(data) // self.geometry.sector_size,
                    nbytes=len(data),
                    sync=sync,
                    tier=tier,
                    label=label,
                )
            )
        if sync:
            self.sync_stall_seconds += done - self.clock.now()
            self.clock.advance_to(done)
        self.device.mark_durable(self.clock.now())
        if io_span is not None:
            io_span.attrs["bytes"] = len(data)
            io_span.attrs["tier"] = tier.value
            self.telemetry.tracer.finish(io_span)
        return done

    def drain(self) -> None:
        """Block (advance the clock) until all queued requests complete."""
        stall = self._busy_until - self.clock.now()
        if stall > 0.0:
            self.sync_stall_seconds += stall
        self.clock.advance_to(self._busy_until)
        self.device.mark_durable(self.clock.now())

    @property
    def busy_until(self) -> float:
        """Time at which the disk becomes idle."""
        return self._busy_until

    @property
    def idle(self) -> bool:
        return self._busy_until <= self.clock.now()

    def queue_delay(self) -> float:
        """How far the busy timeline extends past the current clock."""
        return max(0.0, self._busy_until - self.clock.now())

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power-fail now: in-flight writes are lost, head state reset."""
        self.device.crash(self.clock.now())
        self._busy_until = self.clock.now()
        self._head_pos = 0

    def revive(self) -> None:
        """Bring the disk back after a crash (contents preserved)."""
        self.device.revive()

    def __repr__(self) -> str:
        return (
            f"SimDisk({self.geometry.name}, head={self._head_pos}, "
            f"busy_until={self._busy_until:.6f})"
        )
