"""Simulated disk substrate.

The paper's evaluation hardware was a WREN IV SCSI disk (1.3 MB/s maximum
transfer bandwidth, 17.5 ms average seek).  This package provides a
sector-addressed device with explicit data durability semantics
(:mod:`repro.disk.device`), a disk service-time model parameterized by a
:class:`~repro.disk.geometry.DiskGeometry` (:mod:`repro.disk.sim_disk`),
cumulative statistics (:mod:`repro.disk.stats`) and per-request trace
capture used to regenerate the paper's Figures 1 and 2
(:mod:`repro.disk.trace`).
"""

from repro.disk.device import SectorDevice
from repro.disk.geometry import (
    DiskGeometry,
    FAST_1990S_DISK,
    NULL_TIMING,
    WREN_IV,
)
from repro.disk.retry import RetryPolicy
from repro.disk.sim_disk import SimDisk
from repro.disk.stats import DiskStats
from repro.disk.trace import AccessTier, TraceEvent, TraceRecorder

__all__ = [
    "SectorDevice",
    "DiskGeometry",
    "WREN_IV",
    "FAST_1990S_DISK",
    "NULL_TIMING",
    "RetryPolicy",
    "SimDisk",
    "DiskStats",
    "AccessTier",
    "TraceEvent",
    "TraceRecorder",
]
