"""The raw sector device and its crash semantics.

A :class:`SectorDevice` is a flat array of sectors.  Reads always observe
the most recently written data (a real disk serves reads from its own
queue), but a write only becomes *durable* at its completion time, which
the timing layer (:class:`repro.disk.sim_disk.SimDisk`) supplies.  When
the device crashes, every write whose completion time is after the crash
instant is rolled back, so the surviving image is exactly what a real
power failure would leave given the simulated I/O schedule.

This is the mechanism behind all crash-recovery experiments: LFS loses at
most the writes since its last checkpoint, while the FFS baseline can be
left with inconsistent metadata that fsck must repair.

Durability tracking is incremental.  The timing layer issues writes in
FIFO busy-timeline order (completion times never decrease) and advances
durability with a monotone clock, so undo records live in a
completion-time-ordered deque whose durable prefix :meth:`mark_durable`
drains from the left — O(1) amortized per record, instead of rebuilding
the whole pending list on every I/O.  Synchronous writes (the caller
blocks until the completion time has passed, so no crash can ever
observe them half-done) declare ``durable=True`` and skip the undo
record entirely.  Callers that bypass the timing layer keep the exact
historical semantics: writes whose completion times go backwards flip
the deque into a slow path that filters like the original
implementation.
"""

from __future__ import annotations

import os
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import DeviceCrashedError, OutOfRangeError
from repro.units import SECTOR_SIZE


@dataclass
class _PendingWrite:
    """Undo record for a write that is not yet durable."""

    completion_time: float
    sector: int
    old_data: bytes


class SectorDevice:
    """A crash-aware array of fixed-size sectors."""

    def __init__(
        self,
        num_sectors: int,
        sector_size: int = SECTOR_SIZE,
        *,
        initial_data: Optional[bytearray] = None,
    ) -> None:
        if num_sectors <= 0:
            raise ValueError(f"device needs at least one sector: {num_sectors}")
        if sector_size <= 0:
            raise ValueError(f"sector size must be positive: {sector_size}")
        self.num_sectors = num_sectors
        self.sector_size = sector_size
        if initial_data is not None:
            if len(initial_data) != num_sectors * sector_size:
                raise OutOfRangeError(
                    f"initial image is {len(initial_data)} bytes, device "
                    f"needs {num_sectors * sector_size}"
                )
            self._data = (
                initial_data
                if isinstance(initial_data, bytearray)
                else bytearray(initial_data)
            )
        else:
            self._data = bytearray(num_sectors * sector_size)
        self._pending: Deque[_PendingWrite] = deque()
        self._pending_monotone = True
        self._crashed = False
        self.total_sectors_written = 0
        self.total_sectors_read = 0
        # Operation-count probes for the perf harness: each undo record
        # is created once and pays one scan step when it is drained, so
        # durability_scan_steps <= undo_records_created proves the
        # mark_durable work is O(1) amortized per write (the old
        # implementation rebuilt the whole list per call).
        self.undo_records_created = 0
        self.undo_records_skipped = 0
        self.durability_scan_steps = 0
        self.mark_durable_calls = 0
        self.torn_writes = 0
        """Rolled-back writes of which a prefix survived (see crash())."""

    @property
    def total_bytes(self) -> int:
        return self.num_sectors * self.sector_size

    def _check_range(self, sector: int, count: int) -> None:
        if self._crashed:
            raise DeviceCrashedError("device has crashed; call revive() first")
        if count <= 0:
            raise OutOfRangeError(f"transfer must cover at least one sector: {count}")
        if sector < 0 or sector + count > self.num_sectors:
            raise OutOfRangeError(
                f"sectors [{sector}, {sector + count}) outside device of "
                f"{self.num_sectors} sectors"
            )

    def read(self, sector: int, count: int, *, copy: bool = False) -> "bytes | memoryview":
        """Read ``count`` sectors starting at ``sector``.

        Returns a read-only :class:`memoryview` aliasing the device's
        backing buffer — zero copies, zero allocations beyond the view
        object itself.  The view stays coherent with later writes (it
        aliases live storage), so callers that need a stable snapshot
        must pass ``copy=True`` (or copy the view themselves) — that is
        the explicit-copy escape hatch; everything on the hot path works
        directly on the view.
        """
        self._check_range(sector, count)
        self.total_sectors_read += count
        start = sector * self.sector_size
        end = start + count * self.sector_size
        if copy:
            return bytes(self._data[start:end])  # alloc-ok: explicit snapshot
        return memoryview(self._data)[start:end].toreadonly()

    def write(
        self,
        sector: int,
        data: bytes,
        completion_time: float = 0.0,
        durable: bool = False,
    ) -> None:
        """Write ``data`` (a whole number of sectors) at ``sector``.

        The new contents are immediately visible to reads but only durable
        once the simulated clock passes ``completion_time``; see
        :meth:`crash`.  With ``durable=True`` the caller asserts the write
        can never be rolled back (it will advance the clock past the
        completion time before any crash can be observed — the timing
        layer's synchronous-write path), so no undo record is kept.

        ``data`` may be any buffer (``bytes``, ``bytearray``,
        ``memoryview``); the slice assignment below copies it into the
        device image, so callers may reuse their buffer immediately.  It
        must not alias this device's own backing storage.
        """
        if len(data) % self.sector_size:
            raise OutOfRangeError(
                f"write of {len(data)} bytes is not sector-aligned "
                f"(sector size {self.sector_size})"
            )
        count = len(data) // self.sector_size
        self._check_range(sector, count)
        self.total_sectors_written += count
        start = sector * self.sector_size
        if durable:
            # The undo record would be dropped by the caller's own
            # mark_durable before any crash could observe it, so never
            # allocate it (nor copy the overwritten bytes).
            self.undo_records_skipped += 1
        else:
            pending = self._pending
            if pending and completion_time < pending[-1].completion_time:
                self._pending_monotone = False
            pending.append(
                _PendingWrite(
                    completion_time=completion_time,
                    sector=sector,
                    # The undo record must snapshot the bytes being
                    # overwritten — crash() needs them long after the
                    # live image has moved on.  This is the one genuine
                    # copy on the write path.
                    old_data=bytes(  # alloc-ok: crash-rollback snapshot
                        self._data[start : start + len(data)]
                    ),
                )
            )
            self.undo_records_created += 1
        self._data[start : start + len(data)] = data

    def mark_durable(self, now: float) -> None:
        """Forget undo records for writes completed at or before ``now``."""
        self.mark_durable_calls += 1
        pending = self._pending
        if self._pending_monotone:
            while pending and pending[0].completion_time <= now:
                pending.popleft()
                self.durability_scan_steps += 1
        else:
            # Out-of-order completion times (direct device users only):
            # fall back to the original filter, preserving write order.
            self.durability_scan_steps += len(pending)
            kept = deque(p for p in pending if p.completion_time > now)
            self._pending = kept
            if not kept:
                self._pending_monotone = True

    def pending_writes(self) -> int:
        """Number of writes that are visible but not yet durable."""
        return len(self._pending)

    def crash(
        self,
        now: float,
        rng: Optional[random.Random] = None,
        tear_probability: float = 0.0,
    ) -> None:
        """Simulate a power failure at time ``now``.

        Writes whose completion time is after ``now`` are rolled back in
        reverse order, restoring the exact durable image.  The device then
        refuses I/O until :meth:`revive` is called.

        With an ``rng``, each rolled-back multi-sector write may instead
        be *torn* (probability ``tear_probability``): a non-empty prefix
        of its sectors persists and only the suffix is rolled back —
        what a real disk leaves when power fails mid-transfer.  The hook
        rides the ordinary pending-write records, so torn writes
        automatically respect the same durability schedule as whole
        ones.
        """
        self.mark_durable(now)
        pending = self._pending
        while pending:
            record = pending.pop()  # reverse write order
            nsectors = len(record.old_data) // self.sector_size
            keep = 0
            if (
                rng is not None
                and nsectors > 1
                and rng.random() < tear_probability
            ):
                keep = rng.randrange(1, nsectors)
                self.torn_writes += 1
            skip = keep * self.sector_size
            start = record.sector * self.sector_size + skip
            self._data[start : record.sector * self.sector_size + len(record.old_data)] = (
                record.old_data[skip:]
            )
        self._pending_monotone = True
        self._crashed = True

    def revive(self) -> None:
        """Bring a crashed device back online (contents unchanged)."""
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    def snapshot(self) -> bytes:
        """A copy of the current (possibly non-durable) device image."""
        return bytes(self._data)  # alloc-ok: snapshot API, copy is the point

    def save(self, path: str) -> None:
        """Persist the device image to a host file."""
        with open(path, "wb") as handle:
            handle.write(self._data)

    @classmethod
    def load(cls, path: str, sector_size: int = SECTOR_SIZE) -> "SectorDevice":
        """Recreate a device from a host file written by :meth:`save`.

        The image is read straight into the device's backing buffer, so a
        large disk image is allocated exactly once.
        """
        size = os.path.getsize(path)
        if not size or size % sector_size:
            raise OutOfRangeError(
                f"image {path!r} is {size} bytes: not a whole number "
                f"of {sector_size}-byte sectors"
            )
        data = bytearray(size)
        with open(path, "rb") as handle:
            read = handle.readinto(data)
        if read != size:
            raise OutOfRangeError(
                f"image {path!r} truncated while reading: got {read} of "
                f"{size} bytes"
            )
        return cls(size // sector_size, sector_size, initial_data=data)

    def __repr__(self) -> str:
        return (
            f"SectorDevice({self.num_sectors} x {self.sector_size}B, "
            f"pending={len(self._pending)}, crashed={self._crashed})"
        )
