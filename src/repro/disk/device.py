"""The raw sector device and its crash semantics.

A :class:`SectorDevice` is a flat array of sectors.  Reads always observe
the most recently written data (a real disk serves reads from its own
queue), but a write only becomes *durable* at its completion time, which
the timing layer (:class:`repro.disk.sim_disk.SimDisk`) supplies.  When
the device crashes, every write whose completion time is after the crash
instant is rolled back, so the surviving image is exactly what a real
power failure would leave given the simulated I/O schedule.

This is the mechanism behind all crash-recovery experiments: LFS loses at
most the writes since its last checkpoint, while the FFS baseline can be
left with inconsistent metadata that fsck must repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import DeviceCrashedError, OutOfRangeError
from repro.units import SECTOR_SIZE


@dataclass
class _PendingWrite:
    """Undo record for a write that is not yet durable."""

    completion_time: float
    sector: int
    old_data: bytes


class SectorDevice:
    """A crash-aware array of fixed-size sectors."""

    def __init__(self, num_sectors: int, sector_size: int = SECTOR_SIZE) -> None:
        if num_sectors <= 0:
            raise ValueError(f"device needs at least one sector: {num_sectors}")
        if sector_size <= 0:
            raise ValueError(f"sector size must be positive: {sector_size}")
        self.num_sectors = num_sectors
        self.sector_size = sector_size
        self._data = bytearray(num_sectors * sector_size)
        self._pending: List[_PendingWrite] = []
        self._crashed = False
        self.total_sectors_written = 0
        self.total_sectors_read = 0

    @property
    def total_bytes(self) -> int:
        return self.num_sectors * self.sector_size

    def _check_range(self, sector: int, count: int) -> None:
        if self._crashed:
            raise DeviceCrashedError("device has crashed; call revive() first")
        if count <= 0:
            raise OutOfRangeError(f"transfer must cover at least one sector: {count}")
        if sector < 0 or sector + count > self.num_sectors:
            raise OutOfRangeError(
                f"sectors [{sector}, {sector + count}) outside device of "
                f"{self.num_sectors} sectors"
            )

    def read(self, sector: int, count: int) -> bytes:
        """Read ``count`` sectors starting at ``sector``."""
        self._check_range(sector, count)
        self.total_sectors_read += count
        start = sector * self.sector_size
        return bytes(self._data[start : start + count * self.sector_size])

    def write(self, sector: int, data: bytes, completion_time: float = 0.0) -> None:
        """Write ``data`` (a whole number of sectors) at ``sector``.

        The new contents are immediately visible to reads but only durable
        once the simulated clock passes ``completion_time``; see
        :meth:`crash`.
        """
        if len(data) % self.sector_size:
            raise OutOfRangeError(
                f"write of {len(data)} bytes is not sector-aligned "
                f"(sector size {self.sector_size})"
            )
        count = len(data) // self.sector_size
        self._check_range(sector, count)
        self.total_sectors_written += count
        start = sector * self.sector_size
        self._pending.append(
            _PendingWrite(
                completion_time=completion_time,
                sector=sector,
                old_data=bytes(self._data[start : start + len(data)]),
            )
        )
        self._data[start : start + len(data)] = data

    def mark_durable(self, now: float) -> None:
        """Forget undo records for writes completed at or before ``now``."""
        self._pending = [p for p in self._pending if p.completion_time > now]

    def pending_writes(self) -> int:
        """Number of writes that are visible but not yet durable."""
        return len(self._pending)

    def crash(self, now: float) -> None:
        """Simulate a power failure at time ``now``.

        Writes whose completion time is after ``now`` are rolled back in
        reverse order, restoring the exact durable image.  The device then
        refuses I/O until :meth:`revive` is called.
        """
        self.mark_durable(now)
        for pending in reversed(self._pending):
            start = pending.sector * self.sector_size
            self._data[start : start + len(pending.old_data)] = pending.old_data
        self._pending.clear()
        self._crashed = True

    def revive(self) -> None:
        """Bring a crashed device back online (contents unchanged)."""
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    def snapshot(self) -> bytes:
        """A copy of the current (possibly non-durable) device image."""
        return bytes(self._data)

    def save(self, path: str) -> None:
        """Persist the device image to a host file."""
        with open(path, "wb") as handle:
            handle.write(self._data)

    @classmethod
    def load(cls, path: str, sector_size: int = SECTOR_SIZE) -> "SectorDevice":
        """Recreate a device from a host file written by :meth:`save`."""
        with open(path, "rb") as handle:
            data = handle.read()
        if not data or len(data) % sector_size:
            raise OutOfRangeError(
                f"image {path!r} is {len(data)} bytes: not a whole number "
                f"of {sector_size}-byte sectors"
            )
        device = cls(len(data) // sector_size, sector_size)
        device._data = bytearray(data)
        return device

    def __repr__(self) -> str:
        return (
            f"SectorDevice({self.num_sectors} x {self.sector_size}B, "
            f"pending={len(self._pending)}, crashed={self._crashed})"
        )
