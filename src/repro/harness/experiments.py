"""Runners for every table and figure in the paper's evaluation.

Each function builds fresh simulated hardware (the WREN IV geometry the
paper used, unless told otherwise), runs the workload against LFS and —
where the paper compares — the FFS baseline, and returns plain data the
benchmarks and examples format.  All reported times and rates are
*simulated*: disk service model plus CPU cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.write_cost import analytic_cleaning_rate, analytic_write_cost
from repro.disk.geometry import DiskGeometry, wren_iv
from repro.disk.sim_disk import SimDisk
from repro.disk.trace import TraceRecorder
from repro.ffs.config import FfsConfig
from repro.ffs.filesystem import FastFileSystem
from repro.ffs.fsck import fsck
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import LogStructuredFS
from repro.obs import Telemetry
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import KIB, MIB
from repro.workloads.cleaning import CleaningPoint, run_cleaning_rate_test
from repro.workloads.largefile import LargeFileResult, run_large_file_test
from repro.workloads.office import OfficeResult, run_office_workload
from repro.workloads.smallfile import SmallFileResult, run_small_file_test


@dataclass
class Rig:
    """One simulated machine with a freshly formatted file system."""

    name: str
    fs: object
    clock: SimClock
    cpu: CpuModel
    disk: SimDisk
    trace: Optional[TraceRecorder] = None


def new_rig(
    kind: str,
    total_bytes: int = 300 * MIB,
    speed_factor: float = 1.0,
    lfs_config: Optional[LfsConfig] = None,
    ffs_config: Optional[FfsConfig] = None,
    with_trace: bool = False,
    geometry: Optional[DiskGeometry] = None,
    telemetry: Optional[Telemetry] = None,
) -> Rig:
    """Build a simulated machine and format it with ``kind`` ('lfs'/'ffs').

    One ``telemetry`` object may be shared across sequential rigs (its
    tracer re-binds to each rig's clock); metrics then accumulate over
    the whole experiment.
    """
    geometry = geometry or wren_iv(total_bytes)
    clock = SimClock()
    cpu = CpuModel(clock, speed_factor=speed_factor)
    trace = TraceRecorder(enabled=False) if with_trace else None
    disk = SimDisk(geometry, clock, trace=trace, telemetry=telemetry)
    if kind == "lfs":
        fs = LogStructuredFS.mkfs(disk, cpu, lfs_config, telemetry=telemetry)
    elif kind == "ffs":
        fs = FastFileSystem.mkfs(disk, cpu, ffs_config)
    else:
        raise ValueError(f"unknown file system kind: {kind!r}")
    return Rig(name=kind, fs=fs, clock=clock, cpu=cpu, disk=disk, trace=trace)


# ---------------------------------------------------------------------------
# FIG1 / FIG2 — the two-file creation disk traces
# ---------------------------------------------------------------------------


@dataclass
class CreationTrace:
    """Disk requests caused by the paper's two-file creation example."""

    kind: str
    write_requests: int
    sync_writes: int
    random_writes: int
    bytes_written: int
    table: str
    disk_image: str


def fig1_fig2_creation_traces(
    total_bytes: int = 64 * MIB,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, CreationTrace]:
    """Reproduce Figures 1 and 2.

    The traced system calls are exactly §3.1's::

        fd = creat("dir1/file1"); write(fd, buffer, blockSize); close(fd);
        fd = creat("dir2/file2"); write(fd, buffer, blockSize); close(fd);

    followed by the delayed write-back.  FFS should show many small
    random writes, half synchronous; LFS one large sequential
    asynchronous transfer.
    """
    results: Dict[str, CreationTrace] = {}
    for kind in ("ffs", "lfs"):
        rig = new_rig(
            kind, total_bytes=total_bytes, with_trace=True, telemetry=telemetry
        )
        fs = rig.fs
        fs.mkdir("/dir1")
        fs.mkdir("/dir2")
        fs.sync()
        assert rig.trace is not None
        rig.trace.clear()
        rig.trace.enabled = True
        block = b"B" * fs.block_size
        with fs.create("/dir1/file1") as handle:
            handle.write(block)
        with fs.create("/dir2/file2") as handle:
            handle.write(block)
        fs.sync()  # the delayed write-back
        rig.trace.enabled = False
        writes = rig.trace.writes()
        results[kind] = CreationTrace(
            kind=kind,
            write_requests=len(writes),
            sync_writes=len(rig.trace.sync_writes()),
            random_writes=len(
                [e for e in writes if e.tier.value != "sequential"]
            ),
            bytes_written=sum(e.nbytes for e in writes),
            table=rig.trace.table(only_writes=True),
            disk_image=rig.trace.disk_image(rig.disk.geometry.num_sectors),
        )
    return results


# ---------------------------------------------------------------------------
# FIG3 — small-file create/read/delete rates
# ---------------------------------------------------------------------------


def fig3_small_file(
    num_files: int = 10000,
    file_size: int = 1 * KIB,
    total_bytes: int = 300 * MIB,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, SmallFileResult]:
    """One Figure 3 group (e.g. 10000 x 1 KB) for both file systems."""
    results: Dict[str, SmallFileResult] = {}
    for kind in ("lfs", "ffs"):
        rig = new_rig(kind, total_bytes=total_bytes, telemetry=telemetry)
        results[kind] = run_small_file_test(
            rig.fs, num_files=num_files, file_size=file_size
        )
    return results


# ---------------------------------------------------------------------------
# FIG4 — large-file transfer rates
# ---------------------------------------------------------------------------


def fig4_large_file(
    file_bytes: int = 100 * MIB,
    request_bytes: int = 8 * KIB,
    total_bytes: int = 300 * MIB,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, LargeFileResult]:
    """Figure 4's five-stage 100 MB test for both file systems."""
    results: Dict[str, LargeFileResult] = {}
    for kind in ("lfs", "ffs"):
        rig = new_rig(kind, total_bytes=total_bytes, telemetry=telemetry)
        results[kind] = run_large_file_test(
            rig.fs, file_bytes=file_bytes, request_bytes=request_bytes
        )
    return results


# ---------------------------------------------------------------------------
# FIG5 — cleaning rate vs segment utilization
# ---------------------------------------------------------------------------


def fig5_cleaning_rate(
    utilizations: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9),
    total_bytes: int = 128 * MIB,
    fill_segments: int = 24,
    lfs_config: Optional[LfsConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[Tuple[CleaningPoint, float]]:
    """Figure 5: measured cleaning rate per utilization, with the
    analytic model value alongside each point."""
    config = lfs_config or LfsConfig()
    results: List[Tuple[CleaningPoint, float]] = []
    for u in utilizations:
        rig = new_rig(
            "lfs",
            total_bytes=total_bytes,
            lfs_config=config,
            telemetry=telemetry,
        )
        point = run_cleaning_rate_test(
            rig.fs, u, fill_segments=fill_segments
        )
        model = analytic_cleaning_rate(
            u, rig.disk.geometry, config.segment_size
        )
        results.append((point, model))
    return results


# ---------------------------------------------------------------------------
# T31 — §3.1's CPU-scaling observation
# ---------------------------------------------------------------------------


@dataclass
class CpuScalingPoint:
    speed_factor: float
    lfs_ms_per_create_delete: float
    ffs_ms_per_create_delete: float


def sec31_cpu_scaling(
    speed_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    num_files: int = 200,
    total_bytes: int = 64 * MIB,
    telemetry: Optional[Telemetry] = None,
) -> List[CpuScalingPoint]:
    """Create+delete an empty file at increasing CPU speeds.

    §3.1: a 15x faster CPU made BSD file creation only ~20% faster
    because of synchronous disk writes; LFS latency should scale with
    the CPU.
    """
    points: List[CpuScalingPoint] = []
    for factor in speed_factors:
        latencies: Dict[str, float] = {}
        for kind in ("lfs", "ffs"):
            rig = new_rig(
                kind,
                total_bytes=total_bytes,
                speed_factor=factor,
                telemetry=telemetry,
            )
            fs = rig.fs
            start = rig.clock.now()
            for index in range(num_files):
                fs.create(f"/empty{index}").close()
                fs.unlink(f"/empty{index}")
            elapsed = rig.clock.now() - start
            latencies[kind] = elapsed / num_files * 1000.0
        points.append(
            CpuScalingPoint(
                speed_factor=factor,
                lfs_ms_per_create_delete=latencies["lfs"],
                ffs_ms_per_create_delete=latencies["ffs"],
            )
        )
    return points


# ---------------------------------------------------------------------------
# REC — crash-recovery time: checkpoint+roll-forward vs fsck
# ---------------------------------------------------------------------------


@dataclass
class RecoveryPoint:
    num_files: int
    total_bytes: int
    lfs_recovery_seconds: float
    lfs_partials_replayed: int
    ffs_fsck_seconds: float
    ffs_repairs: int


def recovery_comparison(
    file_counts: Sequence[int] = (100, 500, 1000),
    file_size: int = 4 * KIB,
    total_bytes: int = 128 * MIB,
    files_after_checkpoint: int = 50,
    disk_sizes: Optional[Sequence[int]] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[RecoveryPoint]:
    """§4.4's claim, measured.

    Both systems get the same population of files and crash with a
    little un-checkpointed work outstanding.  LFS recovery reads two
    checkpoint regions plus the log tail; fsck scans every inode table
    block and the whole directory tree, so it grows with the file
    count *and the file system size* while LFS stays flat.  Pass
    ``disk_sizes`` (parallel to ``file_counts``) to sweep both.
    """
    if disk_sizes is None:
        disk_sizes = [total_bytes] * len(file_counts)
    if len(disk_sizes) != len(file_counts):
        raise ValueError("disk_sizes must parallel file_counts")
    points: List[RecoveryPoint] = []
    for count, total_bytes in zip(file_counts, disk_sizes):
        # --- LFS ---
        rig = new_rig("lfs", total_bytes=total_bytes, telemetry=telemetry)
        fs = rig.fs
        payload = b"r" * file_size
        for index in range(count):
            fs.write_file(f"/f{index}", payload)
        fs.checkpoint()
        for index in range(files_after_checkpoint):
            fs.write_file(f"/post{index}", payload)
        fs.sync()  # in the log, not in a checkpoint
        fs.crash()
        fs.disk.revive()
        start = rig.clock.now()
        recovered = LogStructuredFS.mount(rig.disk, rig.cpu)
        lfs_seconds = rig.clock.now() - start
        assert recovered.last_recovery is not None
        partials = recovered.last_recovery.partials_applied

        # --- FFS ---
        rig = new_rig("ffs", total_bytes=total_bytes)
        fs = rig.fs
        for index in range(count):
            fs.write_file(f"/f{index}", payload)
        fs.sync()
        for index in range(files_after_checkpoint):
            fs.write_file(f"/post{index}", payload)
        fs.crash()
        fs.disk.revive()
        report = fsck(rig.disk)
        points.append(
            RecoveryPoint(
                num_files=count + files_after_checkpoint,
                total_bytes=total_bytes,
                lfs_recovery_seconds=lfs_seconds,
                lfs_partials_replayed=partials,
                ffs_fsck_seconds=report.duration_seconds,
                ffs_repairs=report.repairs(),
            )
        )
    return points


# ---------------------------------------------------------------------------
# ABL-SEG — segment-size ablation
# ---------------------------------------------------------------------------


@dataclass
class SegmentSizePoint:
    segment_size: int
    create_files_per_second: float
    seq_write_kb_per_second: float


def _age_log(fs, fraction: float = 0.45) -> None:
    """Scatter the clean segments, as months of churn would (§4.3).

    Freshly formatted, LFS hands out *adjacent* clean segments, so
    consecutive segment writes incur no seek and segment size barely
    matters.  Real logs age: live and clean segments interleave and
    every segment switch costs a head movement.  We age by writing
    segment-sized files over ``fraction`` of the disk, deleting every
    other one, and letting the cleaner reclaim the dead ones.
    """
    segment = fs.config.segment_size
    count = int(fs.layout.num_segments * fraction)
    payload = b"a" * (segment - 4 * fs.config.block_size)
    for index in range(count):
        fs.write_file(f"/age{index}", payload)
    fs.sync()
    for index in range(0, count, 2):
        fs.unlink(f"/age{index}")
    fs.sync()
    fs.cleaner.victims_per_pass = 16  # batch: aging is setup, not measurement
    fs.clean_now(fs.layout.num_segments)


def ablation_segment_size(
    segment_sizes: Sequence[int] = (
        64 * KIB,
        256 * KIB,
        1 * MIB,
        4 * MIB,
    ),
    num_files: int = 1000,
    file_size: int = 1 * KIB,
    seq_write_bytes: int = 6 * MIB,
    total_bytes: int = 64 * MIB,
) -> List[SegmentSizePoint]:
    """§4.3's design rule, measured: segments must be large enough that
    the seek at the start of each segment write is amortized away.
    The sequential-write measurement runs on an aged (fragmented) log —
    see :func:`_age_log` — because a freshly formatted log hands out
    adjacent segments and hides the per-segment seek entirely."""
    points: List[SegmentSizePoint] = []
    for segment_size in segment_sizes:
        config = LfsConfig(segment_size=segment_size)
        rig = new_rig("lfs", total_bytes=total_bytes, lfs_config=config)
        small = run_small_file_test(
            rig.fs, num_files=num_files, file_size=file_size, verify=False
        )
        rig2 = new_rig("lfs", total_bytes=total_bytes, lfs_config=config)
        _age_log(rig2.fs)
        start = rig2.clock.now()
        with rig2.fs.create("/seq") as handle:
            step = 64 * KIB
            for offset in range(0, seq_write_bytes, step):
                handle.write(b"s" * step)
        rig2.fs.sync()
        elapsed = rig2.clock.now() - start
        points.append(
            SegmentSizePoint(
                segment_size=segment_size,
                create_files_per_second=small.create_per_second,
                seq_write_kb_per_second=(seq_write_bytes / KIB) / elapsed,
            )
        )
    return points


# ---------------------------------------------------------------------------
# ABL-CLEAN — cleaning-policy ablation
# ---------------------------------------------------------------------------


@dataclass
class PolicyPoint:
    policy: str
    write_cost: float
    segments_cleaned: int
    live_blocks_copied: int
    ops_per_second: float


def ablation_cleaner_policy(
    policies: Sequence[str] = ("greedy", "cost-benefit", "random"),
    operations: int = 6000,
    total_bytes: int = 32 * MIB,
    segment_size: int = 256 * KIB,
) -> List[PolicyPoint]:
    """Office-workload churn on a small disk under each victim policy."""
    points: List[PolicyPoint] = []
    for policy in policies:
        config = LfsConfig(
            segment_size=segment_size,
            cache_bytes=4 * MIB,
            cleaner_policy=policy,
        )
        rig = new_rig("lfs", total_bytes=total_bytes, lfs_config=config)
        result: OfficeResult = run_office_workload(
            rig.fs,
            operations=operations,
            target_population=300,
            seed=11,
        )
        stats = rig.fs.cleaner.stats
        points.append(
            PolicyPoint(
                policy=policy,
                write_cost=result.write_cost or 0.0,
                segments_cleaned=stats.segments_cleaned,
                live_blocks_copied=stats.live_blocks_copied,
                ops_per_second=result.ops_per_second,
            )
        )
    return points


# ---------------------------------------------------------------------------
# ABL-RAID — §2.1: disk arrays raise bandwidth, not access time
# ---------------------------------------------------------------------------


@dataclass
class RaidPoint:
    kind: str
    num_disks: int
    create_files_per_second: float
    seq_write_kb_per_second: float


def ablation_disk_array(
    disk_counts: Sequence[int] = (1, 2, 4),
    num_files: int = 800,
    seq_write_bytes: int = 16 * MIB,
    member_bytes: int = 64 * MIB,
) -> List[RaidPoint]:
    """§2.1 measured: striping multiplies bandwidth but not access time.

    LFS turns the extra bandwidth into create throughput and sequential
    write rate (its transfers are segment-sized and stripe across every
    spindle); the FFS baseline's small synchronous writes still wait for
    one seek per operation, so more spindles buy it almost nothing.
    """
    from repro.disk.array import StripedDisk
    from repro.disk.geometry import wren_iv

    points: List[RaidPoint] = []
    for kind in ("lfs", "ffs"):
        for count in disk_counts:
            clock = SimClock()
            cpu = CpuModel(clock)
            disk = StripedDisk(wren_iv(member_bytes), clock, count)
            if kind == "lfs":
                fs = LogStructuredFS.mkfs(disk, cpu)
            else:
                fs = FastFileSystem.mkfs(disk, cpu)
            small = run_small_file_test(
                fs, num_files=num_files, file_size=1 * KIB, verify=False
            )
            start = clock.now()
            with fs.create("/seq") as handle:
                step = 256 * KIB
                for _ in range(seq_write_bytes // step):
                    handle.write(b"r" * step)
            fs.sync()
            elapsed = clock.now() - start
            points.append(
                RaidPoint(
                    kind=kind,
                    num_disks=count,
                    create_files_per_second=small.create_per_second,
                    seq_write_kb_per_second=(seq_write_bytes / KIB) / elapsed,
                )
            )
    return points


# ---------------------------------------------------------------------------
# MODEL — measured cleaning economics vs the analytic write-cost curve
# ---------------------------------------------------------------------------


@dataclass
class WriteCostPoint:
    utilization: float
    analytic_write_cost: float
    measured_rate_kb_s: float
    model_rate_kb_s: float


def write_cost_comparison(
    utilizations: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    total_bytes: int = 128 * MIB,
    fill_segments: int = 24,
) -> List[WriteCostPoint]:
    """§5.3's discussion, quantified: measured cleaning rate against the
    closed-form model at the same utilizations."""
    points: List[WriteCostPoint] = []
    for (measured, model) in fig5_cleaning_rate(
        utilizations, total_bytes=total_bytes, fill_segments=fill_segments
    ):
        u = measured.target_utilization
        points.append(
            WriteCostPoint(
                utilization=u,
                analytic_write_cost=analytic_write_cost(u),
                measured_rate_kb_s=measured.clean_kb_per_second(
                    LfsConfig().segment_size
                ),
                model_rate_kb_s=model,
            )
        )
    return points
