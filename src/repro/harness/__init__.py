"""Experiment harness: one entry point per paper figure/table."""

from repro.harness.experiments import (
    CreationTrace,
    Rig,
    ablation_cleaner_policy,
    ablation_disk_array,
    ablation_segment_size,
    fig1_fig2_creation_traces,
    fig3_small_file,
    fig4_large_file,
    fig5_cleaning_rate,
    new_rig,
    recovery_comparison,
    sec31_cpu_scaling,
    write_cost_comparison,
)
from repro.harness.parallel import (
    available_jobs,
    export_telemetry_totals,
    merge_metric_samples,
    run_tasks,
)

__all__ = [
    "Rig",
    "new_rig",
    "CreationTrace",
    "fig1_fig2_creation_traces",
    "fig3_small_file",
    "fig4_large_file",
    "fig5_cleaning_rate",
    "sec31_cpu_scaling",
    "recovery_comparison",
    "ablation_segment_size",
    "ablation_cleaner_policy",
    "ablation_disk_array",
    "write_cost_comparison",
    "available_jobs",
    "export_telemetry_totals",
    "merge_metric_samples",
    "run_tasks",
]
