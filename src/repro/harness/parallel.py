"""Deterministic fan-out of independent seeded rigs across processes.

Every heavyweight rig in this repository — a ``repro crashtest`` trial,
a :mod:`repro.service.bench` sweep point, a perf-harness leg — is an
*independent, seeded* simulation: it builds its own clock, device and
file system, and its result is a pure function of its arguments.  That
makes them embarrassingly parallel, and :func:`run_tasks` is the one
place that parallelism lives.

The contract is strict determinism: ``run_tasks`` returns results in
**task order**, regardless of worker count or completion order, and
``jobs=1`` runs the plain in-process loop (no pool, no pickling — the
seeded default).  Callers that aggregate must consume the returned list
in order; then the merged report is byte-identical for any ``jobs``.

Workers fork on platforms that support it (the rigs' modules are
already imported, so fork is both faster and keeps ``__main__``-defined
workers picklable); elsewhere the spawn context is used and workers
must be module-level functions.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "available_jobs",
    "run_tasks",
    "merge_metric_samples",
    "export_telemetry_totals",
    "GAUGE_MERGE_MAX",
]

GAUGE_MERGE_MAX = frozenset({"fs.degraded"})
"""Gauges that merge by ``max`` instead of summation.

Most gauges are extensive end-of-run quantities (queue depth, dirty
bytes) for which summing worker contributions matches what a single
process would have accumulated.  A *sticky state flag* like
``fs.degraded`` is different: it is 0 or 1 per rig, and the merged
answer to "did any rig degrade?" is the maximum, not the count —
summing would turn the flag into a tally and make ``--jobs N`` output
diverge from serial runs that overwrite the gauge in place."""


def available_jobs(requested: int) -> int:
    """Advisory clamp of a ``--jobs`` request to the machine's CPU count.

    :func:`run_tasks` deliberately does *not* apply this clamp — an
    explicit ``--jobs 4`` forks four workers even on a smaller machine
    (oversubscription only timeslices; results are identical either
    way, and the pool path stays exercisable everywhere).  Use this
    helper when picking a default job count, not when honouring an
    explicit request.
    """
    if requested < 1:
        raise ValueError(f"jobs must be >= 1: {requested}")
    return min(requested, os.cpu_count() or 1)


def _context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork (e.g. Windows)
        return multiprocessing.get_context("spawn")


def run_tasks(
    worker: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    jobs: int = 1,
) -> List[Any]:
    """Run ``worker(*task)`` for every task; results in task order.

    ``jobs`` caps the worker-process count (clamped to the task count,
    but honoured as requested beyond the CPU count — oversubscription
    merely timeslices).  With ``jobs <= 1`` or fewer than two tasks
    this is a plain loop in the calling process — semantics, and
    therefore output, are identical either way because the pool variant
    also yields results strictly by task index (``starmap`` preserves
    input order no matter which worker finishes first).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    tasks = list(tasks)
    jobs = min(jobs, len(tasks))
    if jobs <= 1 or len(tasks) < 2:
        return [worker(*task) for task in tasks]
    with _context().Pool(processes=jobs) as pool:
        return pool.starmap(worker, tasks, chunksize=1)


def export_telemetry_totals(telemetry) -> Dict[str, Any]:
    """A worker's mergeable observability totals, ready to ship home.

    Everything :func:`merge_metric_samples` knows how to fold: the
    registry's metric samples and label-overflow counter plus the
    tracer's per-kind span counts/seconds and span-drop counter.  Span
    *event records* stay in the worker — they are per-process detail
    and can be arbitrarily large — but the totals merge, so a
    ``--jobs N`` run reports the same observability summary as
    ``--jobs 1``.
    """
    tracer = telemetry.tracer
    return {
        "metrics": telemetry.registry.to_dict()["metrics"],
        "dropped_label_sets": telemetry.registry.dropped_label_sets,
        "kind_counts": dict(tracer.kind_counts),
        "kind_seconds": dict(tracer.kind_seconds),
        "dropped_spans": tracer.dropped_spans,
    }


def merge_metric_samples(telemetry, samples) -> int:
    """Fold one worker's exported observability totals into ``telemetry``.

    ``samples`` is either the plain ``metrics`` list of
    :meth:`repro.obs.registry.MetricsRegistry.to_dict` (the original
    contract) or the dict built by :func:`export_telemetry_totals`,
    which additionally carries the tracer's span-kind counts/seconds
    and the drop counters.  Counters and gauges merge by summation,
    histograms bucket-by-bucket — all order-independent for the integer
    increments the simulators emit, so the merged state is the same for
    any worker count when callers merge in task order.  Returns the
    number of metric series merged; span *event records* are
    per-process and are not merged, but their per-kind totals are.
    """
    if isinstance(samples, dict):
        merged = _merge_sample_list(telemetry, samples.get("metrics", []))
        tracer = telemetry.tracer
        for kind, count in samples.get("kind_counts", {}).items():
            tracer.kind_counts[kind] = (
                tracer.kind_counts.get(kind, 0) + count
            )
        for kind, seconds in samples.get("kind_seconds", {}).items():
            tracer.kind_seconds[kind] = (
                tracer.kind_seconds.get(kind, 0.0) + seconds
            )
        tracer.dropped_spans += samples.get("dropped_spans", 0)
        telemetry.registry.dropped_label_sets += samples.get(
            "dropped_label_sets", 0
        )
        return merged
    return _merge_sample_list(telemetry, samples)


def _merge_sample_list(
    telemetry, samples: Iterable[Dict[str, Any]]
) -> int:
    merged = 0
    for record in samples:
        name = record["name"]
        labels = record.get("labels", {})
        kind = record.get("kind")
        if kind == "counter":
            telemetry.counter(name, **labels).inc(record["value"])
        elif kind == "gauge":
            gauge = telemetry.gauge(name, **labels)
            if name in GAUGE_MERGE_MAX:
                gauge.set(max(gauge.value, record["value"]))
            else:
                gauge.add(record["value"])
        elif kind == "histogram":
            bounds = [
                bound
                for bound, _count in record["buckets"]
                if bound != "+inf"
            ]
            histogram = telemetry.histogram(name, buckets=bounds, **labels)
            for slot, (_bound, count) in enumerate(record["buckets"]):
                histogram.counts[slot] += count
            histogram.total += record["sum"]
            histogram.count += record["count"]
        else:
            continue
        merged += 1
    return merged
