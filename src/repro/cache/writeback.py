"""Write-back triggers.

§4.3.5 of the paper names three conditions that start a segment write:

* **Cache full** — too many dirty blocks in the file cache;
* **Cache write-back** — dirty blocks older than an age threshold
  (the implementation used 30 seconds, like UNIX delayed write-back);
* **Sync request** — an explicit ``sync``/``fsync``.

The first two are decided here; sync is an explicit file system call.
The same monitor drives the FFS baseline's delayed write-back, which is
the behaviour the paper attributes to the BSD file system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.cache.block_cache import BlockCache
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim.clock import SimClock


class WritebackReason(enum.Enum):
    CACHE_FULL = "cache-full"
    AGE = "age"
    SYNC = "sync"
    CHECKPOINT = "checkpoint"
    CLEANER = "cleaner"


@dataclass(frozen=True)
class WritebackConfig:
    """Tunable write-back policy knobs."""

    age_threshold: float = 30.0
    """Seconds a block may stay dirty before it is pushed to disk."""

    dirty_high_fraction: float = 0.5
    """Dirty-bytes fraction of cache capacity that triggers a write."""

    def __post_init__(self) -> None:
        if self.age_threshold < 0:
            raise ValueError(f"negative age threshold: {self.age_threshold}")
        if not 0.0 < self.dirty_high_fraction <= 1.0:
            raise ValueError(
                f"dirty_high_fraction must be in (0, 1]: "
                f"{self.dirty_high_fraction}"
            )


class WritebackMonitor:
    """Decides when the cache needs a write-back pass."""

    def __init__(
        self,
        cache: BlockCache,
        clock: SimClock,
        config: Optional[WritebackConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.cache = cache
        self.clock = clock
        self.config = config or WritebackConfig()
        self.triggers: dict = {}
        obs = telemetry or NULL_TELEMETRY
        self._m_triggers = {
            reason: obs.counter(
                "cache.writeback_triggers", reason=reason.value
            )
            for reason in WritebackReason
        }

    def _dirty_threshold_bytes(self) -> int:
        return int(self.cache.capacity_bytes * self.config.dirty_high_fraction)

    def check(self) -> Optional[WritebackReason]:
        """Reason a write-back should start now, or None."""
        if (
            self.cache.dirty_bytes >= self._dirty_threshold_bytes()
            or self.cache.over_capacity()
        ):
            return self._fire(WritebackReason.CACHE_FULL)
        oldest = self.cache.oldest_dirty_time()
        if (
            oldest is not None
            and self.clock.now() - oldest >= self.config.age_threshold
        ):
            return self._fire(WritebackReason.AGE)
        return None

    def next_age_deadline(self) -> Optional[float]:
        """Instant at which the oldest dirty block crosses the age
        threshold (None while nothing is dirty).

        The service layer's background flusher schedules its wake-ups
        from this instead of polling ``check()`` — and because an
        explicit flush (``note_explicit`` + the flush itself) empties
        the dirty set, the deadline naturally resets: blocks dirtied
        after the flush get a fresh age budget.
        """
        oldest = self.cache.oldest_dirty_time()
        if oldest is None:
            return None
        return oldest + self.config.age_threshold

    def _fire(self, reason: WritebackReason) -> WritebackReason:
        self.triggers[reason] = self.triggers.get(reason, 0) + 1
        self._m_triggers[reason].inc()
        return reason

    def note_explicit(self, reason: WritebackReason) -> None:
        """Record an externally initiated write-back (sync, checkpoint).

        The caller is about to flush the cache itself; once that flush
        completes, the dirty-trigger state (dirty-bytes threshold and
        the age clock, both derived from the cache's dirty set) is
        reset as a side effect — ``check()`` reports None and
        ``next_age_deadline()`` starts over from the next dirtying.
        """
        self._fire(reason)
