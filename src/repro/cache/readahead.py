"""Sequential readahead for the block cache.

The paper's Figure 4 point is that LFS reads match FFS "when files are
read the way they were written" — sequentially.  Real systems get that
bandwidth by *clustering*: detect a sequential stream and issue one
large vectored read ahead of it instead of one request per block.
:class:`ReadaheadPolicy` is that detector.  It keeps a tiny per-inode
stream state (expected next logical block and current run length) and,
once a stream looks sequential, tells the file system how many blocks to
prefetch past the requested range.  The file system fetches them with
its ordinary clustered-read machinery (one vectored ``SimDisk.read`` per
disk-contiguous run, naturally bounded by segment/allocation contiguity)
and reports back which blocks were prefetched, so the first demand hit
on each one is counted in ``cache.readahead_hits``.

Prefetching issues real simulated I/O, which advances the simulated
clock.  Seeded experiments that pin device images byte-for-byte
therefore run with the default window of 0 (disabled); benchmarks and
the CLI opt in explicitly via ``readahead_blocks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.obs import NULL_TELEMETRY, Telemetry


@dataclass
class ReadaheadStats:
    sequential_runs: int = 0
    """Streams that crossed the sequential threshold at least once."""
    blocks_prefetched: int = 0
    hits: int = 0
    """Demand reads served by a block the policy prefetched."""


@dataclass
class _Stream:
    next_lbn: int
    sequential: bool
    prefetched: Set[int] = field(default_factory=set)


class ReadaheadPolicy:
    """Per-inode sequential-stream detection and prefetch sizing."""

    def __init__(
        self,
        window_blocks: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if window_blocks < 0:
            raise ValueError(
                f"readahead window must be >= 0 blocks: {window_blocks}"
            )
        self.window_blocks = window_blocks
        self.stats = ReadaheadStats()
        self._streams: Dict[int, _Stream] = {}
        obs = telemetry or NULL_TELEMETRY
        self._obs_enabled = obs.enabled
        self._m_hits = obs.counter("cache.readahead_hits")
        self._m_prefetched = obs.counter("cache.readahead_prefetched")

    @property
    def enabled(self) -> bool:
        return self.window_blocks > 0

    def advise(self, inum: int, first: int, last: int) -> int:
        """Record a demand read of blocks ``[first, last]``.

        Returns how many blocks past ``last`` are worth prefetching —
        zero unless the inode's access pattern is sequential.  Also
        settles the hit accounting for any previously prefetched block
        the range touches.
        """
        if not self.window_blocks:
            return 0
        stream = self._streams.get(inum)
        if stream is None:
            # First touch of this inode: remember where it left off, but
            # one access — however large — is not yet a stream.
            self._streams[inum] = _Stream(next_lbn=last + 1, sequential=False)
            return 0
        if first == stream.next_lbn:
            # A continuation: the access picks up exactly where the last
            # one ended.  That is the sequential signature.
            if not stream.sequential:
                stream.sequential = True
                self.stats.sequential_runs += 1
        else:
            # The stream broke: restart detection at the new position.
            # Blocks prefetched for the old run stay in the cache (they
            # are clean and evictable) but no longer count as hits.
            stream.sequential = False
            stream.prefetched.clear()
        stream.next_lbn = last + 1
        if not stream.sequential:
            return 0
        if stream.prefetched:
            for lbn in range(first, last + 1):
                if lbn in stream.prefetched:
                    stream.prefetched.discard(lbn)
                    self.stats.hits += 1
                    if self._obs_enabled:
                        self._m_hits.inc()
        return self.window_blocks

    def note_prefetched(self, inum: int, lbn: int) -> None:
        """The file system brought ``lbn`` in ahead of the stream."""
        stream = self._streams.get(inum)
        if stream is None:
            return
        stream.prefetched.add(lbn)
        self.stats.blocks_prefetched += 1
        if self._obs_enabled:
            self._m_prefetched.inc()

    def forget(self, inum: int) -> None:
        """Drop stream state (file deleted or truncated)."""
        self._streams.pop(inum, None)
