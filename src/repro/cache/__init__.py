"""The file cache.

Both file systems buffer blocks here.  For LFS the cache *is* the write
mechanism: §4.1 — "LFS uses the file cache as a write buffer that
accumulates changes to the file system and performs speed matching
between the CPU and disk subsystem."
"""

from repro.cache.block_cache import BlockCache, CacheBlock, CacheStats
from repro.cache.readahead import ReadaheadPolicy, ReadaheadStats
from repro.cache.writeback import WritebackConfig, WritebackMonitor

__all__ = [
    "BlockCache",
    "CacheBlock",
    "CacheStats",
    "ReadaheadPolicy",
    "ReadaheadStats",
    "WritebackConfig",
    "WritebackMonitor",
]
