"""Block cache with dirty tracking and LRU eviction.

Blocks are keyed by :class:`~repro.common.inode.BlockKey` — (owner inode,
kind, index) — because in LFS a block has no stable disk address to key
by: every write relocates it.  The payload is either raw bytes (data and
directory blocks) or a mutable list of u64 disk addresses (pointer
blocks), so the :class:`~repro.common.inode.BlockMap` can edit pointer
blocks in place.

Eviction only ever removes *clean data* blocks: dirty blocks must first
be written back by the owning file system, and metadata blocks (pointer
blocks, inode-map blocks) stay resident, matching the paper's assumption
that "blocks mapping active files will stay memory resident" (§4.2.1).
"""

from __future__ import annotations

import struct
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple, Union

from repro.common.inode import BlockKey, BlockKind
from repro.errors import InvalidArgumentError
from repro.obs import NULL_TELEMETRY, Telemetry

Payload = Union[bytearray, List[int]]

# Shared zero source for padding short blocks without allocating a fresh
# bytes object per block; slicing a memoryview is copy-free.
_ZERO_PAD = memoryview(bytes(64 * 1024))


@dataclass
class CacheBlock:
    """One cached block."""

    key: BlockKey
    payload: Payload
    dirty: bool = False
    dirty_since: float = 0.0

    def as_bytes(self, block_size: int) -> bytes:
        """Serialized block contents, zero-padded to ``block_size``."""
        if isinstance(self.payload, list):
            return struct.pack(f"<{len(self.payload)}Q", *self.payload)
        data = bytes(self.payload)
        if len(data) < block_size:
            data += b"\x00" * (block_size - len(data))
        return data

    def write_into(self, out: memoryview, block_size: int) -> None:
        """Serialize into ``out`` (``block_size`` writable bytes).

        The zero-copy twin of :meth:`as_bytes`: the segment writer hands
        us a slice of its pooled buffer and we fill it in place, so no
        per-block ``bytes`` object is ever materialized on the write
        path.
        """
        payload = self.payload
        if isinstance(payload, list):
            struct.pack_into(f"<{len(payload)}Q", out, 0, *payload)
            used = len(payload) * 8
        else:
            used = len(payload)
            out[:used] = payload
        if used < block_size:
            pad = block_size - used
            if pad <= len(_ZERO_PAD):
                out[used:block_size] = _ZERO_PAD[:pad]
            else:
                out[used:block_size] = bytes(pad)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    writebacks_requested: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BlockCache:
    """LRU block cache sized in bytes."""

    def __init__(
        self,
        capacity_bytes: int,
        block_size: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if capacity_bytes < block_size:
            raise InvalidArgumentError(
                f"cache capacity {capacity_bytes} smaller than one "
                f"{block_size}-byte block"
            )
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self._blocks: "OrderedDict[BlockKey, CacheBlock]" = OrderedDict()
        self._by_inum: dict = {}
        self._dirty_bytes = 0
        self._dirty_fifo: Deque[Tuple[BlockKey, float]] = deque()
        self.stats = CacheStats()
        obs = telemetry or NULL_TELEMETRY
        self._obs_enabled = obs.enabled
        self._m_hits = obs.counter("cache.hits")
        self._m_misses = obs.counter("cache.misses")
        self._m_insertions = obs.counter("cache.insertions")
        self._m_evictions = obs.counter("cache.evictions")
        self._m_dirty_bytes = obs.gauge("cache.dirty_bytes")

    # ------------------------------------------------------------------
    # Lookup / insertion
    # ------------------------------------------------------------------

    def get(self, key: BlockKey) -> Optional[CacheBlock]:
        block = self._blocks.get(key)
        if block is None:
            self.stats.misses += 1
            if self._obs_enabled:
                self._m_misses.inc()
            return None
        self.stats.hits += 1
        if self._obs_enabled:
            self._m_hits.inc()
        self._blocks.move_to_end(key)
        return block

    def peek(self, key: BlockKey) -> Optional[CacheBlock]:
        """Lookup without touching LRU order or hit statistics."""
        return self._blocks.get(key)

    def contains(self, key: BlockKey) -> bool:
        return key in self._blocks

    def insert(
        self, key: BlockKey, payload: Payload, dirty: bool, now: float
    ) -> CacheBlock:
        """Insert (or replace) a block; evicts clean data blocks if full."""
        old = self._blocks.pop(key, None)
        if old is not None and old.dirty:
            self._dirty_bytes -= self.block_size
        block = CacheBlock(key=key, payload=payload, dirty=dirty)
        self._blocks[key] = block
        self._by_inum.setdefault(key.inum, set()).add(key)
        self.stats.insertions += 1
        if self._obs_enabled:
            self._m_insertions.inc()
        if dirty:
            self._note_dirty(block, now)
        elif self._obs_enabled:
            self._m_dirty_bytes.set(self._dirty_bytes)
        self._evict_to_capacity()
        return block

    def mark_dirty(self, key: BlockKey, now: float) -> None:
        block = self._blocks.get(key)
        if block is None:
            raise InvalidArgumentError(f"cannot dirty uncached block {key}")
        if not block.dirty:
            self._note_dirty(block, now)

    def _note_dirty(self, block: CacheBlock, now: float) -> None:
        block.dirty = True
        block.dirty_since = now
        self._dirty_bytes += self.block_size
        self._dirty_fifo.append((block.key, now))
        if self._obs_enabled:
            self._m_dirty_bytes.set(self._dirty_bytes)

    def mark_clean(self, key: BlockKey) -> None:
        block = self._blocks.get(key)
        if block is not None and block.dirty:
            block.dirty = False
            self._dirty_bytes -= self.block_size
            if self._obs_enabled:
                self._m_dirty_bytes.set(self._dirty_bytes)

    def discard(self, key: BlockKey) -> None:
        """Remove a block outright (e.g. file deleted before write-back)."""
        block = self._blocks.pop(key, None)
        if block is not None:
            self._forget_key(key)
            if block.dirty:
                self._dirty_bytes -= self.block_size
                if self._obs_enabled:
                    self._m_dirty_bytes.set(self._dirty_bytes)

    def _forget_key(self, key: BlockKey) -> None:
        keys = self._by_inum.get(key.inum)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_inum[key.inum]

    def discard_file(self, inum: int) -> int:
        """Drop every cached block owned by ``inum``; returns count."""
        victims = list(self._by_inum.get(inum, ()))
        for key in victims:
            self.discard(key)
        return len(victims)

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------

    @property
    def dirty_bytes(self) -> int:
        return self._dirty_bytes

    @property
    def used_bytes(self) -> int:
        return len(self._blocks) * self.block_size

    def dirty_blocks(self) -> Iterator[CacheBlock]:
        """All dirty blocks, in LRU (roughly: modification) order."""
        return (block for block in self._blocks.values() if block.dirty)

    def oldest_dirty_time(self) -> Optional[float]:
        """When the longest-dirty block became dirty (None if all clean)."""
        while self._dirty_fifo:
            key, since = self._dirty_fifo[0]
            block = self._blocks.get(key)
            if block is not None and block.dirty and block.dirty_since == since:
                return since
            self._dirty_fifo.popleft()
        return None

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _evictable(self, block: CacheBlock) -> bool:
        # Pointer, inode-map and usage blocks stay resident (§4.2.1);
        # data and packed-inode blocks are fair game once clean.
        return not block.dirty and block.key.kind in (
            BlockKind.DATA,
            BlockKind.INODE,
        )

    def _evict_to_capacity(self) -> None:
        # A full cache exceeds capacity by one block per insert, so this
        # runs on nearly every insert of a streaming read.  Walk the LRU
        # order only as far as needed instead of materializing the full
        # evictable list each time — same victims, same order, but the
        # common case touches one or two entries, not the whole cache.
        over = self.used_bytes - self.capacity_bytes
        if over <= 0:
            return
        victims: List[BlockKey] = []
        for key, block in self._blocks.items():
            if self._evictable(block):
                victims.append(key)
                over -= self.block_size
                if over <= 0:
                    break
        for key in victims:
            del self._blocks[key]
            self._forget_key(key)
            self.stats.evictions += 1
            if self._obs_enabled:
                self._m_evictions.inc()

    def over_capacity(self) -> bool:
        """True when even after eviction the cache exceeds capacity.

        This is the "cache full" write-back trigger from §4.3.5: the
        remaining blocks are dirty and the file system must start a
        segment write to make them clean (and thus evictable).
        """
        return self.used_bytes > self.capacity_bytes

    def drop_clean(self, metadata_too: bool = True) -> int:
        """Drop every clean block (benchmarks' "flush the file cache").

        Dirty blocks always survive — dropping them would lose data.
        """
        victims = [
            key
            for key, block in self._blocks.items()
            if not block.dirty
            and (metadata_too or block.key.kind is BlockKind.DATA)
        ]
        for key in victims:
            del self._blocks[key]
            self._forget_key(key)
        return len(victims)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return (
            f"BlockCache({len(self._blocks)} blocks, "
            f"dirty={self._dirty_bytes}B/{self.capacity_bytes}B)"
        )
