"""The fault-injection policy: what breaks, when, and how often.

A :class:`FaultInjector` is a seeded, deterministic policy object that a
:class:`~repro.faults.device.FaultyDevice` consults on every I/O and at
every crash.  It models the disk failure classes a log-structured store
must survive beyond a clean power cut:

* **torn writes** — only a prefix of a multi-sector write persists
  across a crash (delegated to ``SectorDevice.crash``'s ``rng`` hook so
  the tear rides the ordinary pending-write rollback);
* **silent bit corruption** — a crash flips one bit in each of a few
  previously written sectors, with no error reported on read;
* **grown bad sectors** — sectors that become permanently unreadable,
  raising a typed :class:`~repro.errors.MediaError`, until a later
  write remaps them;
* **transient read errors** — a read raises
  :class:`~repro.errors.TransientIOError` once, and the same request
  retried succeeds (the timing layer's retry path absorbs these).

Every decision comes from one ``random.Random`` seeded at construction,
so a trial is exactly reproducible from its seed.  Everything injected
is counted through the ``disk.fault.*`` telemetry series and mirrored
in plain attributes for callers without a registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.errors import MediaError, TransientIOError
from repro.obs import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.device import FaultyDevice


@dataclass(frozen=True)
class FaultConfig:
    """How aggressively each fault class is injected."""

    torn_write_prob: float = 0.0
    """Probability each rolled-back multi-sector write tears at crash."""

    bit_flip_sectors: int = 0
    """Written sectors silently corrupted (one bit each) per crash."""

    grow_bad_sectors: int = 0
    """Written sectors that become unreadable per crash."""

    transient_read_prob: float = 0.0
    """Probability any given read raises a retryable error."""

    def __post_init__(self) -> None:
        for name in ("torn_write_prob", "transient_read_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        for name in ("bit_flip_sectors", "grow_bad_sectors"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def none(cls) -> "FaultConfig":
        """A config that injects nothing (counters still registered)."""
        return cls()

    @property
    def any_faults(self) -> bool:
        return (
            self.torn_write_prob > 0
            or self.bit_flip_sectors > 0
            or self.grow_bad_sectors > 0
            or self.transient_read_prob > 0
        )


class FaultInjector:
    """Seeded fault policy consulted by :class:`FaultyDevice`."""

    def __init__(
        self,
        config: Optional[FaultConfig] = None,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or FaultConfig.none()
        self.rng = random.Random(seed)
        self.bad_sectors: Set[int] = set()
        self._pending_transient: Set[Tuple[int, int]] = set()
        self._torn_seen = 0
        # Plain mirrors of the telemetry counters.
        self.torn_writes = 0
        self.bit_flips = 0
        self.bad_sectors_grown = 0
        self.media_errors = 0
        self.transient_errors = 0
        self.remaps = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        obs = self.telemetry
        self._m_torn = obs.counter("disk.fault.torn_writes")
        self._m_flips = obs.counter("disk.fault.bit_flips")
        self._m_grown = obs.counter("disk.fault.bad_sectors_grown")
        self._m_media = obs.counter("disk.fault.media_errors")
        self._m_transient = obs.counter("disk.fault.transient_errors")
        self._m_remaps = obs.counter("disk.fault.remaps")

    # ------------------------------------------------------------------
    # Read-side hooks
    # ------------------------------------------------------------------

    def before_read(self, sector: int, count: int) -> None:
        """Raise the fault (if any) this read should observe.

        A transient failure is armed per (sector, count) request: the
        first issue raises, the identical retry succeeds — which is what
        lets the timing layer's bounded retry loop always win.
        """
        key = (sector, count)
        if key in self._pending_transient:
            self._pending_transient.discard(key)
        elif (
            self.config.transient_read_prob
            and self.rng.random() < self.config.transient_read_prob
        ):
            self._pending_transient.add(key)
            self.transient_errors += 1
            self._m_transient.inc()
            raise TransientIOError(
                f"transient read error at sectors [{sector}, {sector + count})"
            )
        if self.bad_sectors:
            for bad in range(sector, sector + count):
                if bad in self.bad_sectors:
                    self.media_errors += 1
                    self._m_media.inc()
                    raise MediaError(
                        f"unreadable sector {bad} "
                        f"(read of [{sector}, {sector + count}))",
                        sector=bad,
                    )

    # ------------------------------------------------------------------
    # Write-side hook
    # ------------------------------------------------------------------

    def note_write(self, sector: int, count: int) -> None:
        """A successful write remaps (heals) any bad sector it covers."""
        if not self.bad_sectors:
            return
        for healed in range(sector, sector + count):
            if healed in self.bad_sectors:
                self.bad_sectors.discard(healed)
                self.remaps += 1
                self._m_remaps.inc()

    # ------------------------------------------------------------------
    # Crash-side hook
    # ------------------------------------------------------------------

    def after_crash(self, device: "FaultyDevice") -> None:
        """Apply crash-coincident damage to the surviving image."""
        new_tears = device.torn_writes - self._torn_seen
        self._torn_seen = device.torn_writes
        if new_tears:
            self.torn_writes += new_tears
            self._m_torn.inc(new_tears)
        pool = sorted(device.written_sectors)
        if not pool:
            return
        for _ in range(self.config.grow_bad_sectors):
            sector = pool[self.rng.randrange(len(pool))]
            if sector not in self.bad_sectors:
                self.bad_sectors.add(sector)
                self.bad_sectors_grown += 1
                self._m_grown.inc()
        for _ in range(self.config.bit_flip_sectors):
            sector = pool[self.rng.randrange(len(pool))]
            device.flip_bit(sector, self.rng.randrange(device.sector_size * 8))
            self.bit_flips += 1
            self._m_flips.inc()

    def mark_unreadable(self, sector: int) -> None:
        """Force a specific sector bad (unit tests, targeted scenarios)."""
        if sector not in self.bad_sectors:
            self.bad_sectors.add(sector)
            self.bad_sectors_grown += 1
            self._m_grown.inc()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(bad={len(self.bad_sectors)}, "
            f"torn={self.torn_writes}, flips={self.bit_flips}, "
            f"transient={self.transient_errors})"
        )
