"""Crash-under-load chaos campaign (the ``repro chaos`` command).

Where ``repro crashtest`` crashes a single-threaded workload, chaos
crashes the **full service rig** — :class:`~repro.service.scheduler.
RequestScheduler` + :class:`~repro.service.admission.AdmissionController`
+ :class:`~repro.service.committer.GroupCommitter` + N client streams —
at adversarial instants, then remounts, rolls forward, and resumes the
surviving streams against the recovered image.

The teeth are the **durability contract**, checked by
:class:`DurabilityLedger` after every crash+remount:

* every byte a client was *acked* for (an fsync completion) is readable
  and intact — acked state can never move backwards past the last
  group-commit barrier;
* every un-acked in-flight mutation is either fully present or fully
  absent — the recovered content of each file must be *exactly* one of
  the whole-mutation states the clients produced, never a torn hybrid.

The ledger is a shadow model: it never reads the file system while the
rig runs (that would perturb the simulation), it just mirrors every
mutation the scheduler performs and advances a per-file durable floor at
each successful ``fsync_many`` (flush + drain = everything durable).
This is sound because the VFS write path inserts a whole mutation into
the cache *before* any write-back can run, and roll-forward replays only
complete flushes — so a recovered file is always some whole-mutation
state at least as new as its floor.

Faults injected here are the *contract-preserving* classes (torn
in-flight writes, transient read errors).  Bit rot and grown bad
sectors can destroy acked bytes — surviving those with detection is
``crashtest``'s contract; chaos proves the stronger promise on media
that merely crashes.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.errors import FileNotFoundError_, ReproError
from repro.faults.device import FaultyDevice
from repro.faults.injector import FaultConfig, FaultInjector
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import LogStructuredFS
from repro.lfs.verify import verify_lfs
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.service.config import ServiceConfig, validate_rig
from repro.service.scheduler import (
    ClientStream,
    RequestScheduler,
    prefill,
    serviceable_bytes,
)
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import KIB, MIB

DEFAULT_CHAOS_DEVICE_BYTES = 32 * MIB

INSTANTS = ("mid-clean", "mid-commit", "throttle-payback", "high-fill")
"""The four adversarial crash instants; trial *i* exercises
``INSTANTS[i % 4]``, so any campaign of >= 4 trials covers all four."""

HIGH_FILL_FRACTION = 0.90
"""The high-fill instant fires once live data crosses this fraction of
serviceable capacity."""

_TORN_PROBS = (0.0, 0.5, 1.0)
_TRANSIENT_PROBS = (0.0, 0.0, 0.01)

_ABSENT = "absent"
"""Ledger state marker for "this path does not resolve"."""


class CrashSignal(Exception):
    """Raised by an armed :class:`CrashPlan` at the chosen instant.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the storage stack catches it, so it unwinds cleanly out of
    ``scheduler.run()`` to the trial driver, which then power-fails the
    device.  (In-memory state left mid-operation does not matter — the
    crash discards all of it; only the device image survives.)
    """


# ----------------------------------------------------------------------
# The durability-contract ledger
# ----------------------------------------------------------------------


def _digest(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


@dataclass
class AckRecord:
    """One client-acked fsync: what the ack promised, and when."""

    path: str
    inum: int
    state_index: int
    ack_time: float
    trace_root: Optional[int]


@dataclass
class _FileRecord:
    """Shadow state of one client file: every whole-mutation state."""

    path: str
    inum: int = -1
    shadow: bytearray = field(default_factory=bytearray)
    states: List[str] = field(default_factory=lambda: [_ABSENT])
    sizes: List[int] = field(default_factory=lambda: [0])
    floor: int = 0

    @property
    def last_index(self) -> int:
        return len(self.states) - 1

    def push(self, state: str, size: int) -> None:
        self.states.append(state)
        self.sizes.append(size)


class DurabilityLedger:
    """Records client-visible mutations and proves they survive crashes.

    The scheduler notes every create / write / unlink *as the cache
    mutation lands*; the committer's ``on_durable`` hook advances every
    file's durable floor at each successful group commit; acked fsyncs
    are recorded with their trace roots so a violation can name the
    request that was lied to.
    """

    def __init__(self) -> None:
        self.records: Dict[str, _FileRecord] = {}
        self.acks: List[AckRecord] = []
        self.barriers = 0
        self.checks = 0

    # -- mutation hooks (called by the scheduler) ----------------------

    def _record(self, path: str) -> _FileRecord:
        record = self.records.get(path)
        if record is None:
            record = _FileRecord(path=path)
            self.records[path] = record
        return record

    def note_create(self, path: str, inum: int) -> None:
        record = self._record(path)
        record.inum = inum
        record.shadow = bytearray()
        record.push(_digest(b""), 0)

    def note_write(self, path: str, offset: int, data: bytes) -> None:
        record = self._record(path)
        shadow = record.shadow
        end = offset + len(data)
        if end > len(shadow):
            shadow.extend(b"\x00" * (end - len(shadow)))
        shadow[offset:end] = data
        record.push(_digest(bytes(shadow)), len(shadow))

    def note_unlink(self, path: str) -> None:
        record = self._record(path)
        record.shadow = bytearray()
        record.push(_ABSENT, 0)

    # -- durability hooks ----------------------------------------------

    def note_barrier(self) -> None:
        """A group commit's flush + drain completed: everything written
        so far is durable, so no file may ever be observed older than
        its current state again."""
        self.barriers += 1
        for record in self.records.values():
            record.floor = record.last_index

    def note_ack(
        self, path: str, inum: int, now: float, ctx=None
    ) -> None:
        record = self._record(path)
        self.acks.append(
            AckRecord(
                path=path,
                inum=inum,
                state_index=record.last_index,
                ack_time=now,
                trace_root=getattr(ctx, "root_id", None),
            )
        )

    # -- the contract check --------------------------------------------

    def _observe(self, fs: LogStructuredFS, path: str):
        """Return (state, size) of ``path`` on the (recovered) fs."""
        try:
            data = fs.read_file(path)
        except FileNotFoundError_:
            return _ABSENT, 0
        return _digest(bytes(data)), len(data)

    def check(
        self, fs: LogStructuredFS, require_latest: bool = False
    ) -> List[str]:
        """Prove every tracked file honors the durability contract.

        Post-crash (``require_latest=False``): the observed content must
        be exactly one recorded whole-mutation state with index >= the
        durable floor.  End-of-trial (``require_latest=True``): it must
        be exactly the *latest* state.  Returns one violation string per
        broken file — empty means the contract held.
        """
        violations: List[str] = []
        for path in sorted(self.records):
            record = self.records[path]
            self.checks += 1
            observed, size = self._observe(fs, path)
            if require_latest:
                admissible = range(record.last_index, record.last_index + 1)
            else:
                admissible = range(record.floor, record.last_index + 1)
            if any(record.states[i] == observed for i in admissible):
                continue
            acks = [a for a in self.acks if a.path == path]
            last_ack = acks[-1] if acks else None
            wanted = (
                f"state {record.last_index}"
                if require_latest
                else f"states [{record.floor}..{record.last_index}]"
            )
            violations.append(
                f"{path}: observed {observed[:12]}/{size}B matches none of "
                f"{wanted} "
                f"({len(record.states)} recorded, floor {record.floor}, "
                f"{len(acks)} acks"
                + (
                    f", last ack state {last_ack.state_index} at "
                    f"t={last_ack.ack_time:.6f} "
                    f"trace_root={last_ack.trace_root}"
                    if last_ack
                    else ""
                )
                + ")"
            )
        return violations

    def reconcile(self, fs: LogStructuredFS) -> None:
        """Collapse each record to the recovered truth after a remount.

        The recovered state was just proven admissible by :meth:`check`
        and the mount made it durable, so the history restarts there
        with the floor at zero.
        """
        for record in self.records.values():
            observed, size = self._observe(fs, record.path)
            if observed == _ABSENT:
                record.shadow = bytearray()
            else:
                record.shadow = bytearray(fs.read_file(record.path))
            record.states = [observed]
            record.sizes = [size]
            record.floor = 0


# ----------------------------------------------------------------------
# Crash instants
# ----------------------------------------------------------------------


class CrashPlan:
    """Arms one adversarial crash instant on a live rig.

    Works by shadowing bound methods with instance attributes — the
    wrappers raise :class:`CrashSignal` at the seeded moment and
    :meth:`disarm` always restores the originals (the remount and the
    resumed run must see an unwrapped stack).
    """

    def __init__(
        self,
        instant: str,
        rng: random.Random,
        fs: LogStructuredFS,
        scheduler: RequestScheduler,
    ) -> None:
        if instant not in INSTANTS:
            raise ValueError(f"unknown crash instant: {instant!r}")
        self.instant = instant
        self.fs = fs
        self.disk = fs.disk
        self.scheduler = scheduler
        self.fired = False
        self.fired_detail = ""
        self._write_countdown: Optional[int] = None
        self._restores: List[Callable[[], None]] = []
        arm = {
            "mid-clean": self._arm_mid_clean,
            "mid-commit": self._arm_mid_commit,
            "throttle-payback": self._arm_throttle_payback,
            "high-fill": self._arm_high_fill,
        }[instant]
        arm(rng)

    # -- plumbing ------------------------------------------------------

    def _shadow(self, obj, name: str, wrapper) -> None:
        setattr(obj, name, wrapper)
        self._restores.append(lambda: obj.__dict__.pop(name, None))

    def disarm(self) -> None:
        for restore in self._restores:
            restore()
        self._restores = []

    def _fire(self, detail: str) -> None:
        self.fired = True
        self.fired_detail = detail
        self._write_countdown = None
        raise CrashSignal(detail)

    def _hook_disk_writes(self) -> None:
        """Crash on the N-th disk write after a countdown is armed."""
        original = self.disk.write

        def write_wrapper(sector, data, sync=False, label=""):
            if self._write_countdown is not None and not self.fired:
                self._write_countdown -= 1
                if self._write_countdown <= 0:
                    self._fire(
                        f"{self.instant}: power fail before disk write "
                        f"to sector {sector}"
                    )
            return original(sector, data, sync=sync, label=label)

        self._shadow(self.disk, "write", write_wrapper)

    # -- the four instants ---------------------------------------------

    def _arm_mid_clean(self, rng: random.Random) -> None:
        target = rng.randrange(1, 4)
        original = self.fs.cleaner._relocate_live_blocks
        state = {"calls": 0}

        def relocate_wrapper(seg):
            state["calls"] += 1
            if state["calls"] == target and not self.fired:
                self._fire(
                    f"mid-clean: relocation #{state['calls']} "
                    f"(segment {seg})"
                )
            return original(seg)

        self._shadow(self.fs.cleaner, "_relocate_live_blocks", relocate_wrapper)

    def _arm_mid_commit(self, rng: random.Random) -> None:
        fsync_target = rng.randrange(1, 4)
        countdown = rng.randrange(1, 5)
        self._hook_disk_writes()
        original = self.fs.fsync_many
        state = {"calls": 0}

        def fsync_wrapper(handles):
            state["calls"] += 1
            if state["calls"] == fsync_target and not self.fired:
                self._write_countdown = countdown
            result = original(handles)
            if self._write_countdown is not None and not self.fired:
                # The batch flushed in fewer writes than the countdown:
                # crash in the window after durability, before the acks.
                self._fire(
                    f"mid-commit: batch #{state['calls']} durable, "
                    f"acks never delivered"
                )
            return result

        self._shadow(self.fs, "fsync_many", fsync_wrapper)

    def _arm_throttle_payback(self, rng: random.Random) -> None:
        pay_target = rng.randrange(1, 3)
        countdown = rng.randrange(1, 6)
        self._hook_disk_writes()
        original = self.scheduler.admission.pay_throttle
        state = {"calls": 0}

        def pay_wrapper(ctx=None):
            state["calls"] += 1
            if state["calls"] == pay_target and not self.fired:
                self._write_countdown = countdown
            result = original(ctx) if ctx is not None else original()
            if self._write_countdown is not None and not self.fired:
                # The paid pass wrote less than the countdown: crash at
                # payback completion, before the writer re-submits.
                self._fire(
                    f"throttle-payback: pass #{state['calls']} ended"
                )
            return result

        self._shadow(self.scheduler.admission, "pay_throttle", pay_wrapper)

    def _arm_high_fill(self, rng: random.Random) -> None:
        threshold = int(HIGH_FILL_FRACTION * serviceable_bytes(self.fs))
        original = self.disk.write

        def write_wrapper(sector, data, sync=False, label=""):
            if not self.fired:
                live = self.fs.live_data_bytes()
                if live >= threshold:
                    self._fire(
                        f"high-fill: {live} live bytes >= "
                        f"{threshold} ({HIGH_FILL_FRACTION:.0%} of "
                        f"serviceable)"
                    )
            return original(sector, data, sync=sync, label=label)

        self._shadow(self.disk, "write", write_wrapper)


# ----------------------------------------------------------------------
# Trials
# ----------------------------------------------------------------------


@dataclass
class ChaosTrialResult:
    """What one crash-under-load trial observed."""

    trial: int
    instant: str
    outcome: str = "passed"  # "passed" | "violated" | "unhandled"
    fired: bool = False
    crash_detail: str = ""
    detail: str = ""
    violations: List[str] = field(default_factory=list)
    acked_fsyncs: int = 0
    barriers: int = 0
    checks: int = 0
    completed_requests: int = 0
    resumed_clients: int = 0
    degraded: bool = False
    faults: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.outcome == "passed"


@dataclass
class ChaosReport:
    """Aggregated durability report for a whole chaos campaign."""

    seed: int
    clients: int
    trials: List[ChaosTrialResult] = field(default_factory=list)
    torn_writes: int = 0
    transient_errors: int = 0

    @property
    def failures(self) -> List[ChaosTrialResult]:
        return [t for t in self.trials if not t.passed]

    @property
    def passed_all(self) -> bool:
        return not self.failures

    def fired_count(self, instant: str) -> int:
        return sum(
            1 for t in self.trials if t.instant == instant and t.fired
        )

    def planned_count(self, instant: str) -> int:
        return sum(1 for t in self.trials if t.instant == instant)

    @property
    def instants_covered(self) -> bool:
        return all(
            self.fired_count(instant) > 0
            for instant in INSTANTS
            if self.planned_count(instant) > 0
        )

    def render(self) -> str:
        checks = sum(t.checks for t in self.trials)
        violations = sum(len(t.violations) for t in self.trials)
        acked = sum(t.acked_fsyncs for t in self.trials)
        crashes = sum(1 for t in self.trials if t.fired)
        resumed = sum(t.resumed_clients for t in self.trials)
        degraded = sum(1 for t in self.trials if t.degraded)
        lines = [
            f"chaos: {len(self.trials)} trials, seed {self.seed}, "
            f"{self.clients} clients",
            f"  crashes injected: {crashes}",
        ]
        for instant in INSTANTS:
            planned = self.planned_count(instant)
            if not planned:
                continue
            lines.append(
                f"    {instant + ':':18s}{self.fired_count(instant)}"
                f"/{planned} fired"
            )
        lines += [
            f"  durability contract: {checks} file checks, "
            f"{violations} violations",
            f"  acked fsyncs: {acked}",
            f"  resumed clients: {resumed}",
            f"  degraded trials: {degraded}",
            f"  failed trials: {len(self.failures)}",
        ]
        for t in self.failures:
            lines.append(f"    trial {t.trial} [{t.instant}]: {t.detail}")
            for violation in t.violations:
                lines.append(f"      {violation}")
        lines += [
            "fault injection totals:",
            f"  torn writes {self.torn_writes}, "
            f"transient errors {self.transient_errors}",
            "durability: "
            + ("OK" if self.passed_all else "VIOLATED"),
        ]
        return "\n".join(lines)


def _chaos_lfs_config() -> LfsConfig:
    return LfsConfig(
        segment_size=256 * KIB,
        cache_bytes=2 * MIB,
        max_inodes=4096,
    )


def _chaos_service_config(
    seed: int, trial: int, clients: int, requests: int, instant: str
) -> ServiceConfig:
    # Each instant needs a different amount of pressure to actually
    # occur: cleaning wants a fragmented, mostly full log; throttle
    # paybacks want a scarce clean reserve; a group commit happens at
    # any fill; high-fill needs room to *cross* the threshold live.
    fill = {
        "mid-clean": 0.80,
        "mid-commit": 0.30,
        "throttle-payback": 0.85,
        "high-fill": 0.88,
    }[instant]
    return ServiceConfig(
        num_clients=clients,
        seed=(seed << 8) ^ trial,
        requests_per_client=requests,
        fill_fraction=fill,
        fragment_every=4,
        reserve_watermark=6 if instant == "throttle-payback" else 2,
    )


def _chaos_fault_config(rng: random.Random) -> FaultConfig:
    # Contract-preserving classes only: torn in-flight writes and
    # transient read noise.  Bit rot / grown bad sectors destroy acked
    # bytes, which is crashtest's detection contract, not this one.
    return FaultConfig(
        torn_write_prob=rng.choice(_TORN_PROBS),
        transient_read_prob=rng.choice(_TRANSIENT_PROBS),
    )


def _reconcile_clients(
    fs: LogStructuredFS, clients: List[ClientStream]
) -> int:
    """Align surviving client working sets with the recovered image.

    Files whose creation never became durable are forgotten; a
    ``last_written`` that did not survive is cleared (the stream's next
    fsync degrades to a write, exactly as it does on a young working
    set).  Returns how many clients still have requests to issue.
    """
    resumable = 0
    for client in clients:
        client.files = [p for p in client.files if fs.exists(p)]
        if client.last_written is not None and not fs.exists(
            client.last_written
        ):
            client.last_written = None
        if client.issued < client.config.requests_per_client:
            resumable += 1
    return resumable


def run_chaos_trial(
    trial: int,
    seed: int,
    clients: int = 8,
    requests_per_client: int = 80,
    telemetry: Optional[Telemetry] = None,
    device_bytes: int = DEFAULT_CHAOS_DEVICE_BYTES,
) -> ChaosTrialResult:
    """One crash-under-load → remount → contract-check → resume cycle."""
    rng = random.Random(f"chaos-{seed}-{trial}")
    instant = INSTANTS[trial % len(INSTANTS)]
    fault_config = _chaos_fault_config(rng)
    injector = FaultInjector(
        fault_config, seed=rng.getrandbits(32), telemetry=telemetry
    )
    result = ChaosTrialResult(trial=trial, instant=instant)
    obs = telemetry or NULL_TELEMETRY
    obs.counter("chaos.trials").inc()
    try:
        _execute_chaos_trial(
            result,
            injector,
            rng,
            seed,
            clients,
            requests_per_client,
            device_bytes,
            telemetry,
        )
    except CrashSignal as exc:
        # An injected crash escaping the driver means the remount/resume
        # path re-entered an armed wrapper — a harness bug, not a pass.
        result.outcome = "unhandled"
        result.detail = f"CrashSignal escaped: {exc}"
    except ReproError as exc:
        # The rig must degrade politely, never abort: a typed error
        # escaping scheduler.run()/mount is a contract failure here
        # (unlike crashtest, where detection is the success criterion).
        result.outcome = "unhandled"
        result.detail = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: FAULT002 - campaign-level classifier
        result.outcome = "unhandled"
        result.detail = f"{type(exc).__name__}: {exc}"
    if result.violations:
        obs.counter("chaos.contract_violations").inc(len(result.violations))
    result.faults = {
        "torn_writes": injector.torn_writes,
        "transient_errors": injector.transient_errors,
    }
    return result


def _execute_chaos_trial(
    result: ChaosTrialResult,
    injector: FaultInjector,
    rng: random.Random,
    seed: int,
    clients: int,
    requests_per_client: int,
    device_bytes: int,
    telemetry: Optional[Telemetry],
) -> None:
    obs = telemetry or NULL_TELEMETRY
    lfs_config = _chaos_lfs_config()
    service_config = _chaos_service_config(
        seed, result.trial, clients, requests_per_client, result.instant
    )
    validate_rig(service_config, lfs_config, device_bytes)

    geometry = wren_iv(device_bytes)
    clock = SimClock()
    cpu = CpuModel(clock)
    device = FaultyDevice(
        geometry.num_sectors, geometry.sector_size, injector=injector
    )
    disk = SimDisk(geometry, clock, device=device, telemetry=telemetry)
    fs = LogStructuredFS.mkfs(disk, cpu, lfs_config, telemetry=telemetry)
    prefill(fs, service_config)

    ledger = DurabilityLedger()
    scheduler = RequestScheduler(
        fs, service_config, telemetry=telemetry, ledger=ledger
    )
    plan = CrashPlan(result.instant, rng, fs, scheduler)
    crashed = False
    try:
        scheduler.run()
    except CrashSignal:
        crashed = True
    finally:
        plan.disarm()
    result.fired = plan.fired
    result.crash_detail = plan.fired_detail
    result.completed_requests = scheduler.stats.completed
    result.acked_fsyncs = len(ledger.acks)

    live = fs
    if crashed:
        obs.counter("chaos.crashes_injected").inc()
        fs.crash()
        device.revive()
        live = LogStructuredFS.mount(
            disk, cpu, lfs_config, telemetry=telemetry
        )
        violations = ledger.check(live)
        result.checks = ledger.checks
        obs.counter("chaos.contract_checks").inc(ledger.checks)
        if violations:
            result.violations = violations
            result.outcome = "violated"
            result.detail = (
                f"{len(violations)} durability violations after "
                f"{result.crash_detail}"
            )
            return
        ledger.reconcile(live)
        result.resumed_clients = _reconcile_clients(live, scheduler.clients)
        obs.counter("chaos.resumed_clients").inc(result.resumed_clients)
        resumed = RequestScheduler(
            live,
            service_config,
            telemetry=telemetry,
            clients=scheduler.clients,
            ledger=ledger,
        )
        resumed.run()
        result.completed_requests += resumed.stats.completed
        result.degraded = live.degraded

    result.barriers = ledger.barriers
    result.acked_fsyncs = len(ledger.acks)
    # End-of-trial: with the rig quiesced every file must read back as
    # exactly its latest state (served from cache if not yet flushed).
    final = ledger.check(live, require_latest=True)
    result.checks = ledger.checks
    if final:
        result.violations = final
        result.outcome = "violated"
        result.detail = f"{len(final)} end-of-trial state mismatches"
        return
    live.unmount()
    verify = verify_lfs(device)
    if verify.errors:
        result.violations = [f"image-verify: {e}" for e in verify.errors]
        result.outcome = "violated"
        result.detail = (
            f"{len(verify.errors)} image verify errors after clean unmount"
        )


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------


def _chaos_trial_worker(
    trial: int,
    seed: int,
    clients: int,
    requests_per_client: int,
    device_bytes: int,
    with_telemetry: bool,
):
    """Run one trial in a worker process (see campaign._trial_worker)."""
    from repro.harness.parallel import export_telemetry_totals

    telemetry = Telemetry() if with_telemetry else None
    result = run_chaos_trial(
        trial,
        seed,
        clients=clients,
        requests_per_client=requests_per_client,
        telemetry=telemetry,
        device_bytes=device_bytes,
    )
    samples = (
        export_telemetry_totals(telemetry) if telemetry is not None else None
    )
    return result, samples


def run_chaos_campaign(
    trials: int = 12,
    seed: int = 0,
    clients: int = 8,
    requests_per_client: int = 80,
    telemetry: Optional[Telemetry] = None,
    device_bytes: int = DEFAULT_CHAOS_DEVICE_BYTES,
    log=None,
    jobs: int = 1,
) -> ChaosReport:
    """Run ``trials`` seeded crash-under-load trials and aggregate.

    Trial *i* of seed *s* is deterministic and self-contained;
    aggregation (report rows, fault totals, telemetry merge) always
    happens in trial order, so the report is byte-identical for any
    ``jobs`` value.
    """
    from repro.harness.parallel import merge_metric_samples, run_tasks

    report = ChaosReport(seed=seed, clients=clients)
    # Every trial — even under ``jobs=1`` — runs against its own fresh
    # Telemetry and is folded in afterwards, so the caller's telemetry
    # always sees the same sequence of per-trial merges in trial order.
    # Running serial trials inline against the shared object instead
    # would accumulate span seconds in a different float-addition order
    # than the merged path and break ``--jobs`` byte-identity.
    outcomes = run_tasks(
        _chaos_trial_worker,
        [
            (
                trial,
                seed,
                clients,
                requests_per_client,
                device_bytes,
                telemetry is not None,
            )
            for trial in range(trials)
        ],
        jobs=jobs,
    )
    results = []
    for result, samples in outcomes:
        results.append(result)
        if telemetry is not None and samples is not None:
            merge_metric_samples(telemetry, samples)
    for trial, result in enumerate(results):
        report.trials.append(result)
        report.torn_writes += result.faults.get("torn_writes", 0)
        report.transient_errors += result.faults.get("transient_errors", 0)
        if log is not None:
            fired = "crash" if result.fired else "no-crash"
            log(
                f"trial {trial:3d}: {result.instant:17s} {fired:9s} "
                f"{result.outcome:10s} "
                + (result.detail or result.crash_detail or "-")
            )
    return report
