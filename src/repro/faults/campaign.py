"""Randomized crash+corruption campaign (the ``repro crashtest`` command).

Each trial builds a fresh LFS on a :class:`FaultyDevice`, runs a seeded
random workload, power-fails it mid-activity (tearing in-flight writes,
flipping bits, growing bad sectors), remounts, exercises the cleaner,
and verifies the surviving image with :func:`repro.lfs.verify.verify_lfs`.

The contract under test is the robustness guarantee of the hardened
recovery stack: **every trial must end in a typed, reported state** —

* a clean remount whose verify pass finds nothing, or
* detected corruption: a checkpoint-region fallback, a roll-forward
  scan stopped/limited by damage, quarantined segments, verify
  findings, or a typed mount failure when both checkpoint regions are
  gone.

A trial that escapes with anything other than a :class:`ReproError`
(``struct.error``, ``KeyError``, …) is recorded as *unhandled* and
fails the campaign — that is the regression the crashtest exists to
catch.  Trials are deterministic: trial *i* of campaign seed *s* always
injects the same faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.errors import ReproError
from repro.faults.device import FaultyDevice
from repro.faults.injector import FaultConfig, FaultInjector
from repro.lfs.config import LfsConfig
from repro.lfs.filesystem import LogStructuredFS
from repro.lfs.verify import verify_lfs
from repro.obs import Telemetry
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import KIB, MIB

DEFAULT_DEVICE_BYTES = 24 * MIB

_TORN_PROBS = (0.0, 0.3, 1.0)
_BIT_FLIPS = (0, 0, 1, 2, 4)
_BAD_SECTORS = (0, 0, 1, 4, 8)
_TRANSIENT_PROBS = (0.0, 0.0, 0.01, 0.05)


@dataclass
class TrialResult:
    """What one crash+corruption trial observed."""

    trial: int
    outcome: str  # "clean" | "detected" | "mount-failed" | "unhandled"
    config: FaultConfig
    signals: List[str] = field(default_factory=list)
    detail: str = ""
    faults: Dict[str, int] = field(default_factory=dict)

    @property
    def survived(self) -> bool:
        return self.outcome != "unhandled"


@dataclass
class CampaignReport:
    """Aggregated survival report for a whole campaign."""

    seed: int
    trials: List[TrialResult] = field(default_factory=list)
    torn_writes: int = 0
    bit_flips: int = 0
    bad_sectors_grown: int = 0
    media_errors: int = 0
    transient_errors: int = 0
    remaps: int = 0

    def count(self, outcome: str) -> int:
        return sum(1 for t in self.trials if t.outcome == outcome)

    @property
    def unhandled(self) -> List[TrialResult]:
        return [t for t in self.trials if not t.survived]

    @property
    def survived_all(self) -> bool:
        return not self.unhandled

    def signal_count(self, prefix: str) -> int:
        return sum(
            1
            for t in self.trials
            if any(s.startswith(prefix) for s in t.signals)
        )

    def render(self) -> str:
        lines = [
            f"crashtest: {len(self.trials)} trials, seed {self.seed}",
            f"  clean remounts:       {self.count('clean')}",
            f"  detected & survived:  "
            f"{self.count('detected') + self.count('mount-failed')}",
            f"    checkpoint fallback:  {self.signal_count('checkpoint-fallback')}",
            f"    roll-forward damage:  {self.signal_count('roll-forward')}",
            f"    quarantined segments: {self.signal_count('quarantined')}",
            f"    verify findings:      {self.signal_count('verify-errors')}",
            f"    degraded operation:   {self.signal_count('post-mount')}",
            f"    mount failures:       {self.count('mount-failed')}",
            f"  unhandled exceptions: {len(self.unhandled)}",
        ]
        for t in self.unhandled:
            lines.append(f"    trial {t.trial}: {t.detail}")
        lines += [
            "fault injection totals:",
            f"  torn writes {self.torn_writes}, bit flips {self.bit_flips}, "
            f"bad sectors grown {self.bad_sectors_grown}",
            f"  media errors {self.media_errors}, "
            f"transient errors {self.transient_errors}, "
            f"remaps {self.remaps}",
            "survival: "
            + ("OK" if self.survived_all else "FAILED (unhandled exceptions)"),
        ]
        return "\n".join(lines)


def _trial_config() -> LfsConfig:
    return LfsConfig(
        segment_size=256 * KIB,
        cache_bytes=2 * MIB,
        max_inodes=1024,
    )


def _random_fault_config(rng: random.Random) -> FaultConfig:
    return FaultConfig(
        torn_write_prob=rng.choice(_TORN_PROBS),
        bit_flip_sectors=rng.choice(_BIT_FLIPS),
        grow_bad_sectors=rng.choice(_BAD_SECTORS),
        transient_read_prob=rng.choice(_TRANSIENT_PROBS),
    )


def _run_workload(fs: LogStructuredFS, rng: random.Random) -> None:
    """A small randomized create/overwrite/delete mix, partially synced."""
    paths: List[str] = []
    for i in range(rng.randrange(8, 24)):
        path = f"/f{i}"
        fs.write_file(path, bytes([i & 0xFF]) * rng.randrange(512, 24_000))
        paths.append(path)
        roll = rng.random()
        if roll < 0.15:
            fs.checkpoint()
        elif roll < 0.40:
            fs.sync()
        if paths and rng.random() < 0.25:
            victim = rng.choice(paths)
            if rng.random() < 0.5:
                fs.write_file(
                    victim, bytes([0xAB]) * rng.randrange(512, 12_000)
                )
            elif fs.exists(victim):
                fs.unlink(victim)
                paths.remove(victim)
    # Leave writes *in flight* so the crash has something to tear and
    # roll back: flush pushes them to the device asynchronously, and
    # crashing without draining catches them before their completion
    # times pass.
    for i in range(rng.randrange(1, 5)):
        fs.write_file(f"/tail{i}", b"\xcd" * rng.randrange(512, 8_000))
    fs.flush_log()


def run_trial(
    trial: int,
    seed: int,
    telemetry: Optional[Telemetry] = None,
    device_bytes: int = DEFAULT_DEVICE_BYTES,
) -> TrialResult:
    """One deterministic write → fault → crash → remount → verify cycle."""
    rng = random.Random(f"crashtest-{seed}-{trial}")
    fault_config = _random_fault_config(rng)
    injector = FaultInjector(
        fault_config, seed=rng.getrandbits(32), telemetry=telemetry
    )
    result = TrialResult(trial=trial, outcome="clean", config=fault_config)
    try:
        _execute_trial(result, injector, rng, device_bytes, telemetry)
    except ReproError as exc:
        # A typed failure outside the classified phases still counts as
        # detected, reported degradation — not a crash of the stack.
        result.outcome = "detected"
        result.detail = f"{type(exc).__name__}: {exc}"
        result.signals.append(f"typed-error {type(exc).__name__}")
    except Exception as exc:  # the regression the campaign exists to catch
        result.outcome = "unhandled"
        result.detail = f"{type(exc).__name__}: {exc}"
    result.faults = {
        "torn_writes": injector.torn_writes,
        "bit_flips": injector.bit_flips,
        "bad_sectors_grown": injector.bad_sectors_grown,
        "media_errors": injector.media_errors,
        "transient_errors": injector.transient_errors,
        "remaps": injector.remaps,
    }
    return result


def _execute_trial(
    result: TrialResult,
    injector: FaultInjector,
    rng: random.Random,
    device_bytes: int,
    telemetry: Optional[Telemetry],
) -> None:
    geometry = wren_iv(device_bytes)
    clock = SimClock()
    cpu = CpuModel(clock)
    device = FaultyDevice(
        geometry.num_sectors, geometry.sector_size, injector=injector
    )
    disk = SimDisk(geometry, clock, device=device, telemetry=telemetry)
    fs = LogStructuredFS.mkfs(disk, cpu, _trial_config(), telemetry=telemetry)
    _run_workload(fs, rng)
    fs.crash()
    device.revive()

    try:
        again = LogStructuredFS.mount(
            disk, cpu, _trial_config(), telemetry=telemetry
        )
    except ReproError as exc:
        result.outcome = "mount-failed"
        result.detail = f"{type(exc).__name__}: {exc}"
        result.signals.append("mount-failed")
        return

    if again.checkpoints.last_load_rejects:
        result.signals.append(
            f"checkpoint-fallback={again.checkpoints.last_load_rejects}"
        )
    recovery = again.last_recovery
    if recovery is not None and (
        recovery.degraded or recovery.stop_reason == "media-error"
    ):
        result.signals.append(
            f"roll-forward: stop={recovery.stop_reason} "
            f"media={recovery.media_errors} "
            f"skipped={recovery.corrupt_entries_skipped}"
        )
    # Exercise the post-recovery paths that meet damaged media: the
    # cleaner (quarantine) and an unmount flush (retries, remaps).
    try:
        if injector.bad_sectors:
            # Force a full cleaning pass (target above the current clean
            # count) so relocation has to read every dirty segment and
            # the quarantine path actually runs against the bad sectors.
            usage = again.usage
            again.clean_now(usage.clean_count() + len(usage.dirty_segments()))
        quarantined = len(again.usage.quarantined_segments())
        if quarantined:
            result.signals.append(f"quarantined={quarantined}")
        again.unmount()
    except ReproError as exc:
        result.signals.append(f"post-mount {type(exc).__name__}: {exc}")

    verify = verify_lfs(device)
    if verify.errors:
        result.signals.append(f"verify-errors={len(verify.errors)}")
    result.outcome = "detected" if result.signals else "clean"


def _trial_worker(
    trial: int, seed: int, device_bytes: int, with_telemetry: bool
):
    """Run one trial in a worker process.

    Each worker records into its own fresh :class:`Telemetry` (live
    instrument objects cannot be shared across processes) and ships the
    exported counter samples home for an order-independent merge.
    """
    from repro.harness.parallel import export_telemetry_totals

    telemetry = Telemetry() if with_telemetry else None
    result = run_trial(
        trial, seed, telemetry=telemetry, device_bytes=device_bytes
    )
    samples = (
        export_telemetry_totals(telemetry)
        if telemetry is not None
        else None
    )
    return result, samples


def run_campaign(
    trials: int = 50,
    seed: int = 0,
    telemetry: Optional[Telemetry] = None,
    device_bytes: int = DEFAULT_DEVICE_BYTES,
    log=None,
    jobs: int = 1,
) -> CampaignReport:
    """Run ``trials`` independent seeded trials and aggregate the report.

    ``jobs > 1`` farms the trials across worker processes via
    :func:`repro.harness.parallel.run_tasks`.  Trial *i* of seed *s* is
    deterministic and self-contained, and aggregation (totals, log
    lines, telemetry merge) always happens in trial order, so the
    report — and the rendered output — is byte-identical for any
    ``jobs`` value.
    """
    from repro.harness.parallel import merge_metric_samples, run_tasks
    from repro.service.config import validate_rig

    # Fail fast (with every violation listed) before forking workers:
    # a bad trial configuration would otherwise surface as N identical
    # mid-campaign crashes.
    validate_rig(None, _trial_config(), device_bytes=device_bytes)
    report = CampaignReport(seed=seed)
    if jobs > 1:
        outcomes = run_tasks(
            _trial_worker,
            [
                (trial, seed, device_bytes, telemetry is not None)
                for trial in range(trials)
            ],
            jobs=jobs,
        )
        results = []
        for result, samples in outcomes:
            results.append(result)
            if telemetry is not None and samples is not None:
                merge_metric_samples(telemetry, samples)
    else:
        results = [
            run_trial(
                trial, seed, telemetry=telemetry, device_bytes=device_bytes
            )
            for trial in range(trials)
        ]
    for trial, result in enumerate(results):
        report.trials.append(result)
        report.torn_writes += result.faults.get("torn_writes", 0)
        report.bit_flips += result.faults.get("bit_flips", 0)
        report.bad_sectors_grown += result.faults.get("bad_sectors_grown", 0)
        report.media_errors += result.faults.get("media_errors", 0)
        report.transient_errors += result.faults.get("transient_errors", 0)
        report.remaps += result.faults.get("remaps", 0)
        if log is not None:
            log(
                f"trial {trial:3d}: {result.outcome:12s} "
                + ("; ".join(result.signals) or "-")
            )
    return report
