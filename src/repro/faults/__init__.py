"""Deterministic storage fault injection (torn writes, bit rot, bad
sectors, transient I/O errors) and the crash+corruption campaign behind
``repro crashtest``.

Everything here is policy layered *around* the stack under test:
:class:`FaultInjector` decides what breaks, :class:`FaultyDevice` breaks
it at the :class:`~repro.disk.device.SectorDevice` boundary, and the
campaign in :mod:`repro.faults.campaign` checks that the LFS above
detects, contains, or recovers from the damage with typed errors only.
"""

from repro.faults.campaign import (
    CampaignReport,
    TrialResult,
    run_campaign,
    run_trial,
)
from repro.faults.chaos import (
    ChaosReport,
    ChaosTrialResult,
    DurabilityLedger,
    run_chaos_campaign,
    run_chaos_trial,
)
from repro.faults.device import FaultyDevice
from repro.faults.injector import FaultConfig, FaultInjector

__all__ = [
    "CampaignReport",
    "ChaosReport",
    "ChaosTrialResult",
    "DurabilityLedger",
    "FaultConfig",
    "FaultInjector",
    "FaultyDevice",
    "TrialResult",
    "run_campaign",
    "run_chaos_campaign",
    "run_chaos_trial",
    "run_trial",
]
