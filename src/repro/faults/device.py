"""A :class:`SectorDevice` that injects faults from a policy object.

``FaultyDevice`` is a drop-in replacement anywhere a ``SectorDevice``
goes (the timing layer, the verifier, the CLI): same constructor shape,
same crash semantics.  Every read first asks the injector whether it
fails (transient error, grown bad sector); every crash composes the
torn-write hook of :meth:`SectorDevice.crash` with crash-coincident
damage (bit flips, newly grown bad sectors).

The device also tracks which sectors have ever been written so the
injector aims corruption at data that matters — flipping bits in
never-written space would exercise nothing.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.disk.device import SectorDevice
from repro.faults.injector import FaultInjector
from repro.units import SECTOR_SIZE


class FaultyDevice(SectorDevice):
    """Crash-aware sector array with injected media faults."""

    def __init__(
        self,
        num_sectors: int,
        sector_size: int = SECTOR_SIZE,
        *,
        injector: Optional[FaultInjector] = None,
        initial_data: Optional[bytearray] = None,
    ) -> None:
        super().__init__(num_sectors, sector_size, initial_data=initial_data)
        self.injector = injector or FaultInjector()
        self.written_sectors: Set[int] = set()

    def read(
        self, sector: int, count: int, *, copy: bool = False
    ) -> "bytes | memoryview":
        # Range- and crash-check first so faults only fire on requests
        # that would otherwise succeed.
        self._check_range(sector, count)
        self.injector.before_read(sector, count)
        return super().read(sector, count, copy=copy)

    def write(
        self,
        sector: int,
        data: bytes,
        completion_time: float = 0.0,
        durable: bool = False,
    ) -> None:
        super().write(
            sector, data, completion_time=completion_time, durable=durable
        )
        count = len(data) // self.sector_size
        self.written_sectors.update(range(sector, sector + count))
        self.injector.note_write(sector, count)

    def crash(self, now: float, **kwargs) -> None:
        injector = self.injector
        kwargs.setdefault("rng", injector.rng)
        kwargs.setdefault(
            "tear_probability", injector.config.torn_write_prob
        )
        super().crash(now, **kwargs)
        injector.after_crash(self)

    def flip_bit(self, sector: int, bit: int) -> None:
        """Silently flip one bit of ``sector`` (no error on later reads)."""
        index = sector * self.sector_size + bit // 8
        self._data[index] ^= 1 << (bit % 8)

    def __repr__(self) -> str:
        return (
            f"FaultyDevice({self.num_sectors} x {self.sector_size}B, "
            f"pending={self.pending_writes()}, crashed={self.crashed}, "
            f"bad={len(self.injector.bad_sectors)})"
        )
