"""Cylinder-group allocation (McKusick-style placement policy).

* New directories spread across cylinder groups (the group with the
  most free inodes), so unrelated directories land far apart — this is
  why the paper's Figure 1 shows the two creates seeking between groups.
* A file's inode goes in its parent directory's group.
* Data blocks go in the file's group, scanning forward from the
  previous block for sequential layout; every ``maxbpg`` logical blocks
  a large file is forced into the next group, FFS's policy to stop one
  file from filling a group.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.common.serialization import Packer, Unpacker, checksum
from repro.errors import CorruptionError, NoInodesError, NoSpaceError
from repro.ffs.bitmaps import Bitmap
from repro.ffs.config import FfsConfig, FfsLayout

CG_MAGIC = 0x46_46_4347  # "FFCG"


class CylinderGroup:
    """In-memory state of one cylinder group's bitmaps."""

    def __init__(self, config: FfsConfig, index: int) -> None:
        self.config = config
        self.index = index
        self.inodes = Bitmap(config.inodes_per_cg)
        self.blocks = Bitmap(config.data_blocks_per_cg)

    def pack(self) -> bytes:
        body = (
            Packer()
            .u32(self.index)
            .u32(self.inodes.nbits)
            .u32(self.blocks.nbits)
            .raw(self.inodes.to_bytes())
            .raw(self.blocks.to_bytes())
            .bytes()
        )
        header = Packer().u32(CG_MAGIC).u32(checksum(body))
        data = header.bytes() + body
        return data + b"\x00" * (self.config.block_size - len(data))

    @classmethod
    def unpack(cls, config: FfsConfig, data: bytes) -> "CylinderGroup":
        unpacker = Unpacker(data)
        magic = unpacker.u32()
        if magic != CG_MAGIC:
            raise CorruptionError(f"bad cylinder group magic 0x{magic:08x}")
        crc = unpacker.u32()
        start = unpacker.offset
        index = unpacker.u32()
        n_inodes = unpacker.u32()
        n_blocks = unpacker.u32()
        inode_bytes = unpacker.raw((n_inodes + 7) // 8)
        block_bytes = unpacker.raw((n_blocks + 7) // 8)
        if checksum(data[start : unpacker.offset]) != crc:
            raise CorruptionError(f"cylinder group {index} checksum mismatch")
        group = cls(config, index)
        if n_inodes != group.inodes.nbits or n_blocks != group.blocks.nbits:
            raise CorruptionError(
                f"cylinder group {index} bitmap sizes do not match config"
            )
        group.inodes = Bitmap.from_bytes(inode_bytes, n_inodes)
        group.blocks = Bitmap.from_bytes(block_bytes, n_blocks)
        return group


class Allocator:
    """Inode and data-block allocation over all cylinder groups."""

    def __init__(self, config: FfsConfig, layout: FfsLayout) -> None:
        self.config = config
        self.layout = layout
        self.groups: List[CylinderGroup] = [
            CylinderGroup(config, cg) for cg in range(layout.num_groups)
        ]
        self.dirty_groups: Set[int] = set()
        # Inode number 0 is reserved (never a valid directory entry).
        self.groups[0].inodes.set(0)
        self.dirty_groups.add(0)

    # ------------------------------------------------------------------
    # Inodes
    # ------------------------------------------------------------------

    def alloc_inode(self, is_dir: bool, parent_cg: int) -> int:
        if is_dir:
            order = sorted(
                range(len(self.groups)),
                key=lambda cg: (-self.groups[cg].inodes.free_count, cg),
            )
        else:
            order = [
                (parent_cg + i) % len(self.groups)
                for i in range(len(self.groups))
            ]
        for cg in order:
            group = self.groups[cg]
            if group.inodes.free_count == 0:
                continue
            idx = group.inodes.alloc_near(0)
            assert idx is not None
            self.dirty_groups.add(cg)
            return cg * self.config.inodes_per_cg + idx
        raise NoInodesError("no free inodes in any cylinder group")

    def free_inode(self, inum: int) -> None:
        cg = self.layout.cg_of_inum(inum)
        self.groups[cg].inodes.clear(inum % self.config.inodes_per_cg)
        self.dirty_groups.add(cg)

    def inode_is_allocated(self, inum: int) -> bool:
        cg = self.layout.cg_of_inum(inum)
        return self.groups[cg].inodes.is_set(inum % self.config.inodes_per_cg)

    # ------------------------------------------------------------------
    # Data blocks
    # ------------------------------------------------------------------

    def alloc_data_block(
        self, preferred_cg: int, hint_addr: Optional[int]
    ) -> int:
        """Allocate a data block, preferring to continue after the hint."""
        start_cg = preferred_cg % len(self.groups)
        hint_index = 0
        if hint_addr is not None:
            try:
                hint_cg, hint_within = self.layout.data_index(hint_addr)
            except Exception:
                hint_cg, hint_within = start_cg, -1
            # Continue after the previous block only while it lies in
            # the preferred group; once maxbpg moves the preference on,
            # the sequential hint must not drag the file back.
            if (
                hint_cg == start_cg
                and self.groups[hint_cg].blocks.free_count
            ):
                hint_index = hint_within + 1
        for step in range(len(self.groups)):
            cg = (start_cg + step) % len(self.groups)
            group = self.groups[cg]
            if group.blocks.free_count == 0:
                continue
            index = group.blocks.alloc_near(hint_index if step == 0 else 0)
            assert index is not None
            self.dirty_groups.add(cg)
            return self.layout.data_start(cg) + index
        raise NoSpaceError("no free data blocks in any cylinder group")

    def preferred_cg_for(self, inode_cg: int, lbn: int) -> int:
        """Large files change groups every ``maxbpg`` blocks."""
        return (inode_cg + lbn // self.config.maxbpg) % len(self.groups)

    def free_data_block(self, addr: int) -> None:
        cg, index = self.layout.data_index(addr)
        self.groups[cg].blocks.clear(index)
        self.dirty_groups.add(cg)

    def block_is_allocated(self, addr: int) -> bool:
        cg, index = self.layout.data_index(addr)
        return self.groups[cg].blocks.is_set(index)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def free_blocks(self) -> int:
        return sum(group.blocks.free_count for group in self.groups)

    def free_inodes(self) -> int:
        return sum(group.inodes.free_count for group in self.groups)

    def take_dirty_groups(self) -> List[int]:
        dirty = sorted(self.dirty_groups)
        self.dirty_groups.clear()
        return dirty
