"""The FFS storage manager (the paper's SunOS baseline).

Behavioural contrast with LFS, straight from §3.1:

* ``create``/``unlink`` **synchronously** write the inode-table block
  and the directory data block (two small random writes that stall the
  caller at disk speed);
* file data is delayed-written, one block-sized request at a time, to
  update-in-place addresses chosen by the cylinder-group allocator;
* after a crash, the bitmaps are untrustworthy and
  :func:`repro.ffs.fsck.fsck` must scan the whole disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.writeback import WritebackReason
from repro.common.directory import DirectoryBlock
from repro.common.inode import (
    BlockKey,
    BlockKind,
    FileType,
    Inode,
    INODE_SIZE,
    NIL,
)
from repro.common.serialization import Packer, Unpacker, checksum
from repro.disk.sim_disk import SimDisk
from repro.errors import CorruptionError
from repro.ffs.allocator import Allocator, CylinderGroup
from repro.ffs.config import FFS_MAGIC, FfsConfig, FfsLayout
from repro.sim.cpu import CpuModel
from repro.vfs.base import BaseFileSystem, ROOT_INUM


@dataclass(frozen=True)
class FfsSuperBlock:
    """Static file system parameters at block 0."""

    block_size: int
    cg_bytes: int
    inodes_per_cg: int
    maxbpg: int
    total_blocks: int

    def pack(self) -> bytes:
        body = (
            Packer()
            .u32(self.block_size)
            .u32(self.cg_bytes)
            .u32(self.inodes_per_cg)
            .u32(self.maxbpg)
            .u64(self.total_blocks)
            .bytes()
        )
        header = Packer().u32(FFS_MAGIC).u32(checksum(body))
        data = header.bytes() + body
        return data + b"\x00" * (self.block_size - len(data))

    @classmethod
    def unpack(cls, data: bytes) -> "FfsSuperBlock":
        unpacker = Unpacker(data)
        magic = unpacker.u32()
        if magic != FFS_MAGIC:
            raise CorruptionError(f"not an FFS superblock (magic 0x{magic:08x})")
        crc = unpacker.u32()
        block_size = unpacker.u32()
        cg_bytes = unpacker.u32()
        inodes_per_cg = unpacker.u32()
        maxbpg = unpacker.u32()
        total_blocks = unpacker.u64()
        body = (
            Packer()
            .u32(block_size)
            .u32(cg_bytes)
            .u32(inodes_per_cg)
            .u32(maxbpg)
            .u64(total_blocks)
            .bytes()
        )
        if checksum(body) != crc:
            raise CorruptionError("FFS superblock checksum mismatch")
        return cls(
            block_size=block_size,
            cg_bytes=cg_bytes,
            inodes_per_cg=inodes_per_cg,
            maxbpg=maxbpg,
            total_blocks=total_blocks,
        )


class FastFileSystem(BaseFileSystem):
    """BSD fast file system, SunOS 4.0.3 edition."""

    def __init__(self, disk: SimDisk, cpu: CpuModel, config: FfsConfig) -> None:
        self._config = config
        self.layout = FfsLayout.for_device(config, disk.device.total_bytes)
        super().__init__(
            disk,
            cpu,
            config.cache_bytes,
            config.writeback,
            readahead_blocks=config.readahead_blocks,
        )
        self.allocator = Allocator(config, self.layout)
        self.sync_metadata_writes = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def mkfs(
        cls, disk: SimDisk, cpu: CpuModel, config: Optional[FfsConfig] = None
    ) -> "FastFileSystem":
        """Format the device and return a mounted, empty file system."""
        config = config or FfsConfig()
        fs = cls(disk, cpu, config)
        superblock = FfsSuperBlock(
            block_size=config.block_size,
            cg_bytes=config.cg_bytes,
            inodes_per_cg=config.inodes_per_cg,
            maxbpg=config.maxbpg,
            total_blocks=fs.layout.total_blocks,
        )
        disk.write(0, superblock.pack(), sync=True, label="superblock")
        # Reserve the root inode number in cylinder group 0, and force
        # every cg header onto the disk so the image is mountable.
        fs.allocator.groups[0].inodes.set(ROOT_INUM)
        fs.allocator.dirty_groups.update(range(fs.layout.num_groups))
        root = Inode(
            inum=ROOT_INUM,
            ftype=FileType.DIRECTORY,
            nlink=2,
            mtime=fs.clock.now(),
            ctime=fs.clock.now(),
        )
        fs._install_inode(root)
        fs._write_dir_block(root, 0, DirectoryBlock(config.block_size, []))
        fs._writeback(WritebackReason.SYNC)
        fs.disk.drain()
        return fs

    @classmethod
    def mount(
        cls,
        disk: SimDisk,
        cpu: CpuModel,
        config: Optional[FfsConfig] = None,
    ) -> "FastFileSystem":
        """Attach an existing FFS (bitmaps read from the cg headers).

        After a crash the bitmaps may be stale; run
        :func:`repro.ffs.fsck.fsck` first to repair the image.
        """
        raw = disk.read(0, 16, label="superblock")
        superblock = FfsSuperBlock.unpack(raw)
        base = config or FfsConfig()
        merged = FfsConfig(
            block_size=superblock.block_size,
            cg_bytes=superblock.cg_bytes,
            inodes_per_cg=superblock.inodes_per_cg,
            maxbpg=superblock.maxbpg,
            cache_bytes=base.cache_bytes,
            synchronous_metadata=base.synchronous_metadata,
            writeback=base.writeback,
            readahead_blocks=base.readahead_blocks,
        )
        fs = cls(disk, cpu, merged)
        for cg in range(fs.layout.num_groups):
            raw = fs._read_block_from_disk(
                fs.layout.cg_header_addr(cg), label=f"cg header {cg}"
            )
            fs.allocator.groups[cg] = CylinderGroup.unpack(merged, raw)
        fs.allocator.dirty_groups.clear()
        return fs

    # ------------------------------------------------------------------
    # Required placement hooks
    # ------------------------------------------------------------------

    @property
    def config(self) -> FfsConfig:
        return self._config

    @property
    def block_size(self) -> int:
        return self._config.block_size

    @property
    def sectors_per_block(self) -> int:
        return self._config.sectors_per_block

    def _table_block(self, table_index: int):
        key = BlockKey(0, BlockKind.INODE, table_index)
        block = self.cache.get(key)
        if block is None:
            raw = self._read_block_from_disk(
                self.layout.inode_table_block_addr(table_index),
                label=f"inode table block {table_index}",
            )
            block = self.cache.insert(
                key, bytearray(raw), dirty=False, now=self.clock.now()
            )
        return block

    def _load_inode_from_disk(self, inum: int) -> Inode:
        table_index = self.layout.inode_table_block_index(inum)
        block = self._table_block(table_index)
        _addr, slot = self.layout.inode_location(inum)
        raw = bytes(block.payload[slot * INODE_SIZE : (slot + 1) * INODE_SIZE])
        if raw.strip(b"\x00") == b"":
            # Never-written slot (can only be observed after a crash).
            return Inode(inum=inum, ftype=FileType.FREE)
        inode = Inode.unpack(raw)
        if inode.inum != inum:
            raise CorruptionError(
                f"inode table slot for {inum} holds inode {inode.inum}"
            )
        return inode

    def _store_inode_to_table(self, inode: Inode) -> int:
        """Serialize an inode into its cached table block; returns the
        table block's global index."""
        table_index = self.layout.inode_table_block_index(inode.inum)
        block = self._table_block(table_index)
        _addr, slot = self.layout.inode_location(inode.inum)
        assert isinstance(block.payload, bytearray)
        block.payload[slot * INODE_SIZE : (slot + 1) * INODE_SIZE] = inode.pack()
        self.cache.mark_dirty(block.key, self.clock.now())
        return table_index

    def _alloc_inum(self, ftype: FileType, parent_inum: int) -> int:
        return self.allocator.alloc_inode(
            is_dir=(ftype is FileType.DIRECTORY),
            parent_cg=self.layout.cg_of_inum(parent_inum),
        )

    def _on_inode_freed(self, inode: Inode) -> None:
        self.allocator.free_inode(inode.inum)
        self._store_inode_to_table(inode)  # persist the FREE marker

    def _release_block_addr(self, addr: int) -> None:
        self.allocator.free_data_block(addr)

    def _note_data_block_dirtied(self, inode: Inode, lbn: int) -> None:
        """BSD allocates the disk address when the block is written."""
        if self.block_map.get(inode, lbn) != NIL:
            return  # update in place
        hint = self.block_map.get(inode, lbn - 1) if lbn > 0 else None
        if hint == NIL:
            hint = None
        preferred = self.allocator.preferred_cg_for(
            self.layout.cg_of_inum(inode.inum), lbn
        )
        addr = self.allocator.alloc_data_block(preferred, hint)
        self.block_map.set(inode, lbn, addr)
        self._mark_inode_dirty(inode)

    # ------------------------------------------------------------------
    # Synchronous metadata writes (§3.1 / Figure 1)
    # ------------------------------------------------------------------

    def _sync_write_inode(self, inode: Inode, label: str) -> None:
        table_index = self._store_inode_to_table(inode)
        key = BlockKey(0, BlockKind.INODE, table_index)
        block = self.cache.peek(key)
        assert block is not None
        self.disk.write(
            self.layout.inode_table_block_addr(table_index)
            * self.sectors_per_block,
            block.as_bytes(self.block_size),
            sync=True,
            label=label,
        )
        self.cache.mark_clean(key)
        self._dirty_inodes.discard(inode.inum)
        self.sync_metadata_writes += 1

    def _sync_write_data_block(self, inode: Inode, lbn: int, label: str) -> None:
        key = BlockKey(inode.inum, BlockKind.DATA, lbn)
        block = self.cache.peek(key)
        if block is None:
            return  # nothing cached (dir block already flushed)
        addr = self.block_map.get(inode, lbn)
        if addr == NIL:
            raise CorruptionError(
                f"dir data block {lbn} of inode {inode.inum} has no address"
            )
        self.disk.write(
            addr * self.sectors_per_block,
            block.as_bytes(self.block_size),
            sync=True,
            label=label,
        )
        self.cache.mark_clean(key)
        self.sync_metadata_writes += 1

    def _after_create(self, parent: Inode, inode: Inode, dir_block_index: int) -> None:
        if not self._config.synchronous_metadata:
            return  # ablation mode: metadata rides the delayed write-back
        if inode.is_dir:
            # mkdir also forces the new directory's first block (the
            # classic "." / ".." block) to disk.
            self._sync_write_data_block(
                inode, 0, label=f"new directory {inode.inum} data"
            )
        self._sync_write_inode(inode, label=f"new inode {inode.inum}")
        self._sync_write_data_block(
            parent, dir_block_index, label=f"directory {parent.inum} data"
        )

    def _after_remove(self, parent: Inode, inode: Inode, dir_block_index: int) -> None:
        if not self._config.synchronous_metadata:
            return
        self._sync_write_inode(inode, label=f"freed inode {inode.inum}")
        self._sync_write_data_block(
            parent, dir_block_index, label=f"directory {parent.inum} data"
        )

    def _update_atime(self, inode: Inode) -> None:
        inode.atime = self.clock.now()
        self._mark_inode_dirty(inode)

    def _get_atime(self, inode: Inode) -> float:
        return inode.atime

    # ------------------------------------------------------------------
    # Delayed write-back
    # ------------------------------------------------------------------

    def _ensure_pointer_block_addr(self, inode: Inode, key: BlockKey) -> int:
        addr = self._pointer_block_addr(inode, key)
        if addr != NIL:
            return addr
        preferred = self.allocator.preferred_cg_for(
            self.layout.cg_of_inum(inode.inum), 0
        )
        addr = self.allocator.alloc_data_block(preferred, None)
        if key.kind is BlockKind.DINDIRECT:
            inode.dindirect = addr
        elif key.index == 0:
            inode.indirect = addr
        else:
            root_key = BlockKey(inode.inum, BlockKind.DINDIRECT, 0)
            root = self._load_pointers(root_key, inode.dindirect)
            root[key.index - 1] = addr
            self.cache.mark_dirty(root_key, self.clock.now())
        self._mark_inode_dirty(inode)
        return addr

    def _writeback(self, reason: WritebackReason) -> None:
        # 1. Give every dirty pointer block a home (may dirty inodes).
        pointer_keys = [
            block.key
            for block in self.cache.dirty_blocks()
            if block.key.kind in (BlockKind.DINDIRECT, BlockKind.INDIRECT)
        ]
        pointer_keys.sort(key=lambda k: (k.inum, k.kind != BlockKind.DINDIRECT, k.index))
        for key in pointer_keys:
            self._ensure_pointer_block_addr(self._get_inode(key.inum), key)
        # 2. Fold dirty inodes into their table blocks.
        for inum in self.dirty_inode_numbers():
            self._store_inode_to_table(self._inodes[inum])
        self._dirty_inodes.clear()
        # 3. Gather every dirty block with its fixed disk address.
        writes: List[Tuple[int, BlockKey, bytes]] = []
        for block in list(self.cache.dirty_blocks()):
            key = block.key
            if key.kind is BlockKind.DATA:
                inode = self._get_inode(key.inum)
                addr = self.block_map.get(inode, key.index)
            elif key.kind in (BlockKind.INDIRECT, BlockKind.DINDIRECT):
                inode = self._get_inode(key.inum)
                addr = self._pointer_block_addr(inode, key)
            elif key.kind is BlockKind.INODE:
                addr = self.layout.inode_table_block_addr(key.index)
            else:
                raise CorruptionError(f"unexpected dirty block kind: {key}")
            if addr == NIL:
                raise CorruptionError(f"dirty block {key} has no disk address")
            writes.append((addr, key, block.as_bytes(self.block_size)))
        # 4. One request per block, in the order the blocks were dirtied:
        #    the SunOS-era update daemon pushed delayed writes without a
        #    global elevator, so a randomly written file is flushed in
        #    random disk order (the §5.2 random-write penalty) while a
        #    sequentially written one happens to flush sequentially.
        for addr, key, payload in writes:
            self.disk.write(
                addr * self.sectors_per_block,
                payload,
                sync=False,
                label=f"writeback {key.kind.name.lower()} {key.inum}",
            )
            self.cache.mark_clean(key)
        # 5. Cylinder-group headers.
        for cg in self.allocator.take_dirty_groups():
            self.disk.write(
                self.layout.cg_header_addr(cg) * self.sectors_per_block,
                self.allocator.groups[cg].pack(),
                sync=False,
                label=f"cg header {cg}",
            )

    def fsync(self, handle) -> None:
        """Write this file's dirty data blocks and its inode, blocking."""
        inode = self._handle_inode(handle)
        self.cpu.syscall()
        for block in list(self.cache.dirty_blocks()):
            key = block.key
            if key.inum != inode.inum:
                continue
            if key.kind in (BlockKind.INDIRECT, BlockKind.DINDIRECT):
                addr = self._ensure_pointer_block_addr(inode, key)
            else:
                addr = self.block_map.get(inode, key.index)
            self.disk.write(
                addr * self.sectors_per_block,
                block.as_bytes(self.block_size),
                sync=True,
                label=f"fsync {key.kind.name.lower()} {inode.inum}",
            )
            self.cache.mark_clean(key)
        self._sync_write_inode(inode, label=f"fsync inode {inode.inum}")

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate an OS crash: in-flight disk writes are lost."""
        self.disk.crash()
        self._unmounted = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def free_space_bytes(self) -> int:
        return self.allocator.free_blocks() * self.block_size

    def statvfs(self):
        """Capacity report from the cylinder-group bitmaps."""
        from repro.vfs.interface import VfsInfo

        total = (
            self.layout.num_groups
            * self.config.data_blocks_per_cg
            * self.block_size
        )
        free = self.free_space_bytes()
        return VfsInfo(
            total_bytes=total,
            used_bytes=total - free,
            free_bytes=free,
            total_files=self.layout.max_inodes - 1,
            used_files=self.layout.max_inodes
            - self.allocator.free_inodes()
            - 1,  # inode 0 is reserved, not "used"
        )


def make_ffs(
    total_bytes: Optional[int] = None,
    config: Optional[FfsConfig] = None,
    speed_factor: float = 1.0,
    geometry=None,
    trace=None,
) -> FastFileSystem:
    """Convenience constructor: simulated WREN IV disk + fresh FFS."""
    from repro.disk.geometry import wren_iv
    from repro.sim.clock import SimClock

    if geometry is None:
        geometry = wren_iv(total_bytes) if total_bytes else wren_iv()
    clock = SimClock()
    cpu = CpuModel(clock, speed_factor=speed_factor)
    disk = SimDisk(geometry, clock, trace=trace)
    return FastFileSystem.mkfs(disk, cpu, config)
