"""The BSD fast file system baseline (SunOS 4.0.3's file system).

This is the comparison target of the paper's evaluation (§5): an
update-in-place file system with cylinder groups, fixed inode tables,
*synchronous* inode and directory writes on create/delete (§3.1,
Figure 1), delayed write-back of file data, and a whole-disk fsck scan
after a crash.
"""

from repro.ffs.config import FfsConfig, FfsLayout
from repro.ffs.filesystem import FastFileSystem, make_ffs
from repro.ffs.fsck import FsckReport, fsck

__all__ = [
    "FfsConfig",
    "FfsLayout",
    "FastFileSystem",
    "make_ffs",
    "fsck",
    "FsckReport",
]
