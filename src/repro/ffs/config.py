"""FFS configuration and cylinder-group layout arithmetic.

The defaults follow the paper's SunOS setup: an eight-kilobyte block
size on a ~300 MB file system.  The disk is divided into cylinder
groups; each group holds its own header (with inode and data-block
bitmaps), a fixed inode table, and data blocks::

    block 0                    superblock
    group c (c = 0..ncg-1):
        base  = 1 + c * cg_blocks
        base + 0                    cg header (bitmaps)
        base + 1 .. 1+itb           inode table
        base + 1+itb .. cg_blocks   data blocks
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.cache.writeback import WritebackConfig
from repro.common.inode import INODE_SIZE
from repro.errors import InvalidArgumentError
from repro.units import KIB, MIB, SECTOR_SIZE

FFS_MAGIC = 0x46_46_53_31  # "FFS1"


@dataclass(frozen=True)
class FfsConfig:
    """Tunable parameters of an FFS instance."""

    block_size: int = 8 * KIB
    cg_bytes: int = 16 * MIB
    """Cylinder-group size."""

    inodes_per_cg: int = 1024

    maxbpg: int = 512
    """Max data blocks one file may allocate in a group before being
    forced to the next group (FFS's large-file spreading policy)."""

    cache_bytes: int = 15 * MIB

    synchronous_metadata: bool = True
    """§3.1's behaviour: create/delete force the inode and directory
    blocks to disk before returning.  Setting this False is an ablation
    (not a real SunOS mode): metadata joins the delayed write-back,
    isolating how much of LFS's small-file win is mere asynchrony and
    how much is the log's sequential layout.  The price is FFS's crash
    guarantee — fsck may find far more damage."""

    writeback: WritebackConfig = field(default_factory=WritebackConfig)

    readahead_blocks: int = 0
    """Sequential-readahead window in blocks (0 disables readahead).

    Same caveat as :attr:`repro.lfs.config.LfsConfig.readahead_blocks`:
    prefetch reads advance the simulated clock, so image-pinning
    experiments keep this at 0.
    """

    def __post_init__(self) -> None:
        if self.readahead_blocks < 0:
            raise InvalidArgumentError(
                f"readahead_blocks must be >= 0: {self.readahead_blocks}"
            )
        if self.block_size % SECTOR_SIZE:
            raise InvalidArgumentError(
                f"block size {self.block_size} not a multiple of "
                f"{SECTOR_SIZE}-byte sectors"
            )
        if self.cg_bytes % self.block_size:
            raise InvalidArgumentError(
                "cylinder group size must be a multiple of the block size"
            )
        if self.inodes_per_cg < 8:
            raise InvalidArgumentError("too few inodes per cylinder group")
        if self.maxbpg < 1:
            raise InvalidArgumentError("maxbpg must be at least 1")
        # The cg header must be able to hold both bitmaps.
        bitmap_bytes = (self.inodes_per_cg + 7) // 8 + (
            self.cg_blocks + 7
        ) // 8
        if bitmap_bytes + 64 > self.block_size:
            raise InvalidArgumentError(
                "cylinder group too large for single-block header bitmaps"
            )

    @property
    def cg_blocks(self) -> int:
        return self.cg_bytes // self.block_size

    @property
    def inodes_per_block(self) -> int:
        return self.block_size // INODE_SIZE

    @property
    def inode_table_blocks(self) -> int:
        return (
            self.inodes_per_cg + self.inodes_per_block - 1
        ) // self.inodes_per_block

    @property
    def data_blocks_per_cg(self) -> int:
        return self.cg_blocks - 1 - self.inode_table_blocks

    @property
    def sectors_per_block(self) -> int:
        return self.block_size // SECTOR_SIZE


@dataclass(frozen=True)
class FfsLayout:
    """Block-address arithmetic for the cylinder-group layout."""

    config: FfsConfig
    total_blocks: int

    def __post_init__(self) -> None:
        if self.num_groups < 1:
            raise InvalidArgumentError("device too small for one cylinder group")

    @classmethod
    def for_device(cls, config: FfsConfig, device_bytes: int) -> "FfsLayout":
        return cls(config=config, total_blocks=device_bytes // config.block_size)

    @property
    def num_groups(self) -> int:
        return (self.total_blocks - 1) // self.config.cg_blocks

    @property
    def max_inodes(self) -> int:
        return self.num_groups * self.config.inodes_per_cg

    def cg_base(self, cg: int) -> int:
        self._check_cg(cg)
        return 1 + cg * self.config.cg_blocks

    def cg_header_addr(self, cg: int) -> int:
        return self.cg_base(cg)

    def _check_cg(self, cg: int) -> None:
        if not 0 <= cg < self.num_groups:
            raise InvalidArgumentError(
                f"cylinder group {cg} out of range [0, {self.num_groups})"
            )

    # -- inodes ---------------------------------------------------------

    def cg_of_inum(self, inum: int) -> int:
        if not 0 <= inum < self.max_inodes:
            raise InvalidArgumentError(f"inode number {inum} out of range")
        return inum // self.config.inodes_per_cg

    def inode_location(self, inum: int) -> Tuple[int, int]:
        """(disk block address, slot within the block) of an inode."""
        cg = self.cg_of_inum(inum)
        idx = inum % self.config.inodes_per_cg
        block = self.cg_base(cg) + 1 + idx // self.config.inodes_per_block
        slot = idx % self.config.inodes_per_block
        return block, slot

    def inode_table_block_index(self, inum: int) -> int:
        """Global ordinal of the inode-table block holding ``inum``
        (cache key index for BlockKind.INODE blocks)."""
        cg = self.cg_of_inum(inum)
        idx = inum % self.config.inodes_per_cg
        return (
            cg * self.config.inode_table_blocks
            + idx // self.config.inodes_per_block
        )

    def inode_table_block_addr(self, table_index: int) -> int:
        cg = table_index // self.config.inode_table_blocks
        within = table_index % self.config.inode_table_blocks
        return self.cg_base(cg) + 1 + within

    def inums_of_table_block(self, table_index: int) -> range:
        cg = table_index // self.config.inode_table_blocks
        within = table_index % self.config.inode_table_blocks
        first = (
            cg * self.config.inodes_per_cg
            + within * self.config.inodes_per_block
        )
        last = min(
            first + self.config.inodes_per_block,
            (cg + 1) * self.config.inodes_per_cg,
        )
        return range(first, last)

    # -- data blocks ------------------------------------------------------

    def data_start(self, cg: int) -> int:
        return self.cg_base(cg) + 1 + self.config.inode_table_blocks

    def data_end(self, cg: int) -> int:
        return self.cg_base(cg) + self.config.cg_blocks

    def cg_of_block(self, addr: int) -> int:
        if addr < 1:
            raise InvalidArgumentError(f"block {addr} outside cylinder groups")
        cg = (addr - 1) // self.config.cg_blocks
        self._check_cg(cg)
        return cg

    def is_data_block(self, addr: int) -> bool:
        cg = self.cg_of_block(addr)
        return self.data_start(cg) <= addr < self.data_end(cg)

    def data_index(self, addr: int) -> Tuple[int, int]:
        """(cg, index within the cg's data-block bitmap) for ``addr``."""
        cg = self.cg_of_block(addr)
        if not self.is_data_block(addr):
            raise InvalidArgumentError(f"block {addr} is not a data block")
        return cg, addr - self.data_start(cg)
