"""Allocation bitmaps for cylinder groups."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CorruptionError, InvalidArgumentError


class Bitmap:
    """A fixed-size bitmap with nearest-fit allocation."""

    def __init__(self, nbits: int) -> None:
        if nbits <= 0:
            raise InvalidArgumentError(f"bitmap needs at least one bit: {nbits}")
        self.nbits = nbits
        self._bits = bytearray((nbits + 7) // 8)
        self._free = nbits

    @property
    def free_count(self) -> int:
        return self._free

    @property
    def used_count(self) -> int:
        return self.nbits - self._free

    def _check(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise InvalidArgumentError(
                f"bit {index} out of range [0, {self.nbits})"
            )

    def is_set(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits[index // 8] & (1 << (index % 8)))

    def set(self, index: int) -> None:
        self._check(index)
        if self.is_set(index):
            raise CorruptionError(f"double allocation of bit {index}")
        self._bits[index // 8] |= 1 << (index % 8)
        self._free -= 1

    def clear(self, index: int) -> None:
        self._check(index)
        if not self.is_set(index):
            raise CorruptionError(f"double free of bit {index}")
        self._bits[index // 8] &= ~(1 << (index % 8))
        self._free += 1

    def alloc_near(self, hint: int) -> Optional[int]:
        """Allocate the free bit at-or-after ``hint`` (wrapping), if any.

        Scanning forward from the hint is what gives FFS its sequential
        data-block layout for files written in order.
        """
        if self._free == 0:
            return None
        hint = max(0, min(hint, self.nbits - 1))
        for index in self._scan_from(hint):
            if not self.is_set(index):
                self.set(index)
                return index
        raise AssertionError("free count positive but no free bit found")

    def _scan_from(self, start: int) -> Iterator[int]:
        yield from range(start, self.nbits)
        yield from range(0, start)

    def iter_set(self) -> Iterator[int]:
        for index in range(self.nbits):
            if self.is_set(index):
                yield index

    def to_bytes(self) -> bytes:
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int) -> "Bitmap":
        bitmap = cls(nbits)
        expected = (nbits + 7) // 8
        if len(data) < expected:
            raise CorruptionError(
                f"bitmap needs {expected} bytes, got {len(data)}"
            )
        bitmap._bits = bytearray(data[:expected])
        # Mask padding bits beyond nbits so the free count is exact.
        extra = expected * 8 - nbits
        if extra:
            bitmap._bits[-1] &= (1 << (8 - extra)) - 1
        bitmap._free = nbits - sum(bin(byte).count("1") for byte in bitmap._bits)
        return bitmap

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.nbits == other.nbits and self._bits == other._bits

    def __repr__(self) -> str:
        return f"Bitmap({self.used_count}/{self.nbits} used)"
