"""File system check for the FFS baseline.

This is the recovery path the paper holds against LFS (§4.4): "the UNIX
file system ... must scan the entire disk after a crash to repair
damage".  The scan reads every inode-table block and every indirect
block of every file, rebuilds both bitmaps, walks the directory tree,
removes directory entries that point at unallocated inodes, reattaches
orphaned inodes under ``/lost+found``, fixes link counts, and writes the
repaired metadata back.  Its running time therefore grows with the file
system size — the property the recovery benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.directory import DirectoryBlock
from repro.common.inode import (
    FileType,
    Inode,
    INODE_SIZE,
    N_DIRECT,
    NIL,
    pointers_per_block,
)
from repro.common.serialization import iter_u64, pack_u64_array
from repro.disk.sim_disk import SimDisk
from repro.errors import CorruptionError, FsckError
from repro.ffs.allocator import CylinderGroup
from repro.ffs.bitmaps import Bitmap
from repro.ffs.config import FfsConfig, FfsLayout
from repro.ffs.filesystem import FfsSuperBlock
from repro.vfs.base import ROOT_INUM


@dataclass
class FsckReport:
    """What the scan examined and repaired."""

    duration_seconds: float = 0.0
    bytes_read: int = 0
    inodes_scanned: int = 0
    allocated_inodes: int = 0
    blocks_referenced: int = 0
    dangling_entries_removed: int = 0
    orphans_reattached: int = 0
    orphans_cleared: int = 0
    duplicate_blocks_cleared: int = 0
    nlink_repairs: int = 0
    bitmap_repairs: int = 0
    clean: bool = True

    def repairs(self) -> int:
        return (
            self.dangling_entries_removed
            + self.orphans_reattached
            + self.orphans_cleared
            + self.duplicate_blocks_cleared
            + self.nlink_repairs
            + self.bitmap_repairs
        )


class _Fsck:
    """One fsck run over a raw device image."""

    def __init__(self, disk: SimDisk, config: Optional[FfsConfig]) -> None:
        self.disk = disk
        raw = disk.read(0, 16, label="fsck superblock")
        superblock = FfsSuperBlock.unpack(raw)
        base = config or FfsConfig()
        self.config = FfsConfig(
            block_size=superblock.block_size,
            cg_bytes=superblock.cg_bytes,
            inodes_per_cg=superblock.inodes_per_cg,
            maxbpg=superblock.maxbpg,
            cache_bytes=base.cache_bytes,
            writeback=base.writeback,
        )
        self.layout = FfsLayout.for_device(
            self.config, disk.device.total_bytes
        )
        self.report = FsckReport()
        self.inodes: Dict[int, Inode] = {}
        self.block_owner: Dict[int, int] = {}
        self.inode_bitmap = Bitmap(self.layout.max_inodes)
        self.block_bitmaps: List[Bitmap] = [
            Bitmap(self.config.data_blocks_per_cg)
            for _ in range(self.layout.num_groups)
        ]
        self._dirty_inodes: Set[int] = set()

    # -- raw block I/O --------------------------------------------------

    def _read_block(self, addr: int, label: str) -> bytes:
        spb = self.config.sectors_per_block
        data = self.disk.read(addr * spb, spb, label=label)
        self.report.bytes_read += len(data)
        return data

    def _write_block(self, addr: int, data: bytes, label: str) -> None:
        spb = self.config.sectors_per_block
        if len(data) < self.config.block_size:
            data = b"".join(
                (data, bytes(self.config.block_size - len(data)))
            )
        self.disk.write(addr * spb, data, sync=True, label=label)

    # -- phase 1: scan every inode ----------------------------------------

    def scan_inodes(self) -> None:
        for cg in range(self.layout.num_groups):
            for within in range(self.config.inode_table_blocks):
                table_index = cg * self.config.inode_table_blocks + within
                addr = self.layout.inode_table_block_addr(table_index)
                raw = self._read_block(addr, f"fsck inode table {table_index}")
                for inum in self.layout.inums_of_table_block(table_index):
                    self.report.inodes_scanned += 1
                    _addr, slot = self.layout.inode_location(inum)
                    chunk = raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE]
                    if not any(chunk):  # all-zero slot; works on memoryviews
                        continue
                    try:
                        inode = Inode.unpack(chunk)
                    except CorruptionError:
                        continue
                    if inode.inum != inum or not inode.is_allocated:
                        continue
                    self.inodes[inum] = inode
                    self.report.allocated_inodes += 1

    # -- phase 2: claim every referenced block ------------------------------

    def _claim(self, addr: int, inum: int) -> bool:
        """Record that ``inum`` uses ``addr``; False on double allocation."""
        if addr in self.block_owner:
            self.report.duplicate_blocks_cleared += 1
            return False
        try:
            cg, index = self.layout.data_index(addr)
        except Exception:
            self.report.duplicate_blocks_cleared += 1
            return False
        self.block_owner[addr] = inum
        self.block_bitmaps[cg].set(index)
        self.report.blocks_referenced += 1
        return True

    def check_blocks(self) -> None:
        for inum, inode in sorted(self.inodes.items()):
            self.inode_bitmap.set(inum)
            for slot in range(N_DIRECT):
                if inode.direct[slot] != NIL and not self._claim(
                    inode.direct[slot], inum
                ):
                    inode.direct[slot] = NIL
                    self._dirty_inodes.add(inum)
            if inode.indirect != NIL:
                self._check_indirect(inode, "indirect")
            if inode.dindirect != NIL:
                self._check_dindirect(inode)

    def _read_pointers(self, addr: int) -> List[int]:
        raw = self._read_block(addr, "fsck indirect block")
        return list(iter_u64(raw))

    def _check_indirect(self, inode: Inode, which: str) -> None:
        addr = inode.indirect
        if not self._claim(addr, inode.inum):
            inode.indirect = NIL
            self._dirty_inodes.add(inode.inum)
            return
        pointers = self._read_pointers(addr)
        changed = False
        for i, ptr in enumerate(pointers):
            if ptr != NIL and not self._claim(ptr, inode.inum):
                pointers[i] = NIL
                changed = True
        if changed:
            self._write_block(
                addr, pack_u64_array(pointers), "fsck repaired indirect"
            )

    def _check_dindirect(self, inode: Inode) -> None:
        addr = inode.dindirect
        if not self._claim(addr, inode.inum):
            inode.dindirect = NIL
            self._dirty_inodes.add(inode.inum)
            return
        roots = self._read_pointers(addr)
        root_changed = False
        for i, leaf_addr in enumerate(roots):
            if leaf_addr == NIL:
                continue
            if not self._claim(leaf_addr, inode.inum):
                roots[i] = NIL
                root_changed = True
                continue
            leaves = self._read_pointers(leaf_addr)
            changed = False
            for j, ptr in enumerate(leaves):
                if ptr != NIL and not self._claim(ptr, inode.inum):
                    leaves[j] = NIL
                    changed = True
            if changed:
                self._write_block(
                    leaf_addr, pack_u64_array(leaves), "fsck repaired indirect"
                )
        if root_changed:
            self._write_block(
                addr, pack_u64_array(roots), "fsck repaired dindirect"
            )

    # -- phase 3: directory walk ------------------------------------------

    def _read_dir_entries(
        self, inode: Inode
    ) -> List[Tuple[int, DirectoryBlock]]:
        """(lbn, decoded block) for each directory data block."""
        bs = self.config.block_size
        result = []
        for lbn in range(inode.nblocks(bs)):
            addr = self._block_of(inode, lbn)
            if addr == NIL:
                continue
            raw = self._read_block(addr, f"fsck dir {inode.inum} block {lbn}")
            try:
                result.append((lbn, DirectoryBlock.decode(raw, bs)))
            except CorruptionError:
                self.report.clean = False
        return result

    def _block_of(self, inode: Inode, lbn: int) -> int:
        """Pointer lookup against the (already repaired) inode."""
        ppb = pointers_per_block(self.config.block_size)
        if lbn < N_DIRECT:
            return inode.direct[lbn]
        lbn -= N_DIRECT
        if lbn < ppb:
            if inode.indirect == NIL:
                return NIL
            return self._read_pointers(inode.indirect)[lbn]
        lbn -= ppb
        if inode.dindirect == NIL:
            return NIL
        roots = self._read_pointers(inode.dindirect)
        leaf_addr = roots[lbn // ppb]
        if leaf_addr == NIL:
            return NIL
        return self._read_pointers(leaf_addr)[lbn % ppb]

    def walk_tree(self) -> Tuple[Set[int], Dict[int, int]]:
        """Breadth-first walk from the root; repairs dangling entries.

        Returns (reachable inums, observed link counts).
        """
        if ROOT_INUM not in self.inodes:
            raise FsckError("root inode missing: file system unrecoverable")
        reachable: Set[int] = {ROOT_INUM}
        links: Dict[int, int] = {ROOT_INUM: 2}
        queue = [ROOT_INUM]
        while queue:
            dir_inum = queue.pop(0)
            dir_inode = self.inodes[dir_inum]
            for lbn, block in self._read_dir_entries(dir_inode):
                changed = False
                for name, child in list(block.entries):
                    child_inode = self.inodes.get(child)
                    if child_inode is None:
                        block.entries.remove((name, child))
                        self.report.dangling_entries_removed += 1
                        changed = True
                        continue
                    links[child] = links.get(child, 0) + 1
                    if child not in reachable:
                        reachable.add(child)
                        if child_inode.is_dir:
                            links[child] = links.get(child, 0) + 1
                            links[dir_inum] = links.get(dir_inum, 0) + 1
                            queue.append(child)
                if changed:
                    addr = self._block_of(dir_inode, lbn)
                    self._write_block(
                        addr, block.encode(), f"fsck repaired dir {dir_inum}"
                    )
        return reachable, links

    # -- phase 4: orphans ----------------------------------------------

    def handle_orphans(self, reachable: Set[int], links: Dict[int, int]) -> None:
        orphans = sorted(set(self.inodes) - reachable)
        if not orphans:
            return
        lost_found = self._ensure_lost_found(links)
        if lost_found is None:
            for inum in orphans:
                self.inodes.pop(inum)
                self.inode_bitmap.clear(inum)
                self.report.orphans_cleared += 1
            return
        dir_inode = self.inodes[lost_found]
        entries = [(f"#{inum}", inum) for inum in orphans]
        self._append_dir_entries(dir_inode, entries, links)
        for inum in orphans:
            links[inum] = links.get(inum, 0) + 1
            if self.inodes[inum].is_dir:
                links[inum] += 1  # its implicit ".."
                links[lost_found] = links.get(lost_found, 0) + 1
            self.report.orphans_reattached += 1

    def _ensure_lost_found(self, links: Dict[int, int]) -> Optional[int]:
        root = self.inodes[ROOT_INUM]
        for _lbn, block in self._read_dir_entries(root):
            child = block.lookup("lost+found")
            if child is not None and child in self.inodes:
                return child
        # Create it: a fresh inode plus a root directory entry.
        free = next(
            (
                inum
                for inum in range(ROOT_INUM + 1, self.layout.max_inodes)
                if not self.inode_bitmap.is_set(inum)
            ),
            None,
        )
        if free is None:
            return None
        inode = Inode(inum=free, ftype=FileType.DIRECTORY, nlink=2)
        self.inodes[free] = inode
        self.inode_bitmap.set(free)
        self._dirty_inodes.add(free)
        links[free] = 2
        if not self._append_dir_entries(root, [("lost+found", free)], links):
            self.inodes.pop(free)
            self.inode_bitmap.clear(free)
            self._dirty_inodes.discard(free)
            return None
        links[ROOT_INUM] = links.get(ROOT_INUM, 0) + 1
        return free

    def _append_dir_entries(
        self,
        dir_inode: Inode,
        entries: List[Tuple[str, int]],
        links: Dict[int, int],
    ) -> bool:
        """Append entries to a directory, growing it if needed."""
        bs = self.config.block_size
        pending = list(entries)
        for lbn, block in self._read_dir_entries(dir_inode):
            changed = False
            while pending and block.has_room_for(pending[0][0]):
                name, inum = pending.pop(0)
                block.add(name, inum)
                changed = True
            if changed:
                self._write_block(
                    self._block_of(dir_inode, lbn),
                    block.encode(),
                    f"fsck extended dir {dir_inode.inum}",
                )
            if not pending:
                return True
        while pending:
            # Grow the directory by one block.
            lbn = dir_inode.nblocks(bs)
            if lbn >= N_DIRECT:
                return False  # keep fsck's repair surface simple
            addr = self._alloc_block(dir_inode.inum)
            if addr is None:
                return False
            block = DirectoryBlock(bs, [])
            while pending and block.has_room_for(pending[0][0]):
                name, inum = pending.pop(0)
                block.add(name, inum)
            dir_inode.direct[lbn] = addr
            dir_inode.size = (lbn + 1) * bs
            self._dirty_inodes.add(dir_inode.inum)
            self._write_block(
                addr, block.encode(), f"fsck grew dir {dir_inode.inum}"
            )
        return True

    def _alloc_block(self, inum: int) -> Optional[int]:
        for cg, bitmap in enumerate(self.block_bitmaps):
            if bitmap.free_count:
                index = bitmap.alloc_near(0)
                assert index is not None
                addr = self.layout.data_start(cg) + index
                self.block_owner[addr] = inum
                return addr
        return None

    # -- phase 5: link counts and write-back ------------------------------

    def fix_links(self, links: Dict[int, int]) -> None:
        for inum, inode in self.inodes.items():
            expected = links.get(inum, 0)
            if inode.nlink != expected:
                inode.nlink = expected
                self._dirty_inodes.add(inum)
                self.report.nlink_repairs += 1

    def write_back(self) -> None:
        # Repaired inodes, grouped per table block.
        by_table: Dict[int, List[int]] = {}
        for inum in self._dirty_inodes:
            by_table.setdefault(
                self.layout.inode_table_block_index(inum), []
            ).append(inum)
        for table_index, inums in sorted(by_table.items()):
            addr = self.layout.inode_table_block_addr(table_index)
            raw = bytearray(self._read_block(addr, "fsck inode writeback"))
            for inum in inums:
                _addr, slot = self.layout.inode_location(inum)
                inode = self.inodes.get(inum)
                packed = (
                    inode.pack()
                    if inode is not None
                    else Inode(inum=inum, ftype=FileType.FREE).pack()
                )
                raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE] = packed
            self._write_block(addr, bytes(raw), "fsck inode writeback")
        # Rebuilt cylinder-group bitmaps.
        for cg in range(self.layout.num_groups):
            group = CylinderGroup(self.config, cg)
            first = cg * self.config.inodes_per_cg
            for within in range(self.config.inodes_per_cg):
                if self.inode_bitmap.is_set(first + within):
                    group.inodes.set(within)
            if cg == 0 and not group.inodes.is_set(0):
                group.inodes.set(0)  # reserved inode 0
            group.blocks = self.block_bitmaps[cg]
            on_disk = self._read_block(
                self.layout.cg_header_addr(cg), f"fsck cg header {cg}"
            )
            try:
                existing = CylinderGroup.unpack(self.config, on_disk)
                matches = (
                    existing.inodes == group.inodes
                    and existing.blocks == group.blocks
                )
            except CorruptionError:
                matches = False
            if not matches:
                self.report.bitmap_repairs += 1
                self._write_block(
                    self.layout.cg_header_addr(cg),
                    group.pack(),
                    f"fsck cg header {cg}",
                )

    def run(self) -> FsckReport:
        start = self.disk.clock.now()
        self.scan_inodes()
        self.check_blocks()
        reachable, links = self.walk_tree()
        self.handle_orphans(reachable, links)
        self.fix_links(links)
        self.write_back()
        self.disk.drain()
        self.report.duration_seconds = self.disk.clock.now() - start
        self.report.clean = self.report.clean and self.report.repairs() == 0
        return self.report


def fsck(disk: SimDisk, config: Optional[FfsConfig] = None) -> FsckReport:
    """Check and repair an FFS image in place; returns a report.

    The device must be revived (readable) but unmounted.
    """
    return _Fsck(disk, config).run()
