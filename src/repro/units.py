"""Size and time unit helpers.

All sizes in the library are plain integers counted in bytes and all
simulated times are floats counted in seconds.  These constants keep the
call sites readable (``4 * KIB`` instead of ``4096``).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MILLISECOND = 1e-3
MICROSECOND = 1e-6

SECTOR_SIZE = 512
"""Sector size of every simulated device, in bytes (matches classic SCSI)."""


def sectors_for(nbytes: int, sector_size: int = SECTOR_SIZE) -> int:
    """Number of sectors needed to hold ``nbytes`` (rounded up)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + sector_size - 1) // sector_size


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(1536) == '1.5 KB'``."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_rate(bytes_per_second: float) -> str:
    """Human-readable transfer rate, e.g. ``'1.2 MB/s'``."""
    return f"{fmt_bytes(bytes_per_second)}/s"


def fmt_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``'12.3 ms'`` or ``'4.56 s'``."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
