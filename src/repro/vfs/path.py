"""Path string handling.

All paths are absolute, ``/``-separated, and resolved against the file
system root; ``.`` and ``..`` components are normalized away lexically
(there are no symlinks in this reproduction, so lexical resolution is
exact).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InvalidArgumentError


def split_path(path: str) -> List[str]:
    """Split an absolute path into normalized components.

    >>> split_path("/a/b/../c//d/.")
    ['a', 'c', 'd']
    >>> split_path("/")
    []
    """
    if not path or not path.startswith("/"):
        raise InvalidArgumentError(f"path must be absolute: {path!r}")
    components: List[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if components:
                components.pop()
            continue
        components.append(part)
    return components


def normalize(path: str) -> str:
    """Canonical form of an absolute path."""
    return "/" + "/".join(split_path(path))


def join(base: str, *parts: str) -> str:
    """Join path fragments onto an absolute base and normalize."""
    pieces = [base.rstrip("/")]
    for part in parts:
        pieces.append(part.strip("/"))
    return normalize("/".join(pieces) or "/")


def dirname_basename(path: str) -> Tuple[str, str]:
    """Split into (parent directory path, final component).

    >>> dirname_basename("/a/b/c")
    ('/a/b', 'c')
    """
    components = split_path(path)
    if not components:
        raise InvalidArgumentError("the root directory has no parent")
    return "/" + "/".join(components[:-1]), components[-1]
