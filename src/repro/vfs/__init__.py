"""Namespace layer shared by LFS and the FFS baseline.

The paper keeps UNIX file system *semantics* identical between the two
systems (§4.2); this package holds the semantics — path resolution,
directories, file handles, read/write/truncate — so the two storage
managers differ only in block placement, write timing and recovery.
"""

from repro.vfs.interface import FileHandle, FsStats, StatResult, StorageManager
from repro.vfs.path import dirname_basename, join, normalize, split_path

__all__ = [
    "FileHandle",
    "FsStats",
    "StatResult",
    "StorageManager",
    "split_path",
    "normalize",
    "join",
    "dirname_basename",
]
