"""Public storage-manager interface.

:class:`StorageManager` is the API the paper's benchmarks exercise; both
:class:`repro.lfs.LogStructuredFS` and :class:`repro.ffs.FastFileSystem`
implement it, so every workload in :mod:`repro.workloads` runs unchanged
against either system.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.inode import FileType
from repro.errors import InvalidArgumentError, StaleHandleError


@dataclass(frozen=True)
class StatResult:
    """Subset of ``struct stat`` the benchmarks and tests need."""

    inum: int
    ftype: FileType
    size: int
    nlink: int
    mtime: float
    atime: float

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY


@dataclass(frozen=True)
class VfsInfo:
    """``statvfs``-style capacity report."""

    total_bytes: int
    used_bytes: int
    free_bytes: int
    total_files: int
    used_files: int

    @property
    def used_fraction(self) -> float:
        return self.used_bytes / self.total_bytes if self.total_bytes else 0.0


@dataclass
class FsStats:
    """Operation counters kept by every storage manager."""

    creates: int = 0
    removes: int = 0
    mkdirs: int = 0
    opens: int = 0
    read_calls: int = 0
    write_calls: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    syncs: int = 0
    writebacks: Dict[str, int] = field(default_factory=dict)

    def note_writeback(self, reason: str) -> None:
        self.writebacks[reason] = self.writebacks.get(reason, 0) + 1


class FileHandle:
    """An open file: a position plus read/write calls against the FS."""

    def __init__(self, fs: "StorageManager", inum: int, path: str) -> None:
        self._fs = fs
        self.inum = inum
        self.path = path
        self.pos = 0
        self.closed = False

    def _check(self) -> None:
        if self.closed:
            raise StaleHandleError(f"handle for {self.path} is closed")

    def read(self, length: Optional[int] = None) -> bytes:
        """Read ``length`` bytes from the current position (rest if None)."""
        self._check()
        data = self._fs.pread(self, self.pos, length)
        self.pos += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write ``data`` at the current position."""
        self._check()
        written = self._fs.pwrite(self, self.pos, data)
        self.pos += written
        return written

    def pread(self, offset: int, length: Optional[int] = None) -> bytes:
        self._check()
        return self._fs.pread(self, offset, length)

    def pwrite(self, offset: int, data: bytes) -> int:
        self._check()
        return self._fs.pwrite(self, offset, data)

    def fsync(self) -> None:
        """Block until this file's data and metadata are durable."""
        self._check()
        self._fs.fsync(self)

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise InvalidArgumentError(f"negative seek offset: {offset}")
        self._check()
        self.pos = offset

    def truncate(self, size: int = 0) -> None:
        self._check()
        self._fs.ftruncate(self, size)
        self.pos = min(self.pos, size)

    @property
    def size(self) -> int:
        self._check()
        return self._fs.handle_size(self)

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"pos={self.pos}"
        return f"FileHandle({self.path!r}, inum={self.inum}, {state})"


class StorageManager(abc.ABC):
    """Abstract UNIX-like storage manager (the paper's term for the FS)."""

    # -- namespace ------------------------------------------------------

    @abc.abstractmethod
    def create(self, path: str) -> FileHandle:
        """Create a regular file; error if it exists.  Returns a handle."""

    @abc.abstractmethod
    def open(self, path: str) -> FileHandle:
        """Open an existing regular file."""

    @abc.abstractmethod
    def unlink(self, path: str) -> None:
        """Remove a regular file."""

    @abc.abstractmethod
    def mkdir(self, path: str) -> None:
        """Create a directory; parent must exist."""

    @abc.abstractmethod
    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""

    @abc.abstractmethod
    def rename(self, old_path: str, new_path: str) -> None:
        """Move/rename; an existing regular file target is replaced."""

    @abc.abstractmethod
    def listdir(self, path: str) -> List[str]:
        """Sorted names in a directory."""

    @abc.abstractmethod
    def stat(self, path: str) -> StatResult:
        """Attributes of a path."""

    def exists(self, path: str) -> bool:
        """Whether a path resolves."""
        try:
            self.stat(path)
            return True
        except Exception:
            return False

    # -- file I/O ---------------------------------------------------

    @abc.abstractmethod
    def pread(
        self, handle: FileHandle, offset: int, length: Optional[int]
    ) -> bytes:
        """Read from an open file at an absolute offset."""

    @abc.abstractmethod
    def pwrite(self, handle: FileHandle, offset: int, data: bytes) -> int:
        """Write to an open file at an absolute offset."""

    @abc.abstractmethod
    def ftruncate(self, handle: FileHandle, size: int) -> None:
        """Change an open file's size."""

    @abc.abstractmethod
    def handle_size(self, handle: FileHandle) -> int:
        """Current size of an open file."""

    # -- convenience wrappers -------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create-or-replace a file with ``data``."""
        if self.exists(path):
            with self.open(path) as handle:
                handle.truncate(0)
                handle.write(data)
        else:
            with self.create(path) as handle:
                handle.write(data)

    def read_file(self, path: str) -> bytes:
        """Whole contents of a file."""
        with self.open(path) as handle:
            return handle.read()

    @abc.abstractmethod
    def statvfs(self) -> VfsInfo:
        """Capacity and inode usage (``df``)."""

    # -- durability -------------------------------------------------

    @abc.abstractmethod
    def sync(self) -> None:
        """Push every dirty block to disk and wait for completion."""

    @abc.abstractmethod
    def fsync(self, handle: FileHandle) -> None:
        """Make one file durable (§4.3.5's "sync request" trigger).

        LFS has no cheaper unit than the pending partial segment, so
        this flushes the log; FFS pushes just the file's blocks and its
        inode.
        """

    @abc.abstractmethod
    def flush_caches(self) -> None:
        """Drop clean cached state so future reads hit the disk.

        This is the benchmarks' "the file cache was flushed" step; dirty
        data is synced first so nothing is lost.
        """

    @abc.abstractmethod
    def unmount(self) -> None:
        """Cleanly shut down (sync; LFS also writes a checkpoint)."""

    # -- introspection ----------------------------------------------

    @property
    @abc.abstractmethod
    def stats(self) -> FsStats:
        """Operation counters."""

    @property
    @abc.abstractmethod
    def block_size(self) -> int:
        """File system block size in bytes."""
