"""Shared file system machinery.

:class:`BaseFileSystem` implements everything the paper says is *common*
between LFS and the UNIX file system — inode-based files with direct and
indirect blocks, directories as ordinary file data, path resolution, a
write-back file cache — leaving placement, write timing, free-space
management and recovery to hooks the concrete systems override:

* LFS (:mod:`repro.lfs.filesystem`): blocks get disk addresses only when
  a segment is written; create/delete touch no disk; freed addresses
  feed the segment usage array.
* FFS (:mod:`repro.ffs.filesystem`): blocks get addresses at write time
  from cylinder-group bitmaps; create/delete synchronously write the
  inode and directory blocks (the behaviour of the paper's Figure 1).
"""

from __future__ import annotations

import abc
import struct
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cache.block_cache import BlockCache, CacheBlock
from repro.cache.readahead import ReadaheadPolicy
from repro.cache.writeback import WritebackConfig, WritebackMonitor, WritebackReason
from repro.common.directory import DirectoryBlock, entry_size, validate_name
from repro.common.inode import (
    BlockKey,
    BlockKind,
    BlockMap,
    FileType,
    Inode,
    NIL,
    pointers_per_block,
)
from repro.disk.sim_disk import SimDisk
from repro.errors import (
    CorruptionError,
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    InvalidArgumentError,
    IsADirectoryError_,
    NotADirectoryError_,
    StaleHandleError,
)
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim.cpu import CpuModel
from repro.units import KIB
from repro.vfs.interface import FileHandle, FsStats, StatResult, StorageManager
from repro.vfs.path import dirname_basename, split_path

ROOT_INUM = 1
"""Inode number of the root directory in both file systems."""

MAX_READ_CLUSTER = 64 * KIB
"""Largest single disk read issued when filling the cache."""


class BaseFileSystem(StorageManager):
    """UNIX file semantics over abstract block placement."""

    def __init__(
        self,
        disk: SimDisk,
        cpu: CpuModel,
        cache_bytes: int,
        writeback_config: Optional[WritebackConfig] = None,
        telemetry: Optional[Telemetry] = None,
        readahead_blocks: int = 0,
    ) -> None:
        self.disk = disk
        self.clock = cpu.clock
        self.cpu = cpu
        # Adopt the disk's telemetry when none is given so one object
        # covers the whole simulated machine by default.
        self.telemetry = (
            telemetry
            or getattr(disk, "telemetry", None)
            or NULL_TELEMETRY
        )
        self.telemetry.bind_clock(self.clock)
        self._obs_enabled = self.telemetry.enabled
        self._m_fs_bytes_written = self.telemetry.counter("fs.bytes_written")
        self._m_fs_bytes_read = self.telemetry.counter("fs.bytes_read")
        # The write-amplification ledger's numerator lives in the
        # segment writer (wamp.log_bytes); this is its denominator.
        self._m_wamp_user = self.telemetry.counter("wamp.user_bytes")
        self.cache = BlockCache(
            cache_bytes, self.block_size, telemetry=self.telemetry
        )
        self.readahead = ReadaheadPolicy(
            readahead_blocks, telemetry=self.telemetry
        )
        self.monitor = WritebackMonitor(
            self.cache,
            self.clock,
            writeback_config or WritebackConfig(),
            telemetry=self.telemetry,
        )
        self._stats = FsStats()
        self._inodes: Dict[int, Inode] = {}
        self._dirty_inodes: Set[int] = set()
        # Directory caches: name -> (child inum, block index holding the
        # entry), per-directory free bytes per block, and decoded
        # directory blocks (kept coherent by the _dir_* methods, which
        # are the only writers of directory data).
        self._dcache: Dict[int, Dict[str, Tuple[int, int]]] = {}
        self._dir_space: Dict[int, List[int]] = {}
        self._dir_blocks: Dict[Tuple[int, int], DirectoryBlock] = {}
        self._unmounted = False
        self._in_writeback = False
        self.block_map = BlockMap(
            self.block_size, self._load_pointers, self._dirty_pointer_block
        )
        self.block_map.set_cache_probe(self.cache.contains)

    # ------------------------------------------------------------------
    # Abstract placement / policy hooks
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def block_size(self) -> int:
        """File system block size (must be usable before __init__ runs)."""

    @property
    @abc.abstractmethod
    def sectors_per_block(self) -> int:
        """Device sectors per file system block."""

    @abc.abstractmethod
    def _load_inode_from_disk(self, inum: int) -> Inode:
        """Fetch an inode not present in the inode cache."""

    @abc.abstractmethod
    def _alloc_inum(self, ftype: FileType, parent_inum: int) -> int:
        """Pick a free inode number (placement-policy specific)."""

    @abc.abstractmethod
    def _on_inode_freed(self, inode: Inode) -> None:
        """Record that an inode is free (imap / bitmap bookkeeping)."""

    @abc.abstractmethod
    def _release_block_addr(self, addr: int) -> None:
        """A block address is no longer referenced by any file."""

    @abc.abstractmethod
    def _note_data_block_dirtied(self, inode: Inode, lbn: int) -> None:
        """A data block was modified in cache (FFS allocates here)."""

    @abc.abstractmethod
    def _writeback(self, reason: WritebackReason) -> None:
        """Push dirty cache blocks and dirty inodes toward the disk."""

    @abc.abstractmethod
    def _after_create(
        self, parent: Inode, inode: Inode, dir_block_index: int
    ) -> None:
        """Create committed in memory (FFS forces metadata to disk here)."""

    @abc.abstractmethod
    def _after_remove(
        self, parent: Inode, inode: Inode, dir_block_index: int
    ) -> None:
        """Remove committed in memory (FFS forces metadata to disk here)."""

    @abc.abstractmethod
    def _update_atime(self, inode: Inode) -> None:
        """Record a read access (LFS: inode map; FFS: inode itself)."""

    @abc.abstractmethod
    def _get_atime(self, inode: Inode) -> float:
        """Current access time for ``stat``."""

    def _on_truncate_to_zero(self, inode: Inode) -> None:
        """Hook: LFS bumps the file's inode-map version here (§4.2.1)."""

    # ------------------------------------------------------------------
    # Inode cache
    # ------------------------------------------------------------------

    def _get_inode(self, inum: int) -> Inode:
        inode = self._inodes.get(inum)
        if inode is None:
            inode = self._load_inode_from_disk(inum)
            if inode.inum != inum:
                raise CorruptionError(
                    f"inode {inum} loaded from disk claims to be "
                    f"{inode.inum}"
                )
            self._inodes[inum] = inode
        return inode

    def _install_inode(self, inode: Inode, dirty: bool = True) -> None:
        self._inodes[inode.inum] = inode
        if dirty:
            self._mark_inode_dirty(inode)

    def _mark_inode_dirty(self, inode: Inode) -> None:
        self._dirty_inodes.add(inode.inum)

    def _drop_inode(self, inum: int) -> None:
        self._inodes.pop(inum, None)
        self._dirty_inodes.discard(inum)

    def dirty_inode_numbers(self) -> List[int]:
        """Dirty inodes in ascending order (stable flush order)."""
        return sorted(self._dirty_inodes)

    # ------------------------------------------------------------------
    # Pointer-block access (BlockMap callbacks)
    # ------------------------------------------------------------------

    def _load_pointers(self, key: BlockKey, addr: int) -> List[int]:
        block = self.cache.get(key)
        if block is None:
            if addr == NIL:
                payload: List[int] = [NIL] * pointers_per_block(self.block_size)
            else:
                raw = self._read_block_from_disk(addr, label=f"ptr:{key.inum}")
                payload = list(
                    struct.unpack(f"<{pointers_per_block(self.block_size)}Q", raw)
                )
            block = self.cache.insert(key, payload, dirty=False, now=self.clock.now())
        if not isinstance(block.payload, list):
            raise CorruptionError(f"cached block {key} is not a pointer block")
        return block.payload

    def _dirty_pointer_block(self, key: BlockKey) -> None:
        self.cache.mark_dirty(key, self.clock.now())

    # ------------------------------------------------------------------
    # Raw block I/O
    # ------------------------------------------------------------------

    def _read_block_from_disk(self, addr: int, label: str = "") -> bytes:
        if addr == NIL:
            raise CorruptionError("attempt to read the NIL block address")
        return self.disk.read(
            addr * self.sectors_per_block, self.sectors_per_block, label=label
        )

    # ------------------------------------------------------------------
    # File data I/O
    # ------------------------------------------------------------------

    def _data_key(self, inum: int, lbn: int) -> BlockKey:
        return BlockKey(inum, BlockKind.DATA, lbn)

    def _fetch_data_blocks(
        self,
        inode: Inode,
        first: int,
        last: int,
        prefetch_after: Optional[int] = None,
    ) -> None:
        """Ensure data blocks [first, last] are cached (clustered reads).

        Blocks past ``prefetch_after`` are being read ahead of a
        sequential stream rather than on demand: they are reported to
        the readahead policy (so its hit accounting works) and their
        disk-contiguous runs may grow to the full readahead window
        rather than the ordinary demand-read cluster limit.
        """
        missing: List[Tuple[int, int]] = []
        for lbn in range(first, last + 1):
            if not self.cache.contains(self._data_key(inode.inum, lbn)):
                addr = self.block_map.get(inode, lbn)
                if addr != NIL:
                    missing.append((lbn, addr))
        # Coalesce disk-contiguous runs into single requests, as the real
        # systems' read clustering does; this is why LFS's 4 KB blocks do
        # not halve its sequential read bandwidth relative to FFS's 8 KB.
        max_blocks = max(1, MAX_READ_CLUSTER // self.block_size)
        if prefetch_after is not None:
            max_blocks = max(max_blocks, self.readahead.window_blocks)
        index = 0
        while index < len(missing):
            run = [missing[index]]
            while (
                index + len(run) < len(missing)
                and len(run) < max_blocks
                and missing[index + len(run)][1] == run[-1][1] + 1
                and missing[index + len(run)][0] == run[0][0] + len(run)
            ):
                run.append(missing[index + len(run)])
            start_addr = run[0][1]
            raw = self.disk.read(
                start_addr * self.sectors_per_block,
                self.sectors_per_block * len(run),
                label=f"data:{inode.inum}",
                vectored=len(run) > 1,
            )
            for position, (lbn, _addr) in enumerate(run):
                chunk = raw[
                    position * self.block_size : (position + 1) * self.block_size
                ]
                self.cache.insert(
                    self._data_key(inode.inum, lbn),
                    bytearray(chunk),
                    dirty=False,
                    now=self.clock.now(),
                )
                if prefetch_after is not None and lbn > prefetch_after:
                    self.readahead.note_prefetched(inode.inum, lbn)
            index += len(run)

    def _read_range(self, inode: Inode, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise InvalidArgumentError(
                f"bad read range: offset={offset}, length={length}"
            )
        end = min(offset + length, inode.size)
        if offset >= end:
            return b""
        bs = self.block_size
        first, last = offset // bs, (end - 1) // bs
        window = self.readahead.advise(inode.inum, first, last)
        if window:
            fetch_last = min(last + window, (inode.size - 1) // bs)
            self._fetch_data_blocks(
                inode, first, fetch_last, prefetch_after=last
            )
        else:
            self._fetch_data_blocks(inode, first, last)
        parts: List[bytes] = []
        for lbn in range(first, last + 1):
            block = self.cache.get(self._data_key(inode.inum, lbn))
            if block is None:
                addr = self.block_map.get(inode, lbn)
                if addr == NIL:
                    chunk = b"\x00" * bs  # hole
                else:
                    # The clustered fetch skipped this block because it
                    # was cached, but inserting its fetched neighbours
                    # evicted it before assembly (cache smaller than
                    # the read window).  Evicted means clean, so the
                    # on-disk copy is current: read it directly rather
                    # than re-inserting a block the cache just dropped.
                    chunk = self._read_block_from_disk(
                        addr, label=f"data:{inode.inum}"
                    )
            else:
                chunk = block.as_bytes(bs)
            lo = offset - lbn * bs if lbn == first else 0
            hi = end - lbn * bs if lbn == last else bs
            parts.append(chunk[max(0, lo) : hi])
        return b"".join(parts)

    def _write_range(self, inode: Inode, offset: int, data: bytes) -> int:
        if offset < 0:
            raise InvalidArgumentError(f"negative write offset: {offset}")
        if not data:
            return 0
        bs = self.block_size
        end = offset + len(data)
        first, last = offset // bs, (end - 1) // bs
        src = 0
        for lbn in range(first, last + 1):
            lo = offset - lbn * bs if lbn == first else 0
            hi = end - lbn * bs if lbn == last else bs
            lo = max(0, lo)
            key = self._data_key(inode.inum, lbn)
            block = self.cache.get(key)
            if block is None:
                if hi - lo == bs:
                    payload = bytearray(bs)
                else:
                    # Partial update of an uncached block: bring in the
                    # old contents if the block exists on disk.
                    addr = (
                        self.block_map.get(inode, lbn)
                        if lbn * bs < inode.size
                        else NIL
                    )
                    if addr != NIL:
                        payload = bytearray(
                            self._read_block_from_disk(
                                addr, label=f"rmw:{inode.inum}"
                            )
                        )
                    else:
                        payload = bytearray(bs)
                block = self.cache.insert(
                    key, payload, dirty=True, now=self.clock.now()
                )
            else:
                if not isinstance(block.payload, bytearray):
                    raise CorruptionError(f"data block {key} has wrong payload")
                self.cache.mark_dirty(key, self.clock.now())
            assert isinstance(block.payload, bytearray)
            block.payload[lo:hi] = data[src : src + (hi - lo)]
            src += hi - lo
            self._note_data_block_dirtied(inode, lbn)
        if end > inode.size:
            inode.size = end
        inode.mtime = self.clock.now()
        self._mark_inode_dirty(inode)
        return len(data)

    # -- truncation ---------------------------------------------------

    def _pointer_block_addr(self, inode: Inode, key: BlockKey) -> int:
        """Current on-disk address of a pointer block (NIL if none)."""
        if key.kind is BlockKind.DINDIRECT:
            return inode.dindirect
        if key.kind is not BlockKind.INDIRECT:
            raise InvalidArgumentError(f"not a pointer block key: {key}")
        if key.index == 0:
            return inode.indirect
        root = self._load_pointers(
            BlockKey(inode.inum, BlockKind.DINDIRECT, 0), inode.dindirect
        )
        return root[key.index - 1]

    def _clear_pointer_block(self, inode: Inode, key: BlockKey) -> None:
        """Drop a pointer block: release its address, zero the parent slot."""
        addr = self._pointer_block_addr(inode, key)
        if addr != NIL:
            self._release_block_addr(addr)
        if key.kind is BlockKind.DINDIRECT:
            inode.dindirect = NIL
        elif key.index == 0:
            inode.indirect = NIL
        else:
            root_key = BlockKey(inode.inum, BlockKind.DINDIRECT, 0)
            root = self._load_pointers(root_key, inode.dindirect)
            root[key.index - 1] = NIL
            self.cache.mark_dirty(root_key, self.clock.now())
        self.cache.discard(key)

    def _truncate(self, inode: Inode, new_size: int) -> None:
        if new_size < 0:
            raise InvalidArgumentError(f"negative truncate size: {new_size}")
        bs = self.block_size
        if new_size >= inode.size:
            inode.size = new_size
            inode.mtime = self.clock.now()
            self._mark_inode_dirty(inode)
            return
        old_keys = set(self.block_map.indirect_block_keys(inode))
        keep_blocks = (new_size + bs - 1) // bs
        for lbn in range(keep_blocks, inode.nblocks(bs)):
            addr = self.block_map.get(inode, lbn)
            if addr != NIL:
                self.block_map.set(inode, lbn, NIL)
                self._release_block_addr(addr)
            self.cache.discard(self._data_key(inode.inum, lbn))
        inode.size = new_size
        new_keys = set(self.block_map.indirect_block_keys(inode))
        # Free pointer blocks the shrunken file no longer needs; leaves
        # before the double-indirect root so parent slots stay readable.
        doomed = sorted(
            old_keys - new_keys,
            key=lambda key: (key.kind is BlockKind.DINDIRECT, key.index),
        )
        for key in doomed:
            self._clear_pointer_block(inode, key)
        if new_size % bs:
            # Zero the dropped tail of the final partial block so a later
            # extension reads zeros, not stale bytes.
            key = self._data_key(inode.inum, new_size // bs)
            block = self.cache.peek(key)
            if block is None:
                addr = self.block_map.get(inode, new_size // bs)
                if addr != NIL:
                    payload = bytearray(
                        self._read_block_from_disk(addr, label="trunc-tail")
                    )
                    block = self.cache.insert(
                        key, payload, dirty=True, now=self.clock.now()
                    )
            if block is not None and isinstance(block.payload, bytearray):
                block.payload[new_size % bs :] = bytes(bs - new_size % bs)
                self.cache.mark_dirty(key, self.clock.now())
        inode.mtime = self.clock.now()
        self._mark_inode_dirty(inode)
        if new_size == 0:
            self._on_truncate_to_zero(inode)

    def _free_file_storage(self, inode: Inode) -> None:
        """Release every block of a deleted file."""
        self._truncate(inode, 0)
        self.cache.discard_file(inode.inum)
        self.readahead.forget(inode.inum)

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def _dir_block(self, inode: Inode, index: int) -> DirectoryBlock:
        cached = self._dir_blocks.get((inode.inum, index))
        if cached is not None:
            return cached
        raw = self._read_range(
            inode, index * self.block_size, self.block_size
        )
        block = DirectoryBlock.decode(raw, self.block_size)
        self._dir_blocks[(inode.inum, index)] = block
        return block

    def _write_dir_block(
        self, inode: Inode, index: int, block: DirectoryBlock
    ) -> None:
        self._write_range(inode, index * self.block_size, block.encode())
        self._dir_blocks[(inode.inum, index)] = block

    def _dir_map(self, inode: Inode) -> Dict[str, Tuple[int, int]]:
        cached = self._dcache.get(inode.inum)
        if cached is not None:
            return cached
        name_map: Dict[str, Tuple[int, int]] = {}
        space: List[int] = []
        for index in range(inode.nblocks(self.block_size)):
            block = self._dir_block(inode, index)
            for name, child in block.entries:
                name_map[name] = (child, index)
            space.append(block.free_bytes())
        self._dcache[inode.inum] = name_map
        self._dir_space[inode.inum] = space
        return name_map

    def _dir_lookup(self, inode: Inode, name: str) -> Optional[int]:
        entry = self._dir_map(inode).get(name)
        return None if entry is None else entry[0]

    def _dir_entries(self, inode: Inode) -> Dict[str, int]:
        return {name: child for name, (child, _idx) in self._dir_map(inode).items()}

    def _dir_add(self, inode: Inode, name: str, child: int) -> int:
        """Insert an entry; returns the index of the block modified."""
        validate_name(name)
        name_map = self._dir_map(inode)
        if name in name_map:
            raise FileExistsError_(f"directory entry {name!r} already exists")
        space = self._dir_space[inode.inum]
        need = entry_size(name)
        index = next(
            (i for i, free in enumerate(space) if free >= need), len(space)
        )
        if index == len(space):
            block = DirectoryBlock(self.block_size, [])
            space.append(self.block_size)
        else:
            block = self._dir_block(inode, index)
        block.add(name, child)
        self._write_dir_block(inode, index, block)
        space[index] -= entry_size(name)
        name_map[name] = (child, index)
        return index

    def _dir_remove(self, inode: Inode, name: str) -> Tuple[int, int]:
        """Remove an entry; returns (child inum, block index modified)."""
        name_map = self._dir_map(inode)
        entry = name_map.get(name)
        if entry is None:
            raise FileNotFoundError_(f"no directory entry {name!r}")
        child, index = entry
        block = self._dir_block(inode, index)
        block.remove(name)
        self._write_dir_block(inode, index, block)
        self._dir_space[inode.inum][index] += entry_size(name)
        del name_map[name]
        return child, index

    def _drop_dir_caches(self, inum: int) -> None:
        self._dcache.pop(inum, None)
        space = self._dir_space.pop(inum, None)
        if space is not None:
            for index in range(len(space)):
                self._dir_blocks.pop((inum, index), None)

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------

    def _namei(self, path: str) -> Inode:
        components = split_path(path)
        self.cpu.path_lookup(max(1, len(components)))
        inode = self._get_inode(ROOT_INUM)
        for component in components:
            if not inode.is_dir:
                raise NotADirectoryError_(
                    f"{component!r} looked up inside a non-directory in {path!r}"
                )
            child = self._dir_lookup(inode, component)
            if child is None:
                raise FileNotFoundError_(path)
            inode = self._get_inode(child)
        return inode

    def _resolve_parent(self, path: str) -> Tuple[Inode, str]:
        parent_path, name = dirname_basename(path)
        parent = self._namei(parent_path)
        if not parent.is_dir:
            raise NotADirectoryError_(parent_path)
        return parent, name

    # ------------------------------------------------------------------
    # Public namespace operations
    # ------------------------------------------------------------------

    def _check_mounted(self) -> None:
        if self._unmounted:
            raise StaleHandleError("file system is unmounted")

    def _check_writable(self) -> None:
        """Hook run before every mutating operation.

        The base implementation allows all writes; a storage manager
        that supports a degraded read-only mode (see
        :meth:`repro.lfs.LogStructuredFS.degraded`) overrides this to
        raise :class:`~repro.errors.ReadOnlyFSError` so mutations are
        refused uniformly at the VFS entry points while reads continue.
        """

    def create(self, path: str) -> FileHandle:
        self._check_mounted()
        self._check_writable()
        self.cpu.syscall()
        parent, name = self._resolve_parent(path)
        if self._dir_lookup(parent, name) is not None:
            raise FileExistsError_(path)
        self.cpu.create()
        inum = self._alloc_inum(FileType.REGULAR, parent.inum)
        inode = Inode(
            inum=inum,
            ftype=FileType.REGULAR,
            nlink=1,
            mtime=self.clock.now(),
            ctime=self.clock.now(),
        )
        self._install_inode(inode)
        block_index = self._dir_add(parent, name, inum)
        parent.mtime = self.clock.now()
        self._mark_inode_dirty(parent)
        self._after_create(parent, inode, block_index)
        self._stats.creates += 1
        self._maybe_writeback()
        return FileHandle(self, inum, path)

    def open(self, path: str) -> FileHandle:
        self._check_mounted()
        self.cpu.syscall()
        inode = self._namei(path)
        if inode.is_dir:
            raise IsADirectoryError_(path)
        self._stats.opens += 1
        return FileHandle(self, inode.inum, path)

    def unlink(self, path: str) -> None:
        self._check_mounted()
        self._check_writable()
        self.cpu.syscall()
        parent, name = self._resolve_parent(path)
        child = self._dir_lookup(parent, name)
        if child is None:
            raise FileNotFoundError_(path)
        inode = self._get_inode(child)
        if inode.is_dir:
            raise IsADirectoryError_(path)
        self.cpu.remove()
        _child, block_index = self._dir_remove(parent, name)
        parent.mtime = self.clock.now()
        self._mark_inode_dirty(parent)
        self._free_file_storage(inode)
        inode.ftype = FileType.FREE
        inode.nlink = 0
        self._on_inode_freed(inode)
        self._after_remove(parent, inode, block_index)
        self._drop_inode(inode.inum)
        self._stats.removes += 1
        self._maybe_writeback()

    def mkdir(self, path: str) -> None:
        self._check_mounted()
        self._check_writable()
        self.cpu.syscall()
        parent, name = self._resolve_parent(path)
        if self._dir_lookup(parent, name) is not None:
            raise FileExistsError_(path)
        self.cpu.create()
        inum = self._alloc_inum(FileType.DIRECTORY, parent.inum)
        inode = Inode(
            inum=inum,
            ftype=FileType.DIRECTORY,
            nlink=2,
            mtime=self.clock.now(),
            ctime=self.clock.now(),
        )
        self._install_inode(inode)
        # A directory is born with its first (empty) data block, like
        # the classic UNIX "." / ".." block: the inode that the create
        # path persists already points at valid directory data, so a
        # crash can never leave a directory whose entries are
        # unreachable through a stale zero-length inode.
        self._write_dir_block(inode, 0, DirectoryBlock(self.block_size, []))
        block_index = self._dir_add(parent, name, inum)
        parent.nlink += 1
        parent.mtime = self.clock.now()
        self._mark_inode_dirty(parent)
        self._after_create(parent, inode, block_index)
        self._stats.mkdirs += 1
        self._maybe_writeback()

    def rmdir(self, path: str) -> None:
        self._check_mounted()
        self._check_writable()
        self.cpu.syscall()
        parent, name = self._resolve_parent(path)
        child = self._dir_lookup(parent, name)
        if child is None:
            raise FileNotFoundError_(path)
        inode = self._get_inode(child)
        if not inode.is_dir:
            raise NotADirectoryError_(path)
        if self._dir_entries(inode):
            raise DirectoryNotEmptyError(path)
        self.cpu.remove()
        _child, block_index = self._dir_remove(parent, name)
        parent.nlink -= 1
        parent.mtime = self.clock.now()
        self._mark_inode_dirty(parent)
        self._free_file_storage(inode)
        inode.ftype = FileType.FREE
        inode.nlink = 0
        self._on_inode_freed(inode)
        self._after_remove(parent, inode, block_index)
        self._drop_dir_caches(inode.inum)
        self._drop_inode(inode.inum)
        self._stats.removes += 1
        self._maybe_writeback()

    def rename(self, old_path: str, new_path: str) -> None:
        self._check_mounted()
        self._check_writable()
        self.cpu.syscall()
        old_parent, old_name = self._resolve_parent(old_path)
        child = self._dir_lookup(old_parent, old_name)
        if child is None:
            raise FileNotFoundError_(old_path)
        moving = self._get_inode(child)
        new_parent, new_name = self._resolve_parent(new_path)
        existing = self._dir_lookup(new_parent, new_name)
        if existing is not None:
            target = self._get_inode(existing)
            if target.is_dir:
                raise FileExistsError_(f"rename target is a directory: {new_path}")
            if moving.is_dir:
                raise NotADirectoryError_(new_path)
            self.unlink(new_path)
            # unlink re-resolved parents; refresh our references.
            new_parent, new_name = self._resolve_parent(new_path)
        self.cpu.create()
        self._dir_remove(old_parent, old_name)
        self._dir_add(new_parent, new_name, moving.inum)
        if moving.is_dir and old_parent.inum != new_parent.inum:
            old_parent.nlink -= 1
            new_parent.nlink += 1
        now = self.clock.now()
        old_parent.mtime = now
        new_parent.mtime = now
        self._mark_inode_dirty(old_parent)
        self._mark_inode_dirty(new_parent)
        self._maybe_writeback()

    def listdir(self, path: str) -> List[str]:
        self._check_mounted()
        self.cpu.syscall()
        inode = self._namei(path)
        if not inode.is_dir:
            raise NotADirectoryError_(path)
        return sorted(self._dir_entries(inode))

    def stat(self, path: str) -> StatResult:
        self._check_mounted()
        self.cpu.syscall()
        inode = self._namei(path)
        return StatResult(
            inum=inode.inum,
            ftype=inode.ftype,
            size=inode.size,
            nlink=inode.nlink,
            mtime=inode.mtime,
            atime=self._get_atime(inode),
        )

    # ------------------------------------------------------------------
    # Public file I/O
    # ------------------------------------------------------------------

    def _handle_inode(self, handle: FileHandle) -> Inode:
        self._check_mounted()
        inode = self._get_inode(handle.inum)
        if not inode.is_allocated:
            raise StaleHandleError(f"file {handle.path} was deleted")
        return inode

    def pread(
        self, handle: FileHandle, offset: int, length: Optional[int]
    ) -> bytes:
        inode = self._handle_inode(handle)
        if length is None:
            length = max(0, inode.size - offset)
        self.cpu.syscall()
        data = self._read_range(inode, offset, length)
        nblocks = max(1, (len(data) + self.block_size - 1) // self.block_size)
        self.cpu.block_touch(nblocks)
        self.cpu.copy(len(data))
        self._update_atime(inode)
        self._stats.read_calls += 1
        self._stats.bytes_read += len(data)
        if self._obs_enabled:
            self._m_fs_bytes_read.inc(len(data))
        return data

    def pwrite(self, handle: FileHandle, offset: int, data: bytes) -> int:
        if self._obs_enabled:
            with self.telemetry.span("fs.write", bytes=len(data)):
                written = self._pwrite(handle, offset, data)
            self._m_fs_bytes_written.inc(written)
            self._m_wamp_user.inc(written)
            return written
        return self._pwrite(handle, offset, data)

    def _pwrite(self, handle: FileHandle, offset: int, data: bytes) -> int:
        inode = self._handle_inode(handle)
        self._check_writable()
        self.cpu.syscall()
        nblocks = max(1, (len(data) + self.block_size - 1) // self.block_size)
        self.cpu.block_touch(nblocks)
        self.cpu.copy(len(data))
        written = self._write_range(inode, offset, data)
        self._stats.write_calls += 1
        self._stats.bytes_written += written
        self._maybe_writeback()
        return written

    def ftruncate(self, handle: FileHandle, size: int) -> None:
        inode = self._handle_inode(handle)
        self._check_writable()
        self.cpu.syscall()
        self._truncate(inode, size)
        self._maybe_writeback()

    def handle_size(self, handle: FileHandle) -> int:
        return self._handle_inode(handle).size

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _maybe_writeback(self) -> None:
        if self._in_writeback:
            return
        reason = self.monitor.check()
        if reason is not None:
            self._stats.note_writeback(reason.value)
            self._in_writeback = True
            try:
                with self.telemetry.span("cache.flush", reason=reason.value):
                    self._writeback(reason)
            finally:
                self._in_writeback = False

    def sync(self) -> None:
        self._check_mounted()
        self.cpu.syscall()
        self.monitor.note_explicit(WritebackReason.SYNC)
        self._stats.note_writeback(WritebackReason.SYNC.value)
        self._stats.syncs += 1
        self._in_writeback = True
        try:
            with self.telemetry.span(
                "cache.flush", reason=WritebackReason.SYNC.value
            ):
                self._writeback(WritebackReason.SYNC)
        finally:
            self._in_writeback = False
        self.disk.drain()

    def flush_caches(self) -> None:
        self.sync()
        self.cache.drop_clean(metadata_too=True)
        self._inodes = {
            inum: inode
            for inum, inode in self._inodes.items()
            if inum in self._dirty_inodes or inum == ROOT_INUM
        }
        self._dcache.clear()
        self._dir_space.clear()
        self._dir_blocks.clear()

    def unmount(self) -> None:
        if self._unmounted:
            return
        self.sync()
        self._unmounted = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> FsStats:
        return self._stats

    def cache_dirty_bytes(self) -> int:
        return self.cache.dirty_bytes

    def iter_dirty_blocks(self) -> Iterable[CacheBlock]:
        return self.cache.dirty_blocks()
