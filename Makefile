PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench-smoke bench bench-diff trace crashtest chaos service-bench cluster-bench ci

test:
	$(PYTHON) -m pytest -x -q

# Prefer ruff when available; otherwise the dependency-free fallback
# (same F401/F841 scope, see src/repro/tools/lint.py).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		$(PYTHON) -m repro.tools.lint src tests benchmarks; \
	fi

# Smoke sizes are too small for the full 2x cleaning / 1.2x seq_read
# speedup gates (the O(n) terms barely register at 256 segments); 1.0
# still catches the optimized paths ever being slower than the legacy
# ones.  The smoke run also asserts telemetry-on produces identical
# simulated results; the 3% telemetry-disabled-vs-baseline gate needs
# the committed BENCH_hotpaths.json scale, so only `make bench`
# exercises it (the smoke run records a scale-mismatch skip note
# instead of flaking).
bench-smoke:
	$(PYTHON) benchmarks/perf_harness.py --smoke --strict \
		--min-cleaning-speedup 1.0 --min-seq-read-speedup 1.0 \
		--min-checksum-speedup 1.0 --min-dispatch-speedup 1.0 \
		--output /tmp/BENCH_smoke.json

# Full gates: >=2x cleaning, >=1.2x seq_read, >=2x batch_checksum,
# >=2x scheduler_dispatch, and no workload more than 3% slower than
# the committed BENCH_hotpaths.json baseline.
bench:
	$(PYTHON) benchmarks/perf_harness.py --scale small --strict

# Compare two smoke-scale harness runs with the `repro bench-diff`
# gate (expects bench-smoke's /tmp/BENCH_smoke.json to exist).  The
# tolerance is deliberately loose — smoke legs run for milliseconds on
# shared CI machines, so this step gates schema drift, workload
# comparability and order-of-magnitude slowdowns; the single-digit 3%
# gate lives in `make bench` against the committed baseline.
bench-diff:
	$(PYTHON) benchmarks/perf_harness.py --smoke --no-legacy \
		--output /tmp/BENCH_smoke_b.json
	$(PYTHON) -m repro bench-diff /tmp/BENCH_smoke.json \
		/tmp/BENCH_smoke_b.json --max-regression 200

# Regenerate the committed trace-attribution report: a seeded
# 16-client serve-sim with full request tracing, decomposed into
# queueing / admission-retry / commit-wait / fs / disk /
# cleaner-throttle (components sum to the measured latency) plus the
# write-amplification ledger.
trace:
	$(PYTHON) -m repro trace --output BENCH_trace.json

# Fixed seed, small trial count: CI asserts zero unhandled exceptions
# (the command exits nonzero if any trial escapes with an untyped
# error), not any particular corruption mix.
crashtest:
	$(PYTHON) -m repro crashtest --trials 10 --seed 0

# Crash-under-load campaign: boot the full service rig on a faulty
# device, crash it at adversarial instants, remount, and check the
# durability contract (every acked fsync intact, no torn client state).
# Exits nonzero on any contract violation or unhandled escape; the
# jobs=2 rerun must render byte-identically to the serial one.
chaos:
	$(PYTHON) -m repro chaos --trials 6 --seed 0 --clients 4 \
		--requests-per-client 40 --verbose > /tmp/chaos_j1.txt
	$(PYTHON) -m repro chaos --trials 6 --seed 0 --clients 4 \
		--requests-per-client 40 --verbose --jobs 2 > /tmp/chaos_j2.txt
	diff /tmp/chaos_j1.txt /tmp/chaos_j2.txt
	@cat /tmp/chaos_j1.txt

# Tiny client sweep; exits nonzero if any request is dropped.  The
# full sweep (and the committed BENCH_service.json) comes from
# benchmarks/test_service_scaling.py.
service-bench:
	$(PYTHON) -m repro.service.bench --smoke

# Sharded scale-out smoke: a tiny cluster sweep run twice (serial and
# jobs=2) whose reports must be byte-identical — the shard-group
# merge discipline makes simulated numbers a pure function of the
# seed, so any divergence is a determinism bug, and `repro bench-diff`
# gates the throughput/p99 numbers point by point on top.  The final
# step regenerates the cluster section onto a copy of the committed
# BENCH_service.json and diffs it, exercising the service-report
# bench-diff dispatch end to end.  Every run exits nonzero if any
# shard image fails verification.
cluster-bench:
	$(PYTHON) -m repro.cluster.bench --smoke \
		--output /tmp/BENCH_cluster_a.json
	$(PYTHON) -m repro.cluster.bench --smoke --jobs 2 \
		--output /tmp/BENCH_cluster_b.json
	diff /tmp/BENCH_cluster_a.json /tmp/BENCH_cluster_b.json
	$(PYTHON) -m repro bench-diff /tmp/BENCH_cluster_a.json \
		/tmp/BENCH_cluster_b.json --max-regression 0.001
	cp BENCH_service.json /tmp/BENCH_service_new.json
	$(PYTHON) -m repro.cluster.bench --smoke \
		--output /tmp/BENCH_service_new.json
	$(PYTHON) -m repro bench-diff BENCH_service.json \
		/tmp/BENCH_service_new.json

ci: lint test bench-smoke bench-diff service-bench cluster-bench crashtest chaos
