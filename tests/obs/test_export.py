"""Exporter round-trips: JSONL, dicts, and the rendered report."""

from __future__ import annotations

import io

from repro.obs import (
    NULL_TELEMETRY,
    Telemetry,
    export_jsonl,
    format_fields,
    iter_records,
    read_jsonl,
    render_report,
)
from repro.obs.export import EXPORT_SCHEMA
from repro.sim.clock import SimClock


def populated_telemetry() -> Telemetry:
    clock = SimClock()
    telemetry = Telemetry(clock=clock)
    telemetry.counter("disk.reads").inc(3)
    telemetry.gauge("cache.dirty_bytes").set(8192)
    telemetry.histogram("disk.request_bytes").observe(4096)
    with telemetry.span("fs.write", bytes=4096):
        clock.advance(0.5)
    with telemetry.span("cleaner.clean"):
        clock.advance(1.5)
    return telemetry


class TestRecordStream:
    def test_metrics_then_spans_then_summary(self):
        records = list(iter_records(populated_telemetry()))
        types = [record["type"] for record in records]
        assert types == ["metric"] * 3 + ["span"] * 2 + ["summary"]

    def test_summary_record_contents(self):
        summary = list(iter_records(populated_telemetry()))[-1]
        assert summary["schema"] == EXPORT_SCHEMA
        assert summary["metric_names"] == [
            "cache.dirty_bytes",
            "disk.reads",
            "disk.request_bytes",
        ]
        assert summary["span_kinds"] == ["cleaner.clean", "fs.write"]
        assert summary["span_kind_counts"] == {
            "cleaner.clean": 1,
            "fs.write": 1,
        }
        assert summary["dropped_spans"] == 0
        assert summary["dropped_label_sets"] == 0


class TestJsonlRoundTrip:
    def test_path_round_trip(self, tmp_path):
        telemetry = populated_telemetry()
        out = str(tmp_path / "telemetry.jsonl")
        lines = export_jsonl(telemetry, out)
        records = read_jsonl(out)
        assert len(records) == lines == 6
        assert records == list(iter_records(telemetry))

    def test_file_object_round_trip(self):
        telemetry = populated_telemetry()
        buffer = io.StringIO()
        lines = export_jsonl(telemetry, buffer)
        assert buffer.getvalue().count("\n") == lines

    def test_span_record_preserves_timing_and_attrs(self, tmp_path):
        telemetry = populated_telemetry()
        out = str(tmp_path / "telemetry.jsonl")
        export_jsonl(telemetry, out)
        spans = [r for r in read_jsonl(out) if r["type"] == "span"]
        write = next(s for s in spans if s["kind"] == "fs.write")
        assert write["end"] - write["start"] == 0.5
        assert write["attrs"] == {"bytes": 4096}


class TestFormatFields:
    def test_labelled_and_bare_fields(self):
        line = format_fields([("reads", 3), ("", "idle"), ("writes", 0)])
        assert line == "reads 3, idle, writes 0"


class TestRenderReport:
    def test_report_shows_metrics_and_spans(self):
        report = render_report(populated_telemetry(), title="unit test")
        assert "== unit test ==" in report
        assert "disk.reads" in report
        assert "count=1" in report  # histogram series
        assert "cleaner.clean" in report
        assert "total=1.500000s" in report

    def test_disabled_telemetry_reports_nothing(self):
        report = render_report(NULL_TELEMETRY)
        assert "telemetry disabled" in report

    def test_empty_enabled_telemetry(self):
        report = render_report(Telemetry())
        assert "no metrics recorded" in report
        assert "no spans recorded" in report
