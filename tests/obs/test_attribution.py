"""Unit tests for request trace contexts and the attribution analyzer.

The contract under test is the one the ``repro trace`` report relies
on: every request's latency components sum exactly to its total
(queueing is the residual), execution time splits fs/disk/cleaner by
monotone counter deltas, and the aggregation into p50/p99/share tables
is deterministic.
"""

from __future__ import annotations

import pytest

from repro.obs.attribution import (
    build_trace_report,
    link_counts,
    max_sum_error,
    percentile,
    request_roots,
)
from repro.obs.context import (
    COMPONENTS,
    NULL_TRACE_CONTEXT,
    RequestTracer,
    StallProbe,
    TraceContext,
)
from repro.obs.tracer import SpanTracer
from repro.sim.clock import SimClock


@pytest.fixture
def tracer(clock: SimClock) -> SpanTracer:
    return SpanTracer(clock=clock)


def make_context(tracer: SpanTracer, fs=None) -> TraceContext:
    root = tracer.begin("service.request", client=0)
    root.attrs["kind"] = "write"
    return TraceContext(tracer, root, StallProbe(fs))


class TestExplicitSpans:
    def test_begin_finish_off_the_stack(self, tracer, clock):
        a = tracer.begin("service.request", client=1)
        b = tracer.begin("service.request", client=2)
        clock.advance(1.0)
        tracer.finish(b)
        tracer.finish(a)
        spans = tracer.by_kind("service.request")
        assert [s.attrs["client"] for s in spans] == [2, 1]
        assert all(s.parent_id is None for s in spans)
        assert tracer.kind_counts["service.request"] == 2

    def test_resume_parents_nested_spans_under_the_root(self, tracer):
        root = tracer.begin("service.request")
        tracer.resume(root)
        with tracer.span("cleaner.clean"):
            pass
        tracer.suspend(root)
        with tracer.span("fs.write"):
            pass
        tracer.finish(root)
        (clean,) = tracer.by_kind("cleaner.clean")
        (write,) = tracer.by_kind("fs.write")
        assert clean.parent_id == root.span_id
        assert write.parent_id is None

    def test_links_serialize_only_when_present(self, tracer):
        root = tracer.begin("service.request")
        linked = tracer.begin("cleaner.clean")
        tracer.add_link(linked, root.span_id, "pays_for")
        tracer.finish(linked)
        tracer.finish(root)
        (clean,) = tracer.by_kind("cleaner.clean")
        assert clean.to_dict()["links"] == [
            {"target": root.span_id, "relation": "pays_for"}
        ]
        (req,) = tracer.by_kind("service.request")
        assert "links" not in req.to_dict()

    def test_disabled_tracer_returns_none_and_tolerates_it(self):
        tracer = SpanTracer(enabled=False)
        span = tracer.begin("service.request")
        assert span is None
        tracer.finish(span)
        tracer.resume(span)
        tracer.suspend(span)
        assert tracer.current_span() is None
        assert tracer.spans == []


class TestTraceContext:
    def test_charge_split_semantics(self, tracer):
        ctx = make_context(tracer)
        # 10s elapsed; 4s sync disk stall of which 1s was the cleaner's
        # own I/O; 3s cleaner busy time.  The cleaner keeps its wall
        # time whole, disk gets only the non-cleaner stalls.
        ctx.charge_split(10.0, (4.0, 3.0, 1.0))
        assert ctx.components["disk"] == 3.0
        assert ctx.components["cleaner_throttle"] == 3.0
        assert ctx.components["fs"] == 4.0

    def test_finish_makes_queueing_the_exact_residual(self, tracer):
        ctx = make_context(tracer)
        ctx.charge("admission_retry", 0.25)
        ctx.charge_split(1.0, (0.5, 0.0, 0.0))
        ctx.finish(2.0)
        root = ctx.root
        assert root.attrs["lat.total"] == 2.0
        assert root.attrs["lat.queueing"] == 2.0 - (0.25 + 1.0)
        total = sum(root.attrs[f"lat.{name}"] for name in COMPONENTS)
        assert total == pytest.approx(2.0, abs=0.0)
        assert root.end is not None

    def test_labeled_wait_charges_its_component(self, tracer, clock):
        ctx = make_context(tracer)
        ctx.begin_wait("service.commit_wait", "commit_wait")
        clock.advance(0.125)
        ctx.end_wait()
        ctx.end_wait()  # idempotent
        assert ctx.components["commit_wait"] == 0.125
        (wait,) = tracer.by_kind("service.commit_wait")
        assert wait.parent_id == ctx.root.span_id

    def test_activate_deactivate_diffs_the_probe(self, tracer, clock):
        from types import SimpleNamespace

        fs = SimpleNamespace(
            disk=SimpleNamespace(sync_stall_seconds=0.0),
            cleaner=SimpleNamespace(
                stats=SimpleNamespace(
                    busy_seconds=0.0, disk_stall_seconds=0.0
                )
            ),
        )
        ctx = make_context(tracer, fs)
        ctx.activate()
        clock.advance(3.0)
        fs.disk.sync_stall_seconds += 1.0
        ctx.deactivate()
        assert ctx.components["disk"] == 1.0
        assert ctx.components["fs"] == 2.0
        # deactivate without activate is a no-op
        ctx.deactivate()
        assert ctx.components["fs"] == 2.0

    def test_null_context_is_falsy_and_inert(self):
        assert not NULL_TRACE_CONTEXT
        NULL_TRACE_CONTEXT.activate()
        NULL_TRACE_CONTEXT.begin_wait("service.commit_wait", "commit_wait")
        NULL_TRACE_CONTEXT.end_wait()
        NULL_TRACE_CONTEXT.charge("fs", 1.0)
        NULL_TRACE_CONTEXT.charge_split(1.0, (0.0, 0.0, 0.0))
        NULL_TRACE_CONTEXT.deactivate()
        NULL_TRACE_CONTEXT.finish(1.0)
        assert NULL_TRACE_CONTEXT.root is None


class TestRequestTracer:
    def test_disabled_telemetry_yields_the_null_context(self):
        from repro.obs import Telemetry

        factory = RequestTracer(Telemetry(enabled=False), fs=None)
        assert factory.context(0, "write") is NULL_TRACE_CONTEXT

    def test_enabled_telemetry_builds_rooted_contexts(self, clock):
        from repro.obs import Telemetry

        telemetry = Telemetry(clock=clock)
        factory = RequestTracer(telemetry, fs=None)
        ctx = factory.context(7, "fsync")
        assert ctx.root.attrs == {"client": 7, "kind": "fsync"}
        ctx.finish(0.0)
        assert telemetry.tracer.kind_counts["service.request"] == 1


class TestAnalyzer:
    def test_percentile_nearest_rank(self):
        assert percentile([], 99.0) == 0.0
        assert percentile([3.0, 1.0, 2.0, 4.0], 50.0) == 2.0
        assert percentile([3.0, 1.0, 2.0, 4.0], 99.0) == 4.0

    def _finish_requests(self, tracer, totals):
        for index, total in enumerate(totals):
            ctx = make_context(tracer)
            ctx.charge("fs", total / 2.0)
            ctx.finish(total)

    def test_report_structure_and_sum_invariant(self, tracer):
        self._finish_requests(tracer, [0.1, 0.2, 0.3, 0.4])

        class T:
            pass

        telemetry = T()
        telemetry.tracer = tracer
        report = build_trace_report(
            telemetry, config={"clients": 4, "seed": 0}
        )
        assert report["requests"] == 4
        assert report["max_sum_error"] == 0.0
        overall = report["attribution"]["overall"]
        assert overall["count"] == 4
        assert set(overall["components"]) == set(COMPONENTS)
        shares = sum(
            overall["components"][name]["share"] for name in COMPONENTS
        )
        assert shares == pytest.approx(1.0, abs=1e-4)
        assert report["attribution"]["by_kind"]["write"]["count"] == 4
        assert report["config"] == {"clients": 4, "seed": 0}

    def test_request_roots_skip_unfinished_and_foreign_spans(self, tracer):
        unfinished = tracer.begin("service.request")
        with tracer.span("fs.write"):
            pass
        self._finish_requests(tracer, [1.0])
        roots = request_roots(tracer.spans)
        assert len(roots) == 1
        assert max_sum_error(roots) == 0.0
        tracer.finish(unfinished)

    def test_link_counts(self, tracer):
        root = tracer.begin("service.request")
        clean = tracer.begin("cleaner.clean")
        tracer.add_link(clean, root.span_id, "pays_for")
        commit = tracer.begin("service.group_commit")
        tracer.add_link(commit, root.span_id, "commits")
        tracer.add_link(commit, root.span_id, "commits")
        for span in (clean, commit, root):
            tracer.finish(span)
        assert link_counts(tracer.spans) == {"pays_for": 1, "commits": 2}
