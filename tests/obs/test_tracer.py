"""Unit tests for the span tracer (simulated-time spans)."""

from __future__ import annotations

import pytest

from repro.obs.tracer import NULL_SPAN, SpanTracer
from repro.sim.clock import SimClock


@pytest.fixture
def tracer(clock: SimClock) -> SpanTracer:
    return SpanTracer(clock=clock)


class TestTiming:
    def test_span_measures_simulated_seconds(self, tracer, clock):
        clock.advance(10.0)
        with tracer.span("fs.write"):
            clock.advance(2.5)
        (span,) = tracer.spans
        assert span.start == 10.0
        assert span.end == 12.5
        assert span.duration == 2.5
        assert tracer.kind_seconds["fs.write"] == 2.5

    def test_unbound_tracer_records_zero_times(self):
        tracer = SpanTracer()
        with tracer.span("fs.write"):
            pass
        (span,) = tracer.spans
        assert span.start == 0.0 and span.end == 0.0


class TestNesting:
    def test_children_record_parent_ids(self, tracer, clock):
        with tracer.span("cleaner.clean") as outer:
            with tracer.span("cleaner.relocate_segment"):
                clock.advance(1.0)
            with tracer.span("cleaner.relocate_segment"):
                clock.advance(1.0)
        outer_span = tracer.by_kind("cleaner.clean")[0]
        children = tracer.children_of(outer_span.span_id)
        assert [c.kind for c in children] == ["cleaner.relocate_segment"] * 2
        assert outer_span.parent_id is None
        assert outer.set_attr is not None  # context object is the span API

    def test_exception_unwinds_open_spans(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("fs.write"):
                with tracer.span("cache.flush"):
                    raise RuntimeError("boom")
        assert tracer._stack == []
        assert {s.kind for s in tracer.spans} == {"fs.write", "cache.flush"}
        assert all(s.end is not None for s in tracer.spans)


class TestAttrs:
    def test_attrs_from_open_and_set_attr(self, tracer):
        with tracer.span("checkpoint.write", region=1) as span:
            span.set_attr("blocks", 12)
        (recorded,) = tracer.spans
        assert recorded.attrs == {"region": 1, "blocks": 12}
        assert recorded.to_dict()["attrs"] == {"region": 1, "blocks": 12}


class TestRetention:
    def test_max_spans_drops_events_but_keeps_counting(self, clock):
        tracer = SpanTracer(clock=clock, max_spans=2)
        for _ in range(5):
            with tracer.span("fs.write"):
                clock.advance(1.0)
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 3
        # Aggregates keep covering every span, dropped or not.
        assert tracer.kind_counts["fs.write"] == 5
        assert tracer.kind_seconds["fs.write"] == 5.0

    def test_clear_resets_everything(self, tracer, clock):
        with tracer.span("fs.write"):
            clock.advance(1.0)
        tracer.clear()
        assert tracer.spans == []
        assert tracer.kind_counts == {}
        assert tracer.kind_seconds == {}


class TestDisabled:
    def test_disabled_tracer_returns_shared_null_span(self, clock):
        tracer = SpanTracer(clock=clock, enabled=False)
        span = tracer.span("fs.write", bytes=1)
        assert span is NULL_SPAN
        with span as active:
            active.set_attr("ignored", True)
        assert tracer.spans == []
        assert tracer.kind_counts == {}


class TestClockBinding:
    def test_rebinds_between_machines_when_idle(self, tracer):
        second = SimClock(start=100.0)
        tracer.bind_clock(second)
        with tracer.span("fs.write"):
            second.advance(1.0)
        (span,) = tracer.spans
        assert span.start == 100.0 and span.end == 101.0

    def test_never_rebinds_while_a_span_is_open(self, tracer, clock):
        second = SimClock(start=100.0)
        with tracer.span("fs.write"):
            tracer.bind_clock(second)
            clock.advance(3.0)
        (span,) = tracer.spans
        assert tracer.clock is clock
        assert span.duration == 3.0
