"""Unit tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.obs import MetricsRegistry, NULL_INSTRUMENT
from repro.obs.registry import OVERFLOW_LABELS


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_monotonic_increments(self, registry):
        counter = registry.counter("disk.reads")
        counter.inc()
        counter.inc(5)
        assert registry.value("disk.reads") == 6

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("disk.reads")
        with pytest.raises(InvalidArgumentError):
            counter.inc(-1)
        assert counter.value == 0

    def test_same_series_resolves_same_instrument(self, registry):
        first = registry.counter("disk.requests", tier="data")
        second = registry.counter("disk.requests", tier="data")
        other = registry.counter("disk.requests", tier="meta")
        assert first is second
        assert first is not other
        first.inc(3)
        assert registry.value("disk.requests", tier="data") == 3
        assert registry.value("disk.requests", tier="meta") == 0


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("cache.dirty_bytes")
        gauge.set(4096)
        gauge.add(-1024)
        assert registry.value("cache.dirty_bytes") == 3072


class TestHistogram:
    def test_bucket_bounds_are_inclusive(self, registry):
        histogram = registry.histogram("disk.request_bytes", buckets=(10, 100))
        for value in (5, 10, 11, 1000):
            histogram.observe(value)
        sample = histogram.sample()
        assert sample["buckets"] == [[10.0, 2], [100.0, 1], ["+inf", 1]]
        assert sample["sum"] == 1026
        assert sample["count"] == 4

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(InvalidArgumentError):
            registry.histogram("h", buckets=())

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(InvalidArgumentError):
            registry.histogram("h", buckets=(10, 10, 20))


class TestRegistrySemantics:
    def test_kind_conflict_rejected(self, registry):
        registry.counter("fs.bytes_written")
        with pytest.raises(InvalidArgumentError):
            registry.gauge("fs.bytes_written")

    def test_empty_name_rejected(self, registry):
        with pytest.raises(InvalidArgumentError):
            registry.counter("")

    def test_get_and_value_for_absent_series(self, registry):
        assert registry.get("nope") is None
        assert registry.value("nope") == 0

    def test_metric_names_and_len(self, registry):
        registry.counter("b")
        registry.counter("a", tier="x")
        registry.counter("a", tier="y")
        assert registry.metric_names() == ["a", "b"]
        assert len(registry) == 3

    def test_samples_sorted_with_labels(self, registry):
        registry.counter("b").inc(2)
        registry.gauge("a", pool="z").set(7)
        samples = list(registry.samples())
        assert [s["name"] for s in samples] == ["a", "b"]
        assert samples[0] == {
            "name": "a",
            "kind": "gauge",
            "labels": {"pool": "z"},
            "value": 7,
        }


class TestCardinalityGuard:
    def test_excess_label_sets_collapse_into_overflow(self):
        registry = MetricsRegistry(max_label_sets=2)
        for inum in range(5):
            registry.counter("fs.writes", inum=inum).inc()
        # Two real series, everything past the cap shares one overflow.
        assert registry.value("fs.writes", inum=0) == 1
        assert registry.value("fs.writes", inum=1) == 1
        assert registry.get("fs.writes", inum=2) is None
        overflow = registry.get("fs.writes", **dict(OVERFLOW_LABELS))
        assert overflow is not None
        assert overflow.value == 3
        assert registry.dropped_label_sets == 3
        assert len(registry) == 3

    def test_invalid_cap_rejected(self):
        with pytest.raises(InvalidArgumentError):
            MetricsRegistry(max_label_sets=0)


class TestDisabledRegistry:
    def test_hands_out_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("disk.reads")
        gauge = registry.gauge("disk.busy_seconds")
        histogram = registry.histogram("disk.request_bytes")
        assert counter is NULL_INSTRUMENT
        assert gauge is NULL_INSTRUMENT
        assert histogram is NULL_INSTRUMENT
        counter.inc(10)
        gauge.set(5)
        gauge.add(1)
        histogram.observe(3)
        assert len(registry) == 0
        assert registry.metric_names() == []
        assert list(registry.samples()) == []
