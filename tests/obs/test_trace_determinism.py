"""Trace determinism: the tracing pipeline must be a pure observer.

Two guarantees, both load-bearing for the attribution reports being
diffable artifacts:

* a seeded multi-client run exports a **byte-identical** trace tree
  and attribution report every time — spans carry simulated
  timestamps only, so nothing about the export depends on the host; and
* tracing on vs. off produces the **identical filesystem image** and
  service stats — instrumentation observes the simulation without
  perturbing it.
"""

from __future__ import annotations

import io
import json

from repro.obs import Telemetry
from repro.obs.attribution import build_trace_report
from repro.obs.export import export_jsonl
from repro.service.config import ServiceConfig
from repro.service.scheduler import simulate_service
from repro.units import MIB

TOTAL_BYTES = 32 * MIB


def serve_config() -> ServiceConfig:
    return ServiceConfig(
        num_clients=16,
        seed=0,
        requests_per_client=6,
        fill_fraction=0.5,
    )


def run_serve_sim(telemetry):
    stats, fs = simulate_service(
        serve_config(), total_bytes=TOTAL_BYTES, telemetry=telemetry
    )
    fs.unmount()
    image = fs.disk.device.snapshot()
    return stats, fs, image


def exported_trace_bytes(telemetry) -> bytes:
    out = io.StringIO()
    export_jsonl(telemetry, out)
    return out.getvalue().encode("utf-8")


def attribution_bytes(telemetry, fs) -> bytes:
    report = build_trace_report(telemetry, fs=fs)
    return json.dumps(report, indent=2, sort_keys=True).encode("utf-8")


class TestSeededTraceIsByteIdentical:
    def test_trace_tree_and_attribution_report(self):
        blobs = []
        for _ in range(2):
            telemetry = Telemetry(trace_io=True)
            stats, fs, image = run_serve_sim(telemetry)
            assert stats.completed > 0 and stats.dropped == 0
            blobs.append(
                (
                    exported_trace_bytes(telemetry),
                    attribution_bytes(telemetry, fs),
                    image,
                )
            )
        first, second = blobs
        assert first[0] == second[0], "exported trace trees differ"
        assert first[1] == second[1], "attribution reports differ"
        assert first[2] == second[2], "filesystem images differ"

    def test_report_attribution_sums_exactly(self):
        telemetry = Telemetry()
        _, fs, _ = run_serve_sim(telemetry)
        report = build_trace_report(telemetry, fs=fs)
        assert report["requests"] == (
            serve_config().num_clients * serve_config().requests_per_client
        )
        assert report["max_sum_error"] == 0.0


class TestTracingIsAPureObserver:
    def test_tracing_on_off_identical_images_and_stats(self):
        stats_off, _, image_off = run_serve_sim(None)
        stats_on, _, image_on = run_serve_sim(Telemetry(trace_io=True))
        assert image_on == image_off
        assert stats_on.to_dict() == stats_off.to_dict()
