"""Cross-layer telemetry integration tests on real LFS workloads.

These pin the relationships the observability layer promises: registry
series mirror the pre-existing stats objects exactly, spans cover every
instrumented layer, the JSONL export is internally consistent with
:class:`~repro.disk.stats.DiskStats` deltas, and telemetry changes no
simulated outcome.
"""

from __future__ import annotations

import pytest

from repro.disk.geometry import wren_iv
from repro.disk.sim_disk import SimDisk
from repro.lfs.filesystem import LogStructuredFS
from repro.obs import Telemetry, export_jsonl, read_jsonl
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel
from repro.units import MIB
from repro.workloads.smallfile import run_small_file_test

from tests.conftest import small_lfs_config


def make_rig(telemetry=None) -> LogStructuredFS:
    clock = SimClock()
    cpu = CpuModel(clock)
    disk = SimDisk(wren_iv(64 * MIB), clock, telemetry=telemetry)
    return LogStructuredFS.mkfs(
        disk, cpu, small_lfs_config(), telemetry=telemetry
    )


def fragment_log(fs: LogStructuredFS, segments: int = 12) -> None:
    """Leave ``segments`` dirty segments, each holding one live block."""
    block_size = fs.config.block_size
    blocks_per_segment = fs.config.segment_size // block_size
    payload = b"u" * block_size
    keeper = fs.create("/keep")
    churn = fs.create("/churn")
    keeper_blocks = churn_blocks = 0
    for _ in range(segments):
        keeper.pwrite(keeper_blocks * block_size, payload)
        keeper_blocks += 1
        for _ in range(blocks_per_segment - 2):
            churn.pwrite(churn_blocks * block_size, payload)
            churn_blocks += 1
        fs.sync()
    keeper.close()
    churn.close()
    fs.unlink("/churn")
    fs.sync()


class TestSmallFileMetricRelationships:
    @pytest.fixture(scope="class")
    def rig(self):
        telemetry = Telemetry()
        fs = make_rig(telemetry)
        run_small_file_test(fs, num_files=40, file_size=1024, verify=True)
        return telemetry, fs

    def test_disk_series_mirror_disk_stats_exactly(self, rig):
        telemetry, fs = rig
        registry = telemetry.registry
        stats = fs.disk.stats
        assert registry.value("disk.reads") == stats.reads
        assert registry.value("disk.writes") == stats.writes
        assert registry.value("disk.bytes_read") == stats.bytes_read
        assert registry.value("disk.bytes_written") == stats.bytes_written
        assert registry.value("disk.sync_requests") == stats.sync_requests
        assert registry.value("disk.busy_seconds") == pytest.approx(
            stats.busy_seconds
        )

    def test_tier_labelled_series_mirror_tier_counts(self, rig):
        telemetry, fs = rig
        for tier, count in fs.disk.stats.tier_counts.items():
            assert telemetry.registry.value("disk.requests", tier=tier) == count

    def test_request_histogram_covers_every_request(self, rig):
        telemetry, fs = rig
        histogram = telemetry.registry.get("disk.request_bytes")
        assert histogram.count == fs.disk.stats.requests
        assert histogram.total == (
            fs.disk.stats.bytes_read + fs.disk.stats.bytes_written
        )

    def test_cache_series_mirror_cache_stats(self, rig):
        telemetry, fs = rig
        registry = telemetry.registry
        assert registry.value("cache.hits") == fs.cache.stats.hits
        assert registry.value("cache.misses") == fs.cache.stats.misses
        assert registry.value("cache.insertions") == fs.cache.stats.insertions
        assert registry.value("cache.evictions") == fs.cache.stats.evictions

    def test_fs_layer_accounts_every_write(self, rig):
        telemetry, fs = rig
        # One fs.write span per pwrite; their byte attrs sum to the
        # fs.bytes_written counter (40 files x 1 KiB).
        writes = telemetry.tracer.by_kind("fs.write")
        assert telemetry.tracer.kind_counts["fs.write"] >= 40
        assert sum(s.attrs["bytes"] for s in writes) == telemetry.registry.value(
            "fs.bytes_written"
        )
        assert telemetry.registry.value("fs.bytes_written") == 40 * 1024

    def test_flush_spans_labelled_by_reason(self, rig):
        telemetry, _fs = rig
        flushes = telemetry.tracer.by_kind("cache.flush")
        assert flushes
        assert all("reason" in span.attrs for span in flushes)


class TestCleaningJsonlCrossCheck:
    def test_export_covers_all_layers_and_matches_disk_deltas(self, tmp_path):
        telemetry = Telemetry()
        fs = make_rig(telemetry)
        fragment_log(fs)
        before = fs.disk.stats.copy()
        cleaned = fs.clean_now(fs.layout.num_segments)
        fs.disk.drain()
        assert cleaned > 0
        delta = fs.disk.stats.delta_since(before)

        out = str(tmp_path / "cleaning.jsonl")
        export_jsonl(telemetry, out)
        records = read_jsonl(out)
        summary = records[-1]
        assert summary["type"] == "summary"
        assert len(summary["metric_names"]) >= 6
        assert len(summary["span_kinds"]) >= 4
        assert {
            "fs.write",
            "cache.flush",
            "cleaner.clean",
            "cleaner.relocate_segment",
            "checkpoint.write",
        } <= set(summary["span_kinds"])

        metrics = {
            (r["name"], tuple(sorted(r["labels"].items()))): r
            for r in records
            if r["type"] == "metric"
        }
        # The cleaner moved bytes through the disk: its own counters
        # must fit inside the DiskStats delta taken around the clean.
        cleaner_read = metrics[("cleaner.bytes_read", ())]["value"]
        assert 0 < cleaner_read <= delta.bytes_read
        live_copied = metrics[("cleaner.live_bytes_copied", ())]["value"]
        assert live_copied == fs.cleaner.stats.live_bytes_copied
        assert 0 < live_copied <= delta.bytes_written
        # And the disk-layer series equal the cumulative DiskStats.
        assert metrics[("disk.bytes_read", ())]["value"] == fs.disk.stats.bytes_read
        assert (
            metrics[("disk.bytes_written", ())]["value"]
            == fs.disk.stats.bytes_written
        )

    def test_relocation_spans_nest_under_clean(self, tmp_path):
        telemetry = Telemetry()
        fs = make_rig(telemetry)
        fragment_log(fs, segments=4)
        fs.clean_now(fs.layout.num_segments)
        tracer = telemetry.tracer
        (clean_span,) = tracer.by_kind("cleaner.clean")
        relocations = tracer.by_kind("cleaner.relocate_segment")
        assert relocations
        for span in relocations:
            # Relocations run inside the cleaning pass (directly, or under
            # intermediate spans the pass opened).
            assert span.start >= clean_span.start
            assert span.end <= clean_span.end
        assert clean_span.attrs["cleaned"] == fs.cleaner.stats.segments_cleaned
        live = sum(span.attrs["live_blocks"] for span in relocations)
        assert live == fs.cleaner.stats.live_blocks_copied


class TestTelemetryChangesNothing:
    def test_identical_simulated_results_with_and_without(self):
        def run(telemetry):
            fs = make_rig(telemetry)
            run_small_file_test(fs, num_files=20, file_size=1024, verify=False)
            fs.sync()
            return fs

        fs_on = run(Telemetry())
        fs_off = run(None)
        assert fs_on.clock.now() == fs_off.clock.now()
        assert fs_on.disk.stats.to_dict() == fs_off.disk.stats.to_dict()
        assert fs_on.segments.log_bytes_written == fs_off.segments.log_bytes_written
