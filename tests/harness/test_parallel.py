"""Tests for the deterministic parallel task runner and metric merge."""

import pytest

from repro.harness.parallel import (
    available_jobs,
    merge_metric_samples,
    run_tasks,
)
from repro.obs import Telemetry


def _square(value, offset):
    return value * value + offset


def _identify(index):
    import os

    return index, os.getpid()


class TestAvailableJobs:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            available_jobs(0)
        with pytest.raises(ValueError):
            available_jobs(-3)

    def test_clamps_to_cpu_count(self):
        import os

        assert available_jobs(1) == 1
        assert available_jobs(10_000) == (os.cpu_count() or 1)


class TestRunTasks:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_tasks(_square, [(1, 0)], jobs=0)

    def test_results_in_task_order_sequential(self):
        tasks = [(i, 100) for i in range(10)]
        assert run_tasks(_square, tasks, jobs=1) == [
            i * i + 100 for i in range(10)
        ]

    def test_results_in_task_order_parallel(self):
        tasks = [(i, 7) for i in range(20)]
        expected = run_tasks(_square, tasks, jobs=1)
        assert run_tasks(_square, tasks, jobs=2) == expected
        assert run_tasks(_square, tasks, jobs=4) == expected

    def test_parallel_actually_uses_workers(self):
        results = run_tasks(_identify, [(i,) for i in range(8)], jobs=2)
        assert [index for index, _pid in results] == list(range(8))
        import os

        assert all(pid != os.getpid() for _index, pid in results)

    def test_single_task_runs_in_process(self):
        results = run_tasks(_identify, [(0,)], jobs=4)
        import os

        assert results == [(0, os.getpid())]

    def test_empty_task_list(self):
        assert run_tasks(_square, [], jobs=4) == []


def _record(telemetry, scale):
    telemetry.counter("trials", kind="clean").inc(2 * scale)
    telemetry.counter("trials", kind="detected").inc(scale)
    telemetry.gauge("load").add(0.5 * scale)
    histogram = telemetry.histogram("latency", buckets=[1.0, 10.0])
    for value in (0.5, 5.0, 50.0):
        for _ in range(scale):
            histogram.observe(value)


class TestMergeMetricSamples:
    def test_merge_equals_single_process_recording(self):
        # Two "workers" each record scale=1; merging both into a fresh
        # telemetry must equal one process recording scale=2.
        expected = Telemetry()
        _record(expected, 2)

        merged = Telemetry()
        for _worker in range(2):
            worker = Telemetry()
            _record(worker, 1)
            samples = worker.registry.to_dict()["metrics"]
            assert merge_metric_samples(merged, samples) == 4
        assert merged.registry.to_dict() == expected.registry.to_dict()

    def test_merge_is_incremental(self):
        merged = Telemetry()
        worker = Telemetry()
        worker.counter("n").inc(3)
        samples = worker.registry.to_dict()["metrics"]
        merge_metric_samples(merged, samples)
        merge_metric_samples(merged, samples)
        [record] = merged.registry.to_dict()["metrics"]
        assert record["value"] == 6

    def test_unknown_kinds_skipped(self):
        merged = Telemetry()
        assert (
            merge_metric_samples(
                merged, [{"name": "x", "kind": "span", "labels": {}}]
            )
            == 0
        )

    def test_sticky_gauges_merge_by_max_not_sum(self):
        # fs.degraded is a state flag, not a quantity: four degraded
        # workers merge to 1, not 4 — and a healthy worker (0) must not
        # clear a degraded one's flag.
        merged = Telemetry()
        for value in (1, 0, 1, 1):
            worker = Telemetry()
            worker.gauge("fs.degraded").set(value)
            worker.gauge("cache.bytes").set(10)
            samples = worker.registry.to_dict()["metrics"]
            merge_metric_samples(merged, samples)
        assert merged.gauge("fs.degraded").value == 1
        assert merged.gauge("cache.bytes").value == 40  # sum, as before


def _record_with_spans(telemetry, scale):
    _record(telemetry, scale)
    for _ in range(scale):
        with telemetry.span("fs.write", path="/f"):
            pass
        span = telemetry.tracer.begin("service.request", client=0)
        telemetry.tracer.finish(span)


class TestExportTelemetryTotals:
    def test_dict_merge_equals_single_process_recording(self):
        # Two "workers" each record scale=1 (metrics *and* spans);
        # merging their exported totals must equal one process
        # recording scale=2 — the --jobs N == --jobs 1 contract.
        from repro.harness.parallel import export_telemetry_totals

        expected = Telemetry()
        _record_with_spans(expected, 2)

        merged = Telemetry()
        for _worker in range(2):
            worker = Telemetry()
            _record_with_spans(worker, 1)
            merge_metric_samples(merged, export_telemetry_totals(worker))
        assert merged.registry.to_dict() == expected.registry.to_dict()
        assert dict(merged.tracer.kind_counts) == dict(
            expected.tracer.kind_counts
        )
        assert dict(merged.tracer.kind_seconds) == dict(
            expected.tracer.kind_seconds
        )
        assert merged.tracer.dropped_spans == expected.tracer.dropped_spans
        assert (
            merged.registry.dropped_label_sets
            == expected.registry.dropped_label_sets
        )

    def test_span_event_records_stay_in_the_worker(self):
        from repro.harness.parallel import export_telemetry_totals

        worker = Telemetry()
        _record_with_spans(worker, 1)
        merged = Telemetry()
        merge_metric_samples(merged, export_telemetry_totals(worker))
        assert merged.tracer.spans == []
        assert merged.tracer.kind_counts["service.request"] == 1

    def test_drop_counters_merge(self):
        from repro.harness.parallel import export_telemetry_totals

        worker = Telemetry()
        worker.tracer.dropped_spans = 3
        worker.registry.dropped_label_sets = 2
        merged = Telemetry()
        merge_metric_samples(merged, export_telemetry_totals(worker))
        merge_metric_samples(merged, export_telemetry_totals(worker))
        assert merged.tracer.dropped_spans == 6
        assert merged.registry.dropped_label_sets == 4

    def test_legacy_list_form_still_merges(self):
        worker = Telemetry()
        worker.counter("n").inc(5)
        merged = Telemetry()
        assert (
            merge_metric_samples(
                merged, worker.registry.to_dict()["metrics"]
            )
            == 1
        )
        [record] = merged.registry.to_dict()["metrics"]
        assert record["value"] == 5
