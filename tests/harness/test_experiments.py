"""Smoke tests for the experiment harness (small parameters).

The benchmarks run the full-size experiments; these tests pin the
harness's structure and the direction of each paper claim at a scale
that keeps the unit suite fast.
"""

import pytest

from repro.harness import (
    ablation_cleaner_policy,
    fig1_fig2_creation_traces,
    fig3_small_file,
    fig5_cleaning_rate,
    new_rig,
    recovery_comparison,
    sec31_cpu_scaling,
)
from repro.units import KIB, MIB


class TestRig:
    def test_builds_both_kinds(self):
        for kind in ("lfs", "ffs"):
            rig = new_rig(kind, total_bytes=48 * MIB)
            rig.fs.write_file("/x", b"hello")
            assert rig.fs.read_file("/x") == b"hello"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            new_rig("zfs")

    def test_speed_factor_plumbs_through(self):
        rig = new_rig("lfs", total_bytes=48 * MIB, speed_factor=4.0)
        assert rig.cpu.speed_factor == 4.0


class TestCreationTraces:
    def test_paper_shape(self):
        results = fig1_fig2_creation_traces(total_bytes=48 * MIB)
        assert results["ffs"].sync_writes == 4
        assert results["ffs"].write_requests >= 8
        assert results["lfs"].write_requests == 1
        assert results["lfs"].sync_writes == 0

    def test_trace_tables_render(self):
        results = fig1_fig2_creation_traces(total_bytes=48 * MIB)
        assert "sector" in results["ffs"].table
        assert len(results["lfs"].disk_image) == 72


class TestSmallFileDirection:
    def test_lfs_beats_ffs_on_create_delete(self):
        results = fig3_small_file(
            num_files=300, file_size=1 * KIB, total_bytes=64 * MIB
        )
        assert (
            results["lfs"].create_per_second
            > 3 * results["ffs"].create_per_second
        )
        assert (
            results["lfs"].delete_per_second
            > 3 * results["ffs"].delete_per_second
        )


class TestCleaningSweepDirection:
    def test_rate_decreases_with_utilization(self):
        points = fig5_cleaning_rate(
            (0.2, 0.6), total_bytes=48 * MIB, fill_segments=6
        )
        from repro.lfs.config import LfsConfig

        seg = LfsConfig().segment_size
        low, high = points
        assert low[0].clean_kb_per_second(seg) > high[0].clean_kb_per_second(
            seg
        )


class TestCpuScalingDirection:
    def test_lfs_scales_ffs_does_not(self):
        points = sec31_cpu_scaling(
            (1.0, 8.0), num_files=40, total_bytes=48 * MIB
        )
        lfs_speedup = (
            points[0].lfs_ms_per_create_delete
            / points[1].lfs_ms_per_create_delete
        )
        ffs_speedup = (
            points[0].ffs_ms_per_create_delete
            / points[1].ffs_ms_per_create_delete
        )
        assert lfs_speedup > 3.0
        assert ffs_speedup < 2.0


class TestRecoveryDirection:
    def test_lfs_recovers_faster(self):
        points = recovery_comparison(
            (60,), total_bytes=48 * MIB, files_after_checkpoint=10
        )
        point = points[0]
        assert point.lfs_recovery_seconds < point.ffs_fsck_seconds
        assert point.lfs_partials_replayed >= 1


class TestPolicyAblation:
    def test_all_policies_run(self):
        points = ablation_cleaner_policy(
            policies=("greedy", "random"),
            operations=1200,
            total_bytes=24 * MIB,
            segment_size=256 * KIB,
        )
        assert {point.policy for point in points} == {"greedy", "random"}
        for point in points:
            assert point.ops_per_second > 0
