"""Tests for metrics, the analytic model and report rendering."""

import pytest

from repro.analysis.metrics import PhaseTimer, speedup
from repro.analysis.report import Table, format_series
from repro.analysis.write_cost import (
    analytic_cleaning_rate,
    analytic_write_cost,
)
from repro.disk.geometry import WREN_IV
from repro.errors import InvalidArgumentError
from repro.sim.clock import SimClock
from repro.units import MIB


class TestPhaseTimer:
    def test_measures_simulated_time(self):
        clock = SimClock()
        timer = PhaseTimer(clock)
        with timer:
            clock.advance(2.0)
        assert timer.elapsed == pytest.approx(2.0)
        assert timer.rate(10) == pytest.approx(5.0)

    def test_rate_before_finish_raises(self):
        timer = PhaseTimer(SimClock())
        with pytest.raises(InvalidArgumentError):
            timer.rate(1)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")


class TestWriteCostModel:
    def test_zero_utilization_is_free(self):
        assert analytic_write_cost(0.0) == 1.0

    def test_monotonic_in_utilization(self):
        costs = [analytic_write_cost(u) for u in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert costs == sorted(costs)

    def test_classic_values(self):
        assert analytic_write_cost(0.5) == pytest.approx(4.0)
        assert analytic_write_cost(0.8) == pytest.approx(10.0)

    def test_rejects_full(self):
        with pytest.raises(InvalidArgumentError):
            analytic_write_cost(1.0)

    def test_cleaning_rate_decreases(self):
        rates = [
            analytic_cleaning_rate(u, WREN_IV, 1 * MIB)
            for u in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_cleaning_rate_zero_is_infinite(self):
        assert analytic_cleaning_rate(0.0, WREN_IV, 1 * MIB) == float("inf")


class TestReport:
    def test_table_renders_aligned(self):
        table = Table(["name", "value"], title="demo")
        table.row("alpha", 1.5).row("b", 123456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text and "123,456" in text
        # All data lines have equal width.
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.row(1)

    def test_empty_table_renders(self):
        assert "a" in Table(["a"]).render()

    def test_format_series(self):
        text = format_series(
            "fig", [(0.2, 100.0), (0.4, 50.0)], "u", "KB/s"
        )
        assert "fig" in text and "0.2" in text and "100" in text

    def test_infinity_rendered(self):
        table = Table(["x"])
        table.row(float("inf"))
        assert "inf" in table.render()
