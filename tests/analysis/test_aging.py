"""Tests for the long-run aging study."""

import pytest

from repro.analysis.aging import AgingStudy, run_aging_study
from repro.lfs.filesystem import LogStructuredFS
from repro.workloads.office import OfficeState, run_office_workload
from tests.conftest import small_lfs_config


class TestOfficeState:
    def test_population_carries_over(self, lfs):
        state = OfficeState()
        run_office_workload(
            lfs, operations=200, target_population=50, state=state
        )
        live_after_first = len(state.live)
        result = run_office_workload(
            lfs, operations=200, target_population=50, seed=1, state=state
        )
        # Population stayed bounded (files kept churning, not piling up).
        assert result.final_live_files <= 50
        assert state.counter > 0
        assert live_after_first > 0

    def test_no_name_collisions_across_epochs(self, lfs):
        state = OfficeState()
        for epoch in range(3):
            run_office_workload(
                lfs,
                operations=150,
                target_population=40,
                seed=epoch,
                state=state,
            )
        # Every live file is readable (no create-over-existing errors).
        for name in state.live:
            assert lfs.exists(name)


class TestAgingStudy:
    @pytest.fixture
    def study_and_fs(self, disk, cpu):
        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        study = run_aging_study(
            fs, epochs=4, operations_per_epoch=400, target_population=120
        )
        return study, fs

    def test_samples_per_epoch(self, study_and_fs):
        study, _fs = study_and_fs
        assert len(study.samples) == 4
        assert [sample.epoch for sample in study.samples] == [0, 1, 2, 3]
        totals = [sample.operations_total for sample in study.samples]
        assert totals == sorted(totals)

    def test_metrics_sane(self, study_and_fs):
        study, fs = study_and_fs
        for sample in study.samples:
            assert sample.write_cost > 0
            assert 0.0 <= sample.cleaner_write_fraction <= 1.0
            assert 0.0 <= sample.live_fraction <= 1.0
            assert sample.clean_segments <= fs.layout.num_segments
            assert len(sample.utilization_histogram) == 10

    def test_fs_still_consistent_after_aging(self, study_and_fs):
        from repro.lfs.verify import verify_lfs

        _study, fs = study_and_fs
        fs.unmount()
        report = verify_lfs(fs.disk.device)
        assert report.consistent, report.errors

    def test_steady_state_helpers(self):
        study = AgingStudy()
        assert not study.converged()
        assert study.steady_state_write_cost() == 0.0

    def test_write_cost_bounded(self, study_and_fs):
        # The paper's open question: does cleaning overhead stay sane?
        study, _fs = study_and_fs
        assert study.steady_state_write_cost() < 4.0
