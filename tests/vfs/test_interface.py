"""UNIX-semantics tests run against BOTH storage managers.

The paper keeps file system semantics identical between LFS and FFS
(§4.2); the parametrized ``anyfs`` fixture enforces that symmetry.
"""

import pytest

from repro.common.inode import FileType
from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    InvalidArgumentError,
    IsADirectoryError_,
    NotADirectoryError_,
    StaleHandleError,
)


class TestCreateOpenUnlink:
    def test_create_then_read_back(self, anyfs):
        with anyfs.create("/f") as handle:
            handle.write(b"hello")
        assert anyfs.read_file("/f") == b"hello"

    def test_create_existing_raises(self, anyfs):
        anyfs.create("/f").close()
        with pytest.raises(FileExistsError_):
            anyfs.create("/f")

    def test_open_missing_raises(self, anyfs):
        with pytest.raises(FileNotFoundError_):
            anyfs.open("/missing")

    def test_open_directory_raises(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(IsADirectoryError_):
            anyfs.open("/d")

    def test_unlink_missing_raises(self, anyfs):
        with pytest.raises(FileNotFoundError_):
            anyfs.unlink("/missing")

    def test_unlink_directory_raises(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(IsADirectoryError_):
            anyfs.unlink("/d")

    def test_unlink_removes(self, anyfs):
        anyfs.write_file("/f", b"x")
        anyfs.unlink("/f")
        assert not anyfs.exists("/f")

    def test_handle_after_delete_is_stale(self, anyfs):
        handle = anyfs.create("/f")
        handle.write(b"x")
        anyfs.unlink("/f")
        with pytest.raises(StaleHandleError):
            handle.pread(0, 1)

    def test_empty_file(self, anyfs):
        anyfs.create("/empty").close()
        assert anyfs.read_file("/empty") == b""
        assert anyfs.stat("/empty").size == 0


class TestDirectories:
    def test_mkdir_listdir(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.write_file("/d/b", b"")
        anyfs.write_file("/d/a", b"")
        assert anyfs.listdir("/d") == ["a", "b"]
        assert anyfs.listdir("/") == ["d"]

    def test_nested_directories(self, anyfs):
        anyfs.mkdir("/a")
        anyfs.mkdir("/a/b")
        anyfs.mkdir("/a/b/c")
        anyfs.write_file("/a/b/c/deep", b"deep")
        assert anyfs.read_file("/a/b/c/deep") == b"deep"

    def test_mkdir_missing_parent_raises(self, anyfs):
        with pytest.raises(FileNotFoundError_):
            anyfs.mkdir("/no/such")

    def test_mkdir_existing_raises(self, anyfs):
        anyfs.mkdir("/d")
        with pytest.raises(FileExistsError_):
            anyfs.mkdir("/d")

    def test_rmdir_empty(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.rmdir("/d")
        assert not anyfs.exists("/d")

    def test_rmdir_nonempty_raises(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.write_file("/d/f", b"")
        with pytest.raises(DirectoryNotEmptyError):
            anyfs.rmdir("/d")

    def test_rmdir_file_raises(self, anyfs):
        anyfs.write_file("/f", b"")
        with pytest.raises(NotADirectoryError_):
            anyfs.rmdir("/f")

    def test_path_through_file_raises(self, anyfs):
        anyfs.write_file("/f", b"")
        with pytest.raises((NotADirectoryError_, FileNotFoundError_)):
            anyfs.stat("/f/child")

    def test_nlink_counts(self, anyfs):
        assert anyfs.stat("/").nlink == 2
        anyfs.mkdir("/d")
        assert anyfs.stat("/").nlink == 3
        assert anyfs.stat("/d").nlink == 2
        anyfs.rmdir("/d")
        assert anyfs.stat("/").nlink == 2

    def test_many_entries_span_blocks(self, anyfs):
        anyfs.mkdir("/big")
        names = [f"file-with-a-long-name-{i:04d}" for i in range(600)]
        for name in names:
            anyfs.create(f"/big/{name}").close()
        assert anyfs.listdir("/big") == sorted(names)
        # Entry removal from middle blocks works too.
        for name in names[::2]:
            anyfs.unlink(f"/big/{name}")
        assert len(anyfs.listdir("/big")) == 300


class TestRename:
    def test_same_directory(self, anyfs):
        anyfs.write_file("/a", b"1")
        anyfs.rename("/a", "/b")
        assert not anyfs.exists("/a")
        assert anyfs.read_file("/b") == b"1"

    def test_across_directories(self, anyfs):
        anyfs.mkdir("/d1")
        anyfs.mkdir("/d2")
        anyfs.write_file("/d1/f", b"move me")
        anyfs.rename("/d1/f", "/d2/g")
        assert anyfs.read_file("/d2/g") == b"move me"
        assert anyfs.listdir("/d1") == []

    def test_overwrites_existing_file(self, anyfs):
        anyfs.write_file("/src", b"new")
        anyfs.write_file("/dst", b"old")
        anyfs.rename("/src", "/dst")
        assert anyfs.read_file("/dst") == b"new"
        assert not anyfs.exists("/src")

    def test_directory_rename(self, anyfs):
        anyfs.mkdir("/old")
        anyfs.write_file("/old/f", b"x")
        anyfs.rename("/old", "/new")
        assert anyfs.read_file("/new/f") == b"x"

    def test_dir_move_updates_nlink(self, anyfs):
        anyfs.mkdir("/a")
        anyfs.mkdir("/b")
        anyfs.mkdir("/a/sub")
        anyfs.rename("/a/sub", "/b/sub")
        assert anyfs.stat("/a").nlink == 2
        assert anyfs.stat("/b").nlink == 3

    def test_missing_source_raises(self, anyfs):
        with pytest.raises(FileNotFoundError_):
            anyfs.rename("/nope", "/dst")

    def test_target_directory_raises(self, anyfs):
        anyfs.write_file("/f", b"")
        anyfs.mkdir("/d")
        with pytest.raises(FileExistsError_):
            anyfs.rename("/f", "/d")


class TestReadWriteSemantics:
    def test_pread_pwrite_offsets(self, anyfs):
        with anyfs.create("/f") as handle:
            handle.pwrite(0, b"0123456789")
            assert handle.pread(3, 4) == b"3456"

    def test_read_past_eof_truncated(self, anyfs):
        anyfs.write_file("/f", b"short")
        with anyfs.open("/f") as handle:
            assert handle.pread(3, 100) == b"rt"
            assert handle.pread(100, 10) == b""

    def test_overwrite_middle(self, anyfs):
        anyfs.write_file("/f", b"a" * 10000)
        with anyfs.open("/f") as handle:
            handle.pwrite(5000, b"B" * 100)
        data = anyfs.read_file("/f")
        assert data[4999:5101] == b"a" + b"B" * 100 + b"a"
        assert len(data) == 10000

    def test_extend_via_write(self, anyfs):
        anyfs.write_file("/f", b"start")
        with anyfs.open("/f") as handle:
            handle.pwrite(5, b" end")
        assert anyfs.read_file("/f") == b"start end"

    def test_truncate_shrink(self, anyfs):
        anyfs.write_file("/f", b"x" * 10000)
        with anyfs.open("/f") as handle:
            handle.truncate(100)
        assert anyfs.read_file("/f") == b"x" * 100

    def test_truncate_then_extend_reads_zeros(self, anyfs):
        anyfs.write_file("/f", b"y" * 5000)
        with anyfs.open("/f") as handle:
            handle.truncate(100)
            handle.pwrite(200, b"z")
        data = anyfs.read_file("/f")
        assert data[100:200] == b"\x00" * 100
        assert data[:100] == b"y" * 100

    def test_truncate_grow(self, anyfs):
        anyfs.write_file("/f", b"ab")
        with anyfs.open("/f") as handle:
            handle.truncate(10)
        assert anyfs.read_file("/f") == b"ab" + b"\x00" * 8

    def test_sequential_handle_io(self, anyfs):
        with anyfs.create("/f") as handle:
            handle.write(b"one")
            handle.write(b"two")
        with anyfs.open("/f") as handle:
            assert handle.read(3) == b"one"
            assert handle.read() == b"two"

    def test_seek(self, anyfs):
        anyfs.write_file("/f", b"0123456789")
        with anyfs.open("/f") as handle:
            handle.seek(5)
            assert handle.read(2) == b"56"
            with pytest.raises(InvalidArgumentError):
                handle.seek(-1)

    def test_stat_fields(self, anyfs):
        anyfs.clock.advance(1.0)
        anyfs.write_file("/f", b"abc")
        result = anyfs.stat("/f")
        assert result.size == 3
        assert result.ftype is FileType.REGULAR
        assert result.nlink == 1
        assert result.mtime > 0

    def test_write_file_replaces(self, anyfs):
        anyfs.write_file("/f", b"old contents are longer")
        anyfs.write_file("/f", b"new")
        assert anyfs.read_file("/f") == b"new"

    def test_closed_handle_rejected(self, anyfs):
        handle = anyfs.create("/f")
        handle.close()
        with pytest.raises(StaleHandleError):
            handle.write(b"x")

    def test_block_boundary_writes(self, anyfs):
        bs = anyfs.block_size
        payload = b"A" * (bs - 1) + b"B" * 2 + b"C" * (bs - 1)
        anyfs.write_file("/f", payload)
        anyfs.sync()
        anyfs.flush_caches()
        assert anyfs.read_file("/f") == payload
