"""Unit tests for path handling."""

import pytest

from repro.errors import InvalidArgumentError
from repro.vfs.path import dirname_basename, join, normalize, split_path


class TestSplitPath:
    def test_root(self):
        assert split_path("/") == []

    def test_simple(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_collapses_slashes_and_dots(self):
        assert split_path("/a//b/./c/") == ["a", "b", "c"]

    def test_parent_references(self):
        assert split_path("/a/b/../c") == ["a", "c"]

    def test_parent_above_root_clamps(self):
        assert split_path("/../a") == ["a"]

    def test_relative_rejected(self):
        with pytest.raises(InvalidArgumentError):
            split_path("a/b")

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            split_path("")


class TestNormalize:
    def test_examples(self):
        assert normalize("/a/../b//c/.") == "/b/c"
        assert normalize("/") == "/"


class TestJoin:
    def test_basic(self):
        assert join("/a", "b", "c") == "/a/b/c"

    def test_root_base(self):
        assert join("/", "x") == "/x"

    def test_strips_extra_slashes(self):
        assert join("/a/", "/b/") == "/a/b"


class TestDirnameBasename:
    def test_basic(self):
        assert dirname_basename("/a/b/c") == ("/a/b", "c")

    def test_top_level(self):
        assert dirname_basename("/file") == ("/", "file")

    def test_root_rejected(self):
        with pytest.raises(InvalidArgumentError):
            dirname_basename("/")
