"""Tests for the statvfs capacity report (both systems)."""



class TestStatvfs:
    def test_fresh_fs_mostly_free(self, anyfs):
        info = anyfs.statvfs()
        assert info.total_bytes > 0
        assert info.free_bytes + info.used_bytes == info.total_bytes
        assert info.used_fraction < 0.05
        # Only the root directory exists.
        assert info.used_files == 1

    def test_usage_grows_with_data(self, anyfs):
        before = anyfs.statvfs()
        anyfs.write_file("/f", b"u" * 200_000)
        anyfs.sync()
        after = anyfs.statvfs()
        assert after.used_bytes >= before.used_bytes + 200_000
        assert after.used_files == 2

    def test_usage_shrinks_on_delete(self, anyfs):
        anyfs.write_file("/f", b"u" * 200_000)
        anyfs.sync()
        used = anyfs.statvfs().used_bytes
        anyfs.unlink("/f")
        anyfs.sync()
        assert anyfs.statvfs().used_bytes < used
        assert anyfs.statvfs().used_files == 1

    def test_file_count_tracks_population(self, anyfs):
        for i in range(10):
            anyfs.create(f"/f{i}").close()
        anyfs.mkdir("/d")
        assert anyfs.statvfs().used_files == 12

    def test_total_files_positive(self, anyfs):
        info = anyfs.statvfs()
        assert info.total_files > info.used_files

    def test_dirty_cache_counts_as_used_in_lfs(self, lfs):
        lfs.write_file("/pending", b"p" * 100_000)  # still in cache
        info = lfs.statvfs()
        assert info.used_bytes >= 100_000
