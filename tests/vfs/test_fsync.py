"""fsync semantics on both storage managers."""

import pytest

from repro.ffs.filesystem import FastFileSystem
from repro.ffs.fsck import fsck
from repro.lfs.filesystem import LogStructuredFS
from tests.conftest import small_ffs_config, small_lfs_config


class TestFsyncSemantics:
    def test_fsynced_data_survives_crash_lfs(self, disk, cpu):
        fs = LogStructuredFS.mkfs(disk, cpu, small_lfs_config())
        fs.checkpoint()
        with fs.create("/durable") as handle:
            handle.write(b"must survive" * 100)
            handle.fsync()
        fs.crash()
        disk.revive()
        again = LogStructuredFS.mount(disk, cpu, small_lfs_config())
        assert again.read_file("/durable") == b"must survive" * 100

    def test_fsynced_data_survives_crash_ffs(self, disk, cpu):
        fs = FastFileSystem.mkfs(disk, cpu, small_ffs_config())
        with fs.create("/durable") as handle:
            handle.write(b"kept" * 500)
            handle.fsync()
        fs.crash()
        disk.revive()
        fsck(disk)
        again = FastFileSystem.mount(disk, cpu, small_ffs_config())
        assert again.read_file("/durable") == b"kept" * 500

    def test_fsync_blocks_the_caller(self, anyfs):
        with anyfs.create("/f") as handle:
            handle.write(b"w" * 50000)
            before = anyfs.clock.now()
            handle.fsync()
            assert anyfs.clock.now() > before

    def test_ffs_fsync_writes_only_that_file(self, ffs):
        ffs.write_file("/other", b"o" * 8192 * 4)  # stays dirty
        with ffs.create("/mine") as handle:
            handle.write(b"m" * 8192)
            sync_point = ffs.disk.stats.writes
            handle.fsync()
        fsync_writes = ffs.disk.stats.writes - sync_point
        # One data block + the inode block: /other's blocks untouched.
        assert fsync_writes == 2
        assert ffs.cache.dirty_bytes >= 4 * 8192  # /other still dirty

    def test_fsync_on_closed_handle_rejected(self, anyfs):
        from repro.errors import StaleHandleError

        handle = anyfs.create("/f")
        handle.close()
        with pytest.raises(StaleHandleError):
            handle.fsync()

    def test_fsync_clean_file_is_noop_ish(self, anyfs):
        anyfs.write_file("/f", b"x" * 1000)
        anyfs.sync()
        with anyfs.open("/f") as handle:
            handle.fsync()  # must not raise
        assert anyfs.read_file("/f") == b"x" * 1000
