"""Public API contract.

Downstream users import from ``repro`` directly; these tests pin the
exported surface so refactors cannot silently break it.
"""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points(self):
        assert callable(repro.make_lfs)
        assert callable(repro.make_ffs)
        assert callable(repro.fsck)
        assert repro.LogStructuredFS.mkfs
        assert repro.LogStructuredFS.mount
        assert repro.FastFileSystem.mkfs
        assert repro.FastFileSystem.mount

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_lfs_package_exports(self):
        from repro import lfs

        for name in lfs.__all__:
            assert hasattr(lfs, name), name

    def test_paper_constants_exposed(self):
        # The WREN IV is the paper's disk; its parameters are public.
        assert repro.WREN_IV.bandwidth == pytest.approx(1.3 * 1024 * 1024)


class TestConvenienceConstructors:
    def test_make_lfs_wires_simulation(self):
        fs = repro.make_lfs(total_bytes=32 * 1024 * 1024)
        assert fs.clock is fs.cpu.clock
        assert fs.disk.clock is fs.clock
        fs.write_file("/x", b"api")
        assert fs.read_file("/x") == b"api"

    def test_make_ffs_wires_simulation(self):
        fs = repro.make_ffs(total_bytes=32 * 1024 * 1024)
        fs.write_file("/x", b"api")
        assert fs.read_file("/x") == b"api"

    def test_make_lfs_speed_factor(self):
        fs = repro.make_lfs(
            total_bytes=32 * 1024 * 1024, speed_factor=4.0
        )
        assert fs.cpu.speed_factor == 4.0

    def test_make_lfs_custom_config(self):
        config = repro.LfsConfig(segment_size=512 * 1024)
        fs = repro.make_lfs(total_bytes=32 * 1024 * 1024, config=config)
        assert fs.config.segment_size == 512 * 1024

    def test_trace_attachment(self):
        trace = repro.TraceRecorder()
        fs = repro.make_lfs(total_bytes=32 * 1024 * 1024, trace=trace)
        fs.write_file("/x", b"t" * 5000)
        fs.sync()
        assert trace.writes()


class TestStorageManagerContract:
    def test_both_systems_satisfy_abc(self):
        lfs = repro.make_lfs(total_bytes=32 * 1024 * 1024)
        ffs = repro.make_ffs(total_bytes=32 * 1024 * 1024)
        assert isinstance(lfs, repro.StorageManager)
        assert isinstance(ffs, repro.StorageManager)

    def test_abstract_methods_all_implemented(self):
        import inspect

        abstract = {
            name
            for name, member in inspect.getmembers(repro.StorageManager)
            if getattr(member, "__isabstractmethod__", False)
        }
        for cls in (repro.LogStructuredFS, repro.FastFileSystem):
            for name in abstract:
                member = getattr(cls, name)
                assert not getattr(
                    member, "__isabstractmethod__", False
                ), f"{cls.__name__}.{name} left abstract"
