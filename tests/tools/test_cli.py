"""End-to-end tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import main


@pytest.fixture
def image(tmp_path):
    return str(tmp_path / "disk.img")


def run_cli(argv, stdin: bytes = b"") -> "tuple[int, str]":
    old_stdin = sys.stdin
    sys.stdin = io.TextIOWrapper(io.BytesIO(stdin))
    try:
        import contextlib

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(argv)
        return code, out.getvalue()
    finally:
        sys.stdin = old_stdin


class TestMkfsAndBasicOps:
    @pytest.mark.parametrize("fs_kind", ["lfs", "ffs"])
    def test_full_file_lifecycle(self, image, fs_kind):
        code, _out = run_cli(
            ["mkfs", image, "--fs", fs_kind, "--size", "48M"]
        )
        assert code == 0

        code, _out = run_cli(["mkdir", image, "/docs"])
        assert code == 0

        code, _out = run_cli(
            ["write", image, "/docs/hello.txt"], stdin=b"hello, image!"
        )
        assert code == 0

        code, out = run_cli(["ls", image, "/docs"])
        assert code == 0
        assert "hello.txt" in out

        code, out = run_cli(["cat", image, "/docs/hello.txt"])
        assert code == 0

        code, _out = run_cli(["rm", image, "/docs/hello.txt"])
        assert code == 0
        code, out = run_cli(["ls", image, "/docs"])
        assert "hello.txt" not in out

    def test_cat_roundtrip_bytes(self, image, capfdbinary):
        run_cli(["mkfs", image, "--size", "48M"])
        payload = bytes(range(256)) * 3
        run_cli(["write", image, "/bin.dat"], stdin=payload)
        # cat writes raw bytes to the real stdout buffer.
        code = main(["cat", image, "/bin.dat"])
        assert code == 0
        captured = capfdbinary.readouterr()
        assert payload in captured.out

    def test_size_parsing(self, image):
        code, out = run_cli(["mkfs", image, "--size", "32M"])
        assert code == 0
        assert str(32 * 1024 * 1024) in out


class TestInspect:
    def test_inspect_lfs(self, image):
        run_cli(["mkfs", image, "--fs", "lfs", "--size", "48M"])
        code, out = run_cli(["inspect", image])
        assert code == 0
        assert "LFS image" in out

    def test_inspect_ffs(self, image):
        run_cli(["mkfs", image, "--fs", "ffs", "--size", "48M"])
        code, out = run_cli(["inspect", image])
        assert code == 0
        assert "FFS image" in out

    def test_inspect_garbage(self, tmp_path):
        path = str(tmp_path / "junk.img")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 4096)
        code, out = run_cli(["inspect", path])
        assert code == 0
        assert "unrecognized" in out


class TestFsck:
    def test_fsck_clean_ffs(self, image):
        run_cli(["mkfs", image, "--fs", "ffs", "--size", "48M"])
        code, out = run_cli(["fsck", image])
        assert "inodes scanned" in out

    def test_fsck_rejects_lfs(self, image):
        run_cli(["mkfs", image, "--fs", "lfs", "--size", "48M"])
        code, out = run_cli(["fsck", image])
        assert code == 1


class TestVerify:
    def test_verify_clean_lfs(self, image):
        run_cli(["mkfs", image, "--fs", "lfs", "--size", "48M"])
        run_cli(["write", image, "/f"], stdin=b"verified" * 100)
        code, out = run_cli(["verify", image])
        assert code == 0
        assert "clean" in out

    def test_verify_rejects_ffs(self, image):
        run_cli(["mkfs", image, "--fs", "ffs", "--size", "48M"])
        code, _out = run_cli(["verify", image])
        assert code == 1


class TestFigCommand:
    def test_fig1_prints_traces(self):
        code, out = run_cli(["fig", "1"])
        assert code == 0
        assert "lfs" in out and "ffs" in out
        assert "sector" in out

    def test_fig_scaling_prints_table(self):
        code, out = run_cli(["fig", "scaling"])
        assert code == 0
        assert "lfs ms/op" in out
        assert "16x" in out

    def test_unknown_fig_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["fig", "99"])


class TestTelemetry:
    def test_fig5_telemetry_export(self, tmp_path):
        """The acceptance bar: the cleaning experiment's JSONL stream
        covers at least 6 metric names and 4 span kinds."""
        from repro.obs import read_jsonl

        out = str(tmp_path / "fig5.jsonl")
        code, stdout = run_cli(["fig", "5", "--telemetry", out])
        assert code == 0
        assert f"-> {out}" in stdout
        records = read_jsonl(out)
        summary = records[-1]
        assert summary["type"] == "summary"
        assert len(summary["metric_names"]) >= 6
        assert len(summary["span_kinds"]) >= 4
        # Every instrumented layer contributes at least one series.
        prefixes = {name.split(".")[0] for name in summary["metric_names"]}
        assert {"disk", "cache", "cleaner", "fs", "checkpoint"} <= prefixes

    def test_stats_command_reports_mount_metrics(self, image, tmp_path):
        from repro.obs import read_jsonl

        run_cli(["mkfs", image, "--fs", "lfs", "--size", "48M"])
        run_cli(["write", image, "/f"], stdin=b"observed" * 64)
        out = str(tmp_path / "stats.jsonl")
        code, stdout = run_cli(["stats", image, "--telemetry", out])
        assert code == 0
        assert f"== mount {image} ==" in stdout
        assert "disk.reads" in stdout
        assert "recovery.roll_forward" in stdout
        assert "-- disk --" in stdout
        records = read_jsonl(out)
        assert records[-1]["type"] == "summary"
        assert "disk.reads" in records[-1]["metric_names"]

    def test_fig_without_flag_writes_no_telemetry(self):
        code, stdout = run_cli(["fig", "1"])
        assert code == 0
        assert "telemetry:" not in stdout


class TestErrors:
    def test_missing_file_error(self, image):
        run_cli(["mkfs", image, "--size", "48M"])
        old_stderr = sys.stderr
        sys.stderr = io.StringIO()
        try:
            code = main(["cat", image, "/no/such/file"])
        finally:
            err = sys.stderr.getvalue()
            sys.stderr = old_stderr
        assert code == 1
        assert "error" in err

    def test_persistence_across_invocations(self, image):
        run_cli(["mkfs", image, "--size", "48M"])
        run_cli(["write", image, "/persist"], stdin=b"durable")
        # A completely fresh process context would reload from the file;
        # here we at least verify the image file itself changed.
        code, out = run_cli(["cat", image, "/persist"])
        assert code == 0


class TestServeSim:
    def test_serve_sim_reports_and_saves_image(self, image, tmp_path):
        code, out = run_cli(
            [
                "serve-sim",
                "--clients", "4",
                "--seed", "5",
                "--requests-per-client", "10",
                "--image", image,
            ]
        )
        assert code == 0
        assert "completed, 0 dropped" in out
        assert "group commit" in out

        # The saved image is a valid, verifiable LFS.
        code, out = run_cli(["verify", image])
        assert code == 0
        assert "clean" in out

    def test_serve_sim_telemetry_export(self, tmp_path):
        out_path = str(tmp_path / "svc.jsonl")
        code, out = run_cli(
            [
                "serve-sim",
                "--clients", "2",
                "--requests-per-client", "5",
                "--telemetry", out_path,
            ]
        )
        assert code == 0
        import json

        names = set()
        with open(out_path) as handle:
            for line in handle:
                names.add(json.loads(line).get("name", ""))
        assert any(name.startswith("service.") for name in names)
        assert "cleaner.clean_reserve" in names
