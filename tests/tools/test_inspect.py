"""Tests for raw-image inspection."""


from repro.tools.inspect import describe_ffs, describe_image, describe_lfs, identify


class TestIdentify:
    def test_lfs(self, lfs):
        lfs.unmount()
        assert identify(lfs.disk.device) == "lfs"

    def test_ffs(self, ffs):
        ffs.unmount()
        assert identify(ffs.disk.device) == "ffs"

    def test_blank(self, disk):
        assert identify(disk.device) is None
        assert "unrecognized" in describe_image(disk.device)


class TestDescribeLfs:
    def test_fresh_image(self, lfs):
        lfs.unmount()
        text = describe_lfs(lfs.disk.device)
        assert "LFS image" in text
        assert "checkpoint 0" in text
        assert "utilization map" in text

    def test_reports_live_data(self, lfs):
        lfs.write_file("/f", b"x" * 100000)
        lfs.unmount()
        text = describe_image(lfs.disk.device)
        assert "live data" in text
        assert "0.0 B" not in text.split("live data")[1].splitlines()[0]

    def test_reports_log_tail(self, lfs):
        lfs.checkpoint()
        lfs.write_file("/tail", b"t" * 5000)
        lfs.sync()
        lfs.disk.drain()
        text = describe_lfs(lfs.disk.device)
        assert "seq " in text  # at least one parsed tail summary

    def test_no_tail_after_clean_unmount(self, lfs):
        lfs.write_file("/f", b"y")
        lfs.unmount()
        text = describe_lfs(lfs.disk.device)
        assert "no writes after the last checkpoint" in text

    def test_dirty_segments_in_map(self, lfs):
        for i in range(50):
            lfs.write_file(f"/f{i}", b"z" * 8192)
        lfs.unmount()
        text = describe_lfs(lfs.disk.device)
        map_lines = text.split("utilization map")[1]
        assert any(ch.isdigit() for ch in map_lines)


class TestDescribeFfs:
    def test_fresh_image(self, ffs):
        ffs.unmount()
        text = describe_ffs(ffs.disk.device)
        assert "FFS image" in text
        assert "cylinder groups" in text
        assert "cg 0:" in text

    def test_usage_counts_move(self, ffs):
        before = describe_ffs_used(ffs)
        ffs.write_file("/f", b"x" * 8192 * 4)
        after = describe_ffs_used(ffs)
        assert after > before


def describe_ffs_used(ffs) -> int:
    """Total used data blocks parsed back out of the description."""
    ffs.sync()
    text = describe_ffs(ffs.disk.device)
    total = 0
    for line in text.splitlines():
        if "data blocks used" in line:
            used = line.split("inodes,")[1].split("/")[0].strip()
            total += int(used)
    return total
