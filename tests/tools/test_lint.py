"""Tests for the dependency-free linter, focused on the OBS001 rule:
telemetry-instrumented modules must not bypass the registry with bare
``print``."""

from __future__ import annotations

import os

from repro.tools.lint import lint_file, main


def write_module(tmp_path, relpath: str, source: str) -> str:
    path = tmp_path / relpath
    os.makedirs(path.parent, exist_ok=True)
    path.write_text(source)
    return str(path)


INSTRUMENTED = """\
from repro.obs import Telemetry

def report(telemetry: Telemetry) -> None:
    print("cleaned 5 segments")
"""


class TestObsPrintBypass:
    def test_flags_print_in_instrumented_lfs_module(self, tmp_path):
        path = write_module(tmp_path, "repro/lfs/cleaner_ext.py", INSTRUMENTED)
        findings = lint_file(path)
        assert any("OBS001" in message for _, _, message in findings)

    def test_flags_print_in_instrumented_cache_module(self, tmp_path):
        path = write_module(tmp_path, "repro/cache/extra.py", INSTRUMENTED)
        findings = lint_file(path)
        assert any("OBS001" in message for _, _, message in findings)

    def test_ignores_module_that_does_not_import_obs(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro/lfs/plain.py",
            'def debug():\n    print("not instrumented")\n',
        )
        assert not any("OBS001" in m for _, _, m in lint_file(path))

    def test_ignores_print_outside_instrumented_dirs(self, tmp_path):
        path = write_module(tmp_path, "repro/tools/cli_ext.py", INSTRUMENTED)
        assert not any("OBS001" in m for _, _, m in lint_file(path))

    def test_submodule_import_counts_as_instrumented(self, tmp_path):
        source = (
            "from repro.obs.registry import MetricsRegistry\n"
            'print("boot")\n'
        )
        path = write_module(tmp_path, "repro/lfs/booted.py", source)
        assert any("OBS001" in m for _, _, m in lint_file(path))

    def test_noqa_suppresses_the_finding(self, tmp_path):
        source = (
            "from repro.obs import Telemetry\n"
            'print("intentional")  # noqa\n'
        )
        path = write_module(tmp_path, "repro/lfs/waived.py", source)
        assert not any("OBS001" in m for _, _, m in lint_file(path))


BROAD_EXCEPT = """\
def load():
    try:
        return parse()
    except Exception:
        return None
"""


class TestRecoveryBroadExcept:
    def test_flags_except_exception_in_recovery(self, tmp_path):
        path = write_module(tmp_path, "repro/lfs/recovery.py", BROAD_EXCEPT)
        assert any("FAULT001" in m for _, _, m in lint_file(path))

    def test_flags_bare_except_in_checkpoint(self, tmp_path):
        source = "try:\n    x = 1\nexcept:\n    pass\n"
        path = write_module(tmp_path, "repro/lfs/checkpoint.py", source)
        assert any("FAULT001" in m for _, _, m in lint_file(path))

    def test_flags_broad_member_of_tuple(self, tmp_path):
        source = (
            "try:\n"
            "    x = 1\n"
            "except (ValueError, BaseException):\n"
            "    pass\n"
        )
        path = write_module(tmp_path, "repro/lfs/recovery.py", source)
        assert any("FAULT001" in m for _, _, m in lint_file(path))

    def test_typed_except_is_fine(self, tmp_path):
        source = (
            "from repro.errors import CorruptionError\n"
            "try:\n"
            "    x = 1\n"
            "except (CorruptionError, ValueError):\n"
            "    pass\n"
        )
        path = write_module(tmp_path, "repro/lfs/recovery.py", source)
        assert not any("FAULT001" in m for _, _, m in lint_file(path))

    def test_other_modules_may_catch_broadly(self, tmp_path):
        path = write_module(tmp_path, "repro/faults/campaign.py", BROAD_EXCEPT)
        assert not any("FAULT001" in m for _, _, m in lint_file(path))

    def test_noqa_suppresses_the_finding(self, tmp_path):
        source = (
            "try:\n"
            "    x = 1\n"
            "except Exception:  # noqa\n"
            "    pass\n"
        )
        path = write_module(tmp_path, "repro/lfs/recovery.py", source)
        assert not any("FAULT001" in m for _, _, m in lint_file(path))


class TestChaosBroadExcept:
    # FAULT002: the crash-under-load modules must keep injected
    # crashes (CrashSignal) distinguishable from real defects, so a
    # broad handler that would swallow both is banned.

    def test_flags_except_exception_in_chaos(self, tmp_path):
        path = write_module(tmp_path, "repro/faults/chaos.py", BROAD_EXCEPT)
        assert any("FAULT002" in m for _, _, m in lint_file(path))

    def test_flags_bare_except_in_scheduler(self, tmp_path):
        source = "try:\n    x = 1\nexcept:\n    pass\n"
        path = write_module(tmp_path, "repro/service/scheduler.py", source)
        assert any("FAULT002" in m for _, _, m in lint_file(path))

    def test_typed_except_is_fine(self, tmp_path):
        source = (
            "from repro.errors import ReproError\n"
            "try:\n"
            "    x = 1\n"
            "except ReproError:\n"
            "    pass\n"
        )
        path = write_module(tmp_path, "repro/faults/chaos.py", source)
        assert not any("FAULT002" in m for _, _, m in lint_file(path))

    def test_other_modules_unaffected(self, tmp_path):
        path = write_module(tmp_path, "repro/faults/campaign.py", BROAD_EXCEPT)
        assert not any("FAULT002" in m for _, _, m in lint_file(path))

    def test_noqa_suppresses_the_finding(self, tmp_path):
        source = (
            "try:\n"
            "    x = 1\n"
            "except Exception:  # noqa: FAULT002\n"
            "    pass\n"
        )
        path = write_module(tmp_path, "repro/faults/chaos.py", source)
        assert not any("FAULT002" in m for _, _, m in lint_file(path))


class TestRepoIsClean:
    def test_src_tests_benchmarks_lint_clean(self, capsys):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        paths = [
            os.path.join(repo_root, name)
            for name in ("src", "tests", "benchmarks")
        ]
        assert main(paths) == 0


class TestServiceWallClock:
    def test_flags_time_time_call(self, tmp_path):
        source = "import time\n\ndef now():\n    return time.time()\n"
        path = write_module(tmp_path, "repro/service/ext.py", source)
        assert any("SVC001" in m for _, _, m in lint_file(path))

    def test_flags_time_sleep_call(self, tmp_path):
        source = "import time\n\ndef backoff():\n    time.sleep(0.1)\n"
        path = write_module(tmp_path, "repro/service/ext.py", source)
        assert any("SVC001" in m for _, _, m in lint_file(path))

    def test_flags_from_time_import(self, tmp_path):
        source = "from time import sleep\n"
        path = write_module(tmp_path, "repro/service/ext.py", source)
        assert any("SVC001" in m for _, _, m in lint_file(path))

    def test_flags_wall_clock_in_cluster_layer(self, tmp_path):
        source = "import time\n\ndef now():\n    return time.time()\n"
        path = write_module(tmp_path, "repro/cluster/ext.py", source)
        assert any("SVC001" in m for _, _, m in lint_file(path))

    def test_ignores_wall_clock_outside_service(self, tmp_path):
        source = "import time\n\ndef now():\n    return time.time()\n"
        path = write_module(tmp_path, "repro/harness/ext.py", source)
        assert not any("SVC001" in m for _, _, m in lint_file(path))

    def test_ignores_simulated_time_use(self, tmp_path):
        source = (
            "def schedule(clock, fn):\n"
            "    clock.call_at(clock.now() + 1.0, fn)\n"
        )
        path = write_module(tmp_path, "repro/service/ok.py", source)
        assert not any("SVC001" in m for _, _, m in lint_file(path))

    def test_noqa_suppresses_the_finding(self, tmp_path):
        source = "import time\n\nboot = time.time()  # noqa\n"
        path = write_module(tmp_path, "repro/service/ext.py", source)
        assert not any("SVC001" in m for _, _, m in lint_file(path))


class TestHotPathAllocs:
    def test_flags_bytes_copy_in_disk_module(self, tmp_path):
        source = "def snap(view):\n    return bytes(view)\n"
        path = write_module(tmp_path, "repro/disk/ext.py", source)
        assert any("ALLOC001" in m for _, _, m in lint_file(path))

    def test_flags_join_in_segment_writer(self, tmp_path):
        source = "def assemble(parts):\n    return b''.join(parts)\n"
        path = write_module(tmp_path, "repro/lfs/segments.py", source)
        assert any("ALLOC001" in m for _, _, m in lint_file(path))

    def test_empty_bytes_constructor_is_fine(self, tmp_path):
        source = "def zeros(n):\n    return bytes(n) * 0 or bytes()\n"
        path = write_module(tmp_path, "repro/lfs/other.py", source)
        assert not any("ALLOC001" in m for _, _, m in lint_file(path))

    def test_ignores_copies_outside_hot_paths(self, tmp_path):
        source = "def snap(view):\n    return bytes(view)\n"
        path = write_module(tmp_path, "repro/cache/ext.py", source)
        assert not any("ALLOC001" in m for _, _, m in lint_file(path))

    def test_alloc_ok_comment_suppresses_the_finding(self, tmp_path):
        source = (
            "def undo(view):\n"
            "    return bytes(view)  # alloc-ok: crash snapshot\n"
        )
        path = write_module(tmp_path, "repro/disk/ext.py", source)
        assert not any("ALLOC001" in m for _, _, m in lint_file(path))

    def test_multiline_call_needs_marker_on_first_line(self, tmp_path):
        source = (
            "def undo(view):\n"
            "    return bytes(  # alloc-ok: snapshot\n"
            "        view\n"
            "    )\n"
        )
        path = write_module(tmp_path, "repro/disk/ext.py", source)
        assert not any("ALLOC001" in m for _, _, m in lint_file(path))


class TestObsRegisteredNames:
    def test_flags_unregistered_counter_name(self, tmp_path):
        source = (
            "def hook(obs):\n"
            "    obs.counter('wamp.user_byte').inc(1)\n"
        )
        path = write_module(tmp_path, "repro/lfs/ext.py", source)
        findings = [m for _, _, m in lint_file(path) if "OBS002" in m]
        assert findings and "METRIC_NAMES" in findings[0]

    def test_flags_unregistered_span_kind(self, tmp_path):
        source = (
            "def hook(obs):\n"
            "    with obs.span('cleaner.unheard_of'):\n"
            "        pass\n"
        )
        path = write_module(tmp_path, "repro/service/ext.py", source)
        findings = [m for _, _, m in lint_file(path) if "OBS002" in m]
        assert findings and "SPAN_KINDS" in findings[0]

    def test_flags_unregistered_tracer_begin(self, tmp_path):
        source = (
            "def hook(tracer):\n"
            "    return tracer.begin('disk.readd')\n"
        )
        path = write_module(tmp_path, "repro/disk/ext.py", source)
        assert any("OBS002" in m for _, _, m in lint_file(path))

    def test_registered_names_pass(self, tmp_path):
        source = (
            "def hook(obs, tracer):\n"
            "    obs.counter('wamp.user_bytes').inc(1)\n"
            "    obs.gauge('cache.dirty_bytes').add(1)\n"
            "    with obs.span('fs.write'):\n"
            "        tracer.begin('disk.read')\n"
        )
        path = write_module(tmp_path, "repro/vfs/ext.py", source)
        assert not any("OBS002" in m for _, _, m in lint_file(path))

    def test_ignores_modules_outside_instrumented_dirs(self, tmp_path):
        source = (
            "def hook(obs):\n"
            "    obs.counter('totally.unregistered').inc(1)\n"
        )
        path = write_module(tmp_path, "repro/tools/ext.py", source)
        assert not any("OBS002" in m for _, _, m in lint_file(path))

    def test_dynamic_names_are_not_decidable_and_skipped(self, tmp_path):
        source = (
            "def hook(obs, name):\n"
            "    obs.counter(name).inc(1)\n"
        )
        path = write_module(tmp_path, "repro/lfs/ext.py", source)
        assert not any("OBS002" in m for _, _, m in lint_file(path))

    def test_noqa_suppresses_the_finding(self, tmp_path):
        source = (
            "def hook(obs):\n"
            "    obs.counter('scratch.series').inc(1)  # noqa: OBS002\n"
        )
        path = write_module(tmp_path, "repro/lfs/ext.py", source)
        assert not any("OBS002" in m for _, _, m in lint_file(path))
