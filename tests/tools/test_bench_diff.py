"""Tests for bench report diffing (`repro bench-diff`) and the trace
attribution command (`repro trace`)."""

from __future__ import annotations

import json

from repro.tools.bench_report import (
    build_report,
    diff_reports,
    render_diff,
    workload_entry,
    write_report,
)

from .test_cli import run_cli


def make_report(scale: str, walls: dict) -> dict:
    workloads = {
        name: {"after": workload_entry(wall, 100, 0.0)}
        for name, wall in walls.items()
    }
    return build_report(
        scale=scale, workloads=workloads, probes={}, checks={}
    )


class TestDiffReports:
    def test_identical_reports_have_no_regressions(self):
        report = make_report("small", {"cleaning": 1.0, "seq_read": 0.5})
        diff = diff_reports(report, report, max_regression=0.03)
        assert diff["comparable"]
        assert diff["regressions"] == []
        assert diff["workloads"]["cleaning"]["ratio"] == 1.0
        assert not diff["workloads"]["cleaning"]["regressed"]

    def test_slowdown_beyond_the_limit_regresses(self):
        old = make_report("small", {"cleaning": 1.0})
        new = make_report("small", {"cleaning": 1.1})
        diff = diff_reports(old, new, max_regression=0.03)
        assert diff["workloads"]["cleaning"]["regressed"]
        assert len(diff["regressions"]) == 1
        assert "cleaning" in diff["regressions"][0]

    def test_slowdown_within_the_limit_passes(self):
        old = make_report("small", {"cleaning": 1.0})
        new = make_report("small", {"cleaning": 1.02})
        diff = diff_reports(old, new, max_regression=0.03)
        assert diff["regressions"] == []

    def test_speedups_never_regress(self):
        old = make_report("small", {"cleaning": 1.0})
        new = make_report("small", {"cleaning": 0.5})
        diff = diff_reports(old, new, max_regression=0.0)
        assert diff["regressions"] == []
        assert diff["workloads"]["cleaning"]["ratio"] == 0.5

    def test_scale_mismatch_is_incomparable_and_fails(self):
        old = make_report("small", {"cleaning": 1.0})
        new = make_report("smoke", {"cleaning": 1.0})
        diff = diff_reports(old, new)
        assert not diff["comparable"]
        assert diff["workloads"] == {}
        assert len(diff["regressions"]) == 1
        assert "scale mismatch" in diff["regressions"][0]

    def test_one_sided_workloads_are_listed_not_judged(self):
        old = make_report("small", {"cleaning": 1.0, "gone": 1.0})
        new = make_report("small", {"cleaning": 1.0, "fresh": 1.0})
        diff = diff_reports(old, new)
        assert diff["only_old"] == ["gone"]
        assert diff["only_new"] == ["fresh"]
        assert diff["regressions"] == []

    def test_render_flags_regressions(self):
        old = make_report("small", {"cleaning": 1.0})
        new = make_report("small", {"cleaning": 2.0})
        rendered = render_diff(diff_reports(old, new, max_regression=0.03))
        assert "REGRESSED" in rendered
        assert "1 regression(s):" in rendered
        ok = render_diff(diff_reports(old, old))
        assert "no regressions" in ok


class TestBenchDiffCommand:
    def _write(self, tmp_path, name, walls, scale="small"):
        path = str(tmp_path / name)
        write_report(path, make_report(scale, walls))
        return path

    def test_exit_zero_when_within_limit(self, tmp_path):
        a = self._write(tmp_path, "a.json", {"cleaning": 1.0})
        b = self._write(tmp_path, "b.json", {"cleaning": 1.01})
        code, out = run_cli(["bench-diff", a, b, "--max-regression", "3"])
        assert code == 0
        assert "no regressions" in out

    def test_exit_nonzero_on_regression(self, tmp_path):
        a = self._write(tmp_path, "a.json", {"cleaning": 1.0})
        b = self._write(tmp_path, "b.json", {"cleaning": 1.5})
        code, out = run_cli(["bench-diff", a, b, "--max-regression", "3"])
        assert code == 1
        assert "REGRESSED" in out

    def test_scale_mismatch_fails(self, tmp_path):
        a = self._write(tmp_path, "a.json", {"cleaning": 1.0})
        b = self._write(
            tmp_path, "b.json", {"cleaning": 1.0}, scale="smoke"
        )
        code, out = run_cli(["bench-diff", a, b])
        assert code == 1
        assert "scale mismatch" in out


class TestTraceCommand:
    def test_trace_writes_report_with_exact_attribution(self, tmp_path):
        output = str(tmp_path / "trace.json")
        export = str(tmp_path / "trace.jsonl")
        code, out = run_cli(
            [
                "trace",
                "--clients",
                "4",
                "--requests-per-client",
                "5",
                "--fill",
                "0",
                "--size",
                "32M",
                "--output",
                output,
                "--export",
                export,
            ]
        )
        assert code == 0
        assert "requests traced" in out
        with open(output) as handle:
            report = json.load(handle)
        assert report["requests"] == 20
        assert report["max_sum_error"] < 1e-9
        assert report["wamp"]["write_amplification"] >= 1.0
        with open(export) as handle:
            lines = handle.read().splitlines()
        assert lines, "JSONL export is empty"
        assert json.loads(lines[-1])["type"] == "summary"
