"""Property test: the durability contract survives any crash instant.

One chaos trial is a full service rig crashed at an adversarial
instant, remounted, rolled forward, and audited against the
DurabilityLedger.  The contract is universal — no choice of seed,
crash instant, or client count may produce a trial where an acked
byte is lost or a torn client-visible state survives remount — so it
is stated as a property over those inputs rather than as a handful of
pinned examples (the pinned regressions live in tests/faults).

Each example boots, crashes, and recovers a whole filesystem, so the
example budget is deliberately small; the nightly campaign
(`repro chaos`) provides volume.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.chaos import run_chaos_trial


class TestDurabilityContractProperty:
    @given(
        seed=st.integers(0, 2**16 - 1),
        trial=st.integers(0, 63),  # trial % 4 picks the crash instant
        clients=st.integers(1, 8),
    )
    @settings(max_examples=6, deadline=None)
    def test_any_crash_instant_preserves_acked_state(
        self, seed, trial, clients
    ):
        result = run_chaos_trial(
            trial,
            seed=seed,
            clients=clients,
            requests_per_client=30,
        )
        assert result.outcome == "passed", (
            f"seed={seed} trial={trial} instant={result.instant} "
            f"clients={clients}: {result.detail} {result.violations}"
        )
