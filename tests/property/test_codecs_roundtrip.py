"""Property tests: every on-disk codec must roundtrip losslessly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.directory import DirectoryBlock, entry_size
from repro.common.inode import FileType, Inode, N_DIRECT
from repro.lfs.checkpoint import CheckpointData
from repro.lfs.inode_map import ImapEntry
from repro.lfs.segments import LogPosition
from repro.lfs.segment_usage import SegmentInfo, SegmentState
from repro.lfs.summary import SegmentSummary, SummaryEntry
from repro.common.inode import BlockKind

BS = 4096

addr = st.integers(min_value=0, max_value=2**48)
inum = st.integers(min_value=1, max_value=2**31)
small_float = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def inodes(draw):
    return Inode(
        inum=draw(inum),
        ftype=draw(st.sampled_from(list(FileType))),
        nlink=draw(st.integers(0, 65535)),
        size=draw(st.integers(0, 2**50)),
        mtime=draw(small_float),
        ctime=draw(small_float),
        atime=draw(small_float),
        direct=draw(
            st.lists(addr, min_size=N_DIRECT, max_size=N_DIRECT)
        ),
        indirect=draw(addr),
        dindirect=draw(addr),
    )


class TestInodeCodec:
    @given(inodes())
    def test_roundtrip(self, inode):
        assert Inode.unpack(inode.pack()) == inode


class TestImapEntryCodec:
    @given(
        addr,
        st.integers(0, 255),
        st.integers(0, 2**32 - 1),
        small_float,
        st.booleans(),
    )
    def test_roundtrip(self, a, slot, version, atime, allocated):
        entry = ImapEntry(
            inode_addr=a,
            slot=slot,
            version=version,
            atime=atime,
            allocated=allocated,
        )
        assert ImapEntry.unpack(entry.pack()) == entry


class TestSegmentInfoCodec:
    @given(
        st.integers(0, 2**40),
        small_float,
        st.sampled_from(list(SegmentState)),
    )
    def test_roundtrip(self, live, when, state):
        info = SegmentInfo(live_bytes=live, last_write=when, state=state)
        assert SegmentInfo.unpack(info.pack()) == info


@st.composite
def summary_entries(draw):
    kind = draw(st.sampled_from(list(BlockKind)))
    inums = ()
    if kind is BlockKind.INODE:
        inums = tuple(
            draw(st.lists(inum, min_size=1, max_size=25))
        )
    return SummaryEntry(
        kind=kind,
        inum=draw(inum),
        index=draw(st.integers(0, 2**40)),
        version=draw(st.integers(0, 2**32 - 1)),
        inums=inums,
    )


class TestSummaryCodec:
    @settings(max_examples=50)
    @given(
        st.integers(1, 2**48),
        small_float,
        addr,
        st.lists(summary_entries(), max_size=60),
    )
    def test_roundtrip(self, seq, timestamp, next_seg, entries):
        summary = SegmentSummary(
            seq=seq,
            timestamp=timestamp,
            next_segment_block=next_seg,
            entries=entries,
        )
        packed = summary.pack(BS)
        assert len(packed) % BS == 0
        assert SegmentSummary.unpack(packed, BS) == summary


class TestCheckpointCodec:
    @settings(max_examples=50)
    @given(
        small_float,
        st.integers(0, 1000),
        st.integers(0, 255),
        st.integers(0, 1000),
        st.integers(1, 2**48),
        st.lists(addr, max_size=200),
        st.lists(addr, max_size=20),
    )
    def test_roundtrip(
        self, timestamp, active, offset, nxt, seq, imap_addrs, usage_addrs
    ):
        data = CheckpointData(
            timestamp=timestamp,
            position=LogPosition(
                active_segment=active,
                active_offset=offset,
                next_segment=nxt,
                sequence=seq,
            ),
            imap_addrs=imap_addrs,
            usage_addrs=usage_addrs,
        )
        packed = data.pack(32 * 1024)
        assert CheckpointData.unpack(packed) == data


_names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x2FF
    ),
    min_size=1,
    max_size=40,
)


class TestDirectoryCodec:
    @settings(max_examples=80)
    @given(st.dictionaries(_names, inum, max_size=30))
    def test_roundtrip(self, entries):
        block = DirectoryBlock(BS, [])
        added = {}
        for name, child in entries.items():
            if block.has_room_for(name):
                block.add(name, child)
                added[name] = child
        decoded = DirectoryBlock.decode(block.encode(), BS)
        assert decoded.as_dict() == added

    @given(st.dictionaries(_names, inum, min_size=1, max_size=20))
    def test_used_bytes_matches_entry_sizes(self, entries):
        block = DirectoryBlock(BS, [])
        for name, child in entries.items():
            if block.has_room_for(name):
                block.add(name, child)
        assert block.used_bytes() == sum(
            entry_size(name) for name, _ in block.entries
        )
