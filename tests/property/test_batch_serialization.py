"""Property tests for the batch serialization engine.

The batch paths (:class:`BatchPacker`, the u64-array converters, the
chained CRCs) must be byte-identical to the scalar field-at-a-time
paths they replaced — the on-disk format is pinned by recovery — and
must reject truncated or oversized input with typed errors.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import serialization
from repro.common.serialization import (
    BatchPacker,
    Packer,
    Unpacker,
    checksum,
    checksum_chain,
    iter_u64,
    pack_u64_array,
    pad_block,
    segment_checksum,
    unpack_u64_array,
)
from repro.errors import CorruptionError

u8 = st.integers(0, 2**8 - 1)
u16 = st.integers(0, 2**16 - 1)
u32 = st.integers(0, 2**32 - 1)
u64 = st.integers(0, 2**64 - 1)
f64 = st.floats(allow_nan=False, allow_infinity=False)

FIELD = st.one_of(
    st.tuples(st.just("u8"), u8),
    st.tuples(st.just("u16"), u16),
    st.tuples(st.just("u32"), u32),
    st.tuples(st.just("u64"), u64),
    st.tuples(st.just("f64"), f64),
    st.tuples(st.just("string"), st.text(max_size=64)),
)


def _pack_fields(packer, fields):
    for kind, value in fields:
        getattr(packer, kind)(value)
    return packer


class TestPackerRoundTrip:
    @given(st.lists(FIELD, max_size=32))
    def test_unpacker_reads_back_every_field(self, fields):
        data = _pack_fields(Packer(), fields).bytes()
        unpacker = Unpacker(data)
        for kind, value in fields:
            assert getattr(unpacker, kind)() == value
        assert unpacker.remaining() == 0

    @given(st.lists(FIELD, min_size=1, max_size=16))
    def test_truncated_buffer_raises_corruption(self, fields):
        data = _pack_fields(Packer(), fields).bytes()
        unpacker = Unpacker(data[:-1])
        with pytest.raises(CorruptionError):
            for kind, _value in fields:
                getattr(unpacker, kind)()
            # A string field can survive byte-level truncation of its
            # payload; reading past the end must still fail.
            unpacker.raw(1)


class TestBatchPackerIdentity:
    @given(st.lists(FIELD, max_size=32))
    def test_byte_identical_to_scalar_packer(self, fields):
        scalar = _pack_fields(Packer(), fields).bytes()
        out = bytearray(len(scalar))
        batch = _pack_fields(BatchPacker(out), fields)
        assert bytes(out) == scalar
        assert batch.written() == len(scalar)

    @given(st.lists(u64, max_size=64), st.lists(u32, max_size=64))
    def test_array_methods_match_field_loops(self, quads, words):
        scalar = Packer()
        for value in quads:
            scalar.u64(value)
        for value in words:
            scalar.u32(value)
        expected = scalar.bytes()
        out = bytearray(len(expected))
        BatchPacker(out).u64_array(quads).u32_array(words)
        assert bytes(out) == expected

    @given(st.lists(FIELD, max_size=16), st.integers(1, 64))
    def test_offset_and_limit_respected(self, fields, margin):
        body = _pack_fields(Packer(), fields).bytes()
        out = bytearray(margin + len(body) + margin)
        packer = BatchPacker(out, offset=margin, limit=margin + len(body))
        _pack_fields(packer, fields)
        assert bytes(out[margin : margin + len(body)]) == body
        assert bytes(out[:margin]) == b"\x00" * margin  # untouched
        with pytest.raises(ValueError):
            packer.u8(0)  # one byte past the limit

    def test_skip_and_patch_backfill_crc_slot(self):
        out = bytearray(12)
        packer = BatchPacker(out)
        packer.u32(0xAABBCCDD)
        slot = packer.skip(4)
        packer.u32(0x11223344)
        packer.patch_u32(slot, checksum(packer.view(8, 12)))
        expected = struct.pack(
            "<III", 0xAABBCCDD, checksum(struct.pack("<I", 0x11223344)), 0x11223344
        )
        assert bytes(out) == expected

    def test_zero_to_overwrites_stale_bytes(self):
        out = bytearray(b"\xff" * 16)
        BatchPacker(out).u32(7).zero_to(16)
        assert bytes(out) == struct.pack("<I", 7) + b"\x00" * 12


class TestU64ArrayCodec:
    @given(st.lists(u64, max_size=128))
    def test_roundtrip(self, values):
        packed = pack_u64_array(values)
        assert len(packed) == 8 * len(values)
        assert list(unpack_u64_array(packed)) == values
        assert list(iter_u64(packed)) == values

    def test_empty_array(self):
        assert pack_u64_array([]) == b""
        assert unpack_u64_array(b"") == ()

    def test_max_width_values(self):
        values = [2**64 - 1] * 32
        assert list(unpack_u64_array(pack_u64_array(values))) == values

    @given(st.binary(min_size=1, max_size=64).filter(lambda b: len(b) % 8))
    def test_misaligned_buffer_raises(self, data):
        with pytest.raises(CorruptionError):
            unpack_u64_array(data)
        with pytest.raises(CorruptionError):
            list(iter_u64(data))


class TestNumpyBatchGate:
    """The numpy engine is opt-in and byte-identical to pure python."""

    def teardown_method(self):
        serialization.set_numpy_batch(False)

    @given(st.lists(u64, max_size=96))
    @settings(max_examples=50)
    def test_identical_bytes_both_engines(self, values):
        pytest.importorskip("numpy")
        serialization.set_numpy_batch(False)
        scalar = pack_u64_array(values)
        assert serialization.set_numpy_batch(True)
        assert pack_u64_array(values) == scalar
        assert list(unpack_u64_array(scalar)) == values
        serialization.set_numpy_batch(False)

    def test_disable_always_succeeds(self):
        assert serialization.set_numpy_batch(False) is False
        assert serialization.numpy_batch_enabled() is False


class TestChainedChecksums:
    @given(st.binary(max_size=4096), st.data())
    def test_chain_equals_concatenation(self, data, draw):
        cut = draw.draw(st.integers(0, len(data)))
        whole = checksum(data)
        assert checksum_chain((data[:cut], data[cut:])) == whole
        assert segment_checksum(data) == whole

    @given(st.binary(min_size=1, max_size=16384))
    def test_batch_crc_matches_per_block_scalar(self, segment):
        # The exact pattern segment CRCs replaced: per-512-byte-block
        # copies chained through `checksum`-seeded crc32 calls.
        import zlib

        crc = 0
        for offset in range(0, len(segment), 512):
            crc = zlib.crc32(bytes(segment[offset : offset + 512]), crc)
        assert segment_checksum(segment) == crc & 0xFFFFFFFF

    @given(st.binary(max_size=2048), st.binary(max_size=2048))
    def test_segment_chaining_across_segments(self, first, second):
        running = segment_checksum(second, segment_checksum(first))
        assert running == checksum(first + second)


class TestPadBlock:
    @given(st.binary(max_size=256))
    def test_pads_to_block_size(self, data):
        padded = pad_block(data, 256)
        assert len(padded) == 256
        assert padded[: len(data)] == data
        assert not any(padded[len(data) :])

    def test_aligned_input_returned_unchanged(self):
        data = bytes(range(64))
        assert pad_block(data, 64) is data

    def test_oversized_input_rejected(self):
        with pytest.raises(ValueError):
            pad_block(b"x" * 65, 64)
