"""Property tests of data structures against simple reference models."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.inode import BlockMap, FileType, Inode, N_DIRECT, NIL
from repro.errors import CorruptionError
from repro.ffs.bitmaps import Bitmap

BS = 4096


class BitmapMachine(RuleBasedStateMachine):
    """A Bitmap must behave exactly like a set of integers."""

    def __init__(self):
        super().__init__()
        self.bitmap = Bitmap(64)
        self.model = set()

    @rule(index=st.integers(0, 63))
    def set_bit(self, index):
        if index in self.model:
            try:
                self.bitmap.set(index)
                raise AssertionError("double set must raise")
            except CorruptionError:
                return
        self.bitmap.set(index)
        self.model.add(index)

    @rule(index=st.integers(0, 63))
    def clear_bit(self, index):
        if index not in self.model:
            try:
                self.bitmap.clear(index)
                raise AssertionError("double clear must raise")
            except CorruptionError:
                return
        self.bitmap.clear(index)
        self.model.discard(index)

    @rule(hint=st.integers(0, 63))
    def alloc(self, hint):
        result = self.bitmap.alloc_near(hint)
        if len(self.model) == 64:
            assert result is None
        else:
            assert result is not None
            assert result not in self.model
            self.model.add(result)

    @rule()
    def roundtrip(self):
        clone = Bitmap.from_bytes(self.bitmap.to_bytes(), 64)
        assert clone == self.bitmap

    @invariant()
    def counts_match(self):
        assert self.bitmap.used_count == len(self.model)
        assert set(self.bitmap.iter_set()) == self.model


TestBitmapModel = BitmapMachine.TestCase
TestBitmapModel.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class BlockMapMachine(RuleBasedStateMachine):
    """The pointer tree must behave like a dict {lbn: addr}."""

    def __init__(self):
        super().__init__()
        self.blocks = {}
        self.map = BlockMap(BS, self._load, lambda key: None)
        self.map.set_cache_probe(lambda key: key in self.blocks)
        self.inode = Inode(inum=1, ftype=FileType.REGULAR)
        self.model = {}
        # Cover direct, single-indirect and double-indirect ranges.
        ppb = BS // 8
        self.lbns = st.sampled_from(
            [0, 3, N_DIRECT - 1, N_DIRECT, N_DIRECT + 7, N_DIRECT + ppb - 1,
             N_DIRECT + ppb, N_DIRECT + ppb + 5, N_DIRECT + 2 * ppb + 1]
        )

    def _load(self, key, addr):
        if key not in self.blocks:
            self.blocks[key] = [NIL] * (BS // 8)
        return self.blocks[key]

    @rule(data=st.data(), addr=st.integers(1, 2**40))
    def set_pointer(self, data, addr):
        lbn = data.draw(self.lbns)
        old = self.map.set(self.inode, lbn, addr)
        assert old == self.model.get(lbn, NIL)
        self.model[lbn] = addr

    @rule(data=st.data())
    def clear_pointer(self, data):
        lbn = data.draw(self.lbns)
        if lbn not in self.model:
            return
        old = self.map.set(self.inode, lbn, NIL)
        assert old == self.model[lbn]
        del self.model[lbn]

    @invariant()
    def lookups_match(self):
        for lbn in (0, N_DIRECT, N_DIRECT + BS // 8, N_DIRECT + BS // 8 + 5):
            assert self.map.get(self.inode, lbn) == self.model.get(lbn, NIL)


TestBlockMapModel = BlockMapMachine.TestCase
TestBlockMapModel.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)


class TestTracePropertyRoundtrip:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["create", "write", "read"]),
                st.integers(0, 5),
                st.integers(0, 8 * 1024),
            ),
            max_size=12,
        )
    )
    def test_parse_never_crashes_on_generated_traces(self, steps):
        from repro.workloads.trace_replay import parse_trace

        lines = []
        for op, idx, size in steps:
            if op == "create":
                lines.append(f"create /g{idx} {size}")
            elif op == "write":
                lines.append(f"write /g{idx} 0 {max(1, size)}")
            else:
                lines.append(f"read /g{idx}")
        ops = parse_trace(lines)
        assert len(ops) == len(lines)
